"""Table 2 — media-encapsulation type values, offsets, and traffic shares.

Paper (campus trace): video(16) 62.0%/80.7%, audio(15) ~27%/~12%, screen
share(13) small, RTCP(33/34) ~1.2%, undecoded remainder just under 10% of
packets (~8.4% of bytes); decodable media = 90.03% of packets, 91.57% of
bytes.  The absolute mix depends on the meeting population; the *shape*
(video ≫ audio ≫ rest; ~90% decodable) must hold.
"""

from repro.analysis.tables import format_table
from repro.zoom.constants import RTP_OFFSET_SERVER

PAPER_ROWS = {
    16: ("RTP video", 32, 62.00, 80.67),
    15: ("RTP audio", 27, 27.48, 10.86),
    13: ("RTP screen share", 35, 1.39, 1.49),
    34: ("RTCP SR + SDES", 16, 0.89, 0.09),
    33: ("RTCP SR", 16, 0.27, 0.02),
}


def test_table2_shares(campus, report, benchmark):
    _trace, _model, analysis = campus

    def build_table():
        return analysis.encap_share_table()

    rows = benchmark(build_table)
    shares = {value: (pct, byte_pct) for value, pct, byte_pct in rows}

    out_rows = []
    for value, (name, offset, paper_pct, paper_bytes) in PAPER_ROWS.items():
        measured_pct, measured_bytes = shares.get(value, (0.0, 0.0))
        out_rows.append(
            (value, name, offset, paper_pct, measured_pct, paper_bytes, measured_bytes)
        )
    other_pct, other_bytes = shares.get("other", (0.0, 0.0))
    out_rows.append(("other", "undecoded/control", "-", 9.97, other_pct, 8.43, other_bytes))
    report(
        "table2_media_encap_types",
        format_table(
            ["value", "packet type", "offset", "paper %pkts", "ours %pkts",
             "paper %bytes", "ours %bytes"],
            out_rows,
        ),
    )

    # Shape assertions.
    video_pct, video_bytes = shares[16]
    audio_pct, audio_bytes = shares[15]
    assert video_pct > audio_pct > shares.get(13, (0.0, 0.0))[0]
    assert video_bytes > 55.0
    decodable_pct = sum(shares.get(v, (0.0, 0.0))[0] for v in PAPER_ROWS)
    assert 80.0 < decodable_pct < 97.5
    assert 2.0 < other_pct < 17.0
    # Offsets are definitional (Table 2 column 3).
    for value, (_name, offset, _p, _b) in PAPER_ROWS.items():
        assert RTP_OFFSET_SERVER[value] == offset
