"""Table 1 — cleartext header fields of Zoom's two encapsulation layers.

Regenerates the field inventory by parsing emulated packets and checking
every byte position the paper lists; benchmarks the codec throughput that
makes trace-scale analysis feasible.
"""

from repro.analysis.tables import format_table
from repro.rtp.rtp import RTPHeader
from repro.zoom.media_encap import MediaEncap
from repro.zoom.packets import build_media_payload, parse_zoom_payload
from repro.zoom.sfu_encap import Direction, SfuEncap


def _sample_payload() -> bytes:
    return build_media_payload(
        media=MediaEncap(
            media_type=16, sequence=0xABCD, timestamp=0x01020304,
            frame_sequence=0x0506, packets_in_frame=7,
        ),
        rtp=RTPHeader(payload_type=98, sequence=1, timestamp=2, ssrc=3),
        rtp_payload=b"\x7c\x80" + b"\x55" * 200,
        sfu=SfuEncap(sfu_type=5, sequence=0x1122, direction=Direction.FROM_SFU),
    )


def test_table1_field_positions(report, benchmark):
    payload = _sample_payload()

    def decode():
        return parse_zoom_payload(payload, from_server=True)

    packet = benchmark(decode)

    rows = [
        ("SFU encap type", "0", payload[0], "0x05 = media follows"),
        ("SFU encap seq", "1-2", int.from_bytes(payload[1:3], "big"), ""),
        ("SFU encap direction", "7", payload[7], "0x00/0x04 to/from SFU"),
        ("media encap type", "8 (rel 0)", payload[8], "13/15/16/33/34"),
        ("media encap seq", "rel 9-10", int.from_bytes(payload[17:19], "big"), ""),
        ("media encap timestamp", "rel 11-14", int.from_bytes(payload[19:23], "big"), ""),
        ("frame seq #", "rel 21-22", int.from_bytes(payload[29:31], "big"), "video only"),
        ("# packets/frame", "rel 23", payload[31], "video only"),
    ]
    # The parsed object must agree with raw byte positions everywhere.
    assert packet.sfu.sfu_type == payload[0] == 5
    assert packet.sfu.sequence == 0x1122
    assert packet.sfu.direction == payload[7] == 0x04
    assert packet.media.media_type == payload[8] == 16
    assert packet.media.sequence == 0xABCD
    assert packet.media.timestamp == 0x01020304
    assert packet.media.frame_sequence == 0x0506
    assert packet.media.packets_in_frame == 7

    report(
        "table1_header_fields",
        format_table(["field", "byte range", "value", "comment"], rows),
    )


def test_table1_serialize_throughput(benchmark):
    media = MediaEncap(media_type=16, sequence=1, timestamp=2, frame_sequence=3, packets_in_frame=4)
    rtp = RTPHeader(payload_type=98, sequence=1, timestamp=2, ssrc=3)
    sfu = SfuEncap()
    payload = b"\x00" * 800

    def encode():
        return build_media_payload(media=media, rtp=rtp, rtp_payload=payload, sfu=sfu)

    wire = benchmark(encode)
    assert len(wire) == 8 + 24 + 12 + 800
