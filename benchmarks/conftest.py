"""Shared fixtures for the benchmark harness.

One campus trace and one validation meeting are generated once per session
and shared by every table/figure benchmark; each benchmark writes the rows
or series it regenerates to ``benchmarks/results/<experiment>.txt`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a single
run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.capture.p4_model import P4CaptureModel
from repro.core import ZoomAnalyzer
from repro.simulation import (
    CongestionEvent,
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
)
from repro.simulation.campus import CampusTraceConfig, generate_campus_trace

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Writer for experiment outputs: ``report("table2", text)``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}")

    return _write


@pytest.fixture(scope="session")
def campus():
    """The scaled-down §6 campus trace: generator output, capture-filter
    output, and full analysis."""
    trace = generate_campus_trace(
        CampusTraceConfig(
            hours=12,
            meetings_per_hour_peak=1.6,
            meeting_duration=(10.0, 22.0),
            screen_share_fraction=0.35,
            background_pps=0.05,
            seed=2023,
        )
    )
    model = P4CaptureModel(rate_bin_width=1800.0)
    filtered = list(model.process(trace.all_packets()))
    analysis = ZoomAnalyzer().analyze(filtered)
    return trace, model, analysis


@pytest.fixture(scope="session")
def validation():
    """The §5 validation call (Figure 10): 60 s, two congestion episodes,
    ground-truth QoS feed on the side."""
    config = MeetingConfig(
        meeting_id="bench-validation",
        participants=(
            ParticipantConfig(
                name="sender",
                on_campus=True,
                congestion=(
                    CongestionEvent(start=15.0, end=23.0),
                    CongestionEvent(start=38.0, end=48.0),
                ),
            ),
            ParticipantConfig(name="receiver", on_campus=True, join_time=0.5),
        ),
        duration=60.0,
        allow_p2p=False,
        seed=23,
    )
    result = MeetingSimulator(config).run()
    analysis = ZoomAnalyzer().analyze(result.captures)
    return result, analysis
