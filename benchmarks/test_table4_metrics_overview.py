"""Table 4 — the metric availability matrix.

For each §5 metric: whether it needs Zoom header parsing, whether the Zoom
client exposes a comparable figure, and whether this reproduction validated
it against ground truth.  The benchmark drives every estimator once over the
validation call to prove each column is actually computable.
"""

import math

from repro.analysis.tables import format_table
from repro.zoom.constants import ZoomMediaType


def test_table4_all_metrics_computable(validation, report, benchmark):
    result, analysis = validation

    def compute_all():
        stream = next(
            s for s in analysis.media_streams()
            if s.media_type == int(ZoomMediaType.VIDEO) and s.to_server is False
        )
        metrics = analysis.metrics_for(stream.key)
        flow_rate = analysis.bitrate.flow_rate_series(stream.five_tuple)
        media_rate = analysis.bitrate.stream_rate_series(stream.five_tuple, stream.ssrc)
        fps = metrics.framerate_delivered.samples
        sizes = metrics.framesize.sizes()
        latency = analysis.rtp_latency.samples_for(stream.ssrc)
        jitter = metrics.jitter.samples
        return flow_rate, media_rate, fps, sizes, latency, jitter

    flow_rate, media_rate, fps, sizes, latency, jitter = benchmark(compute_all)

    assert flow_rate and media_rate and fps and sizes and latency and jitter
    # Flow rate >= media rate (headers + control overhead).
    total_flow = sum(v for _t, v in flow_rate)
    total_media = sum(v for _t, v in media_rate)
    assert total_flow > total_media > 0

    rows = [
        # metric, requires Zoom headers, available in client, validated here
        ("Overall bit rate", "no", "no", f"yes ({len(flow_rate)} bins)"),
        ("Media bit rate", "yes", "no", f"yes ({len(media_rate)} bins)"),
        ("Frame rate", "yes", "yes", f"yes ({len(fps)} samples, Fig 10a)"),
        ("Frame size", "yes", "no", f"yes ({len(sizes)} frames)"),
        ("Latency", "yes", "yes", f"yes ({len(latency)} samples, Fig 10b)"),
        ("Jitter", "yes", "yes", f"yes ({len(jitter)} samples, Fig 10c)"),
    ]
    report(
        "table4_metrics_overview",
        format_table(["metric", "needs headers", "in Zoom client", "validated"], rows),
    )
    assert not math.isnan(jitter[-1].jitter)
