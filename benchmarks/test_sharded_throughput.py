"""Sharded-analyzer throughput vs the single-pass baseline (§6 scale).

The paper analyzes a 12-hour border-tap trace offline; a deployment that
wants to keep up with the tap live needs more than one core.  This
experiment runs the same campus trace through the one-pass analyzer and
through :class:`~repro.core.sharded.ShardedAnalyzer` with 4 flow-affine
shards, checks the merged result is equivalent where it must be (streams,
meetings, Table 2/3 shares), and records both rates.
"""

import os
import time

from repro.analysis.tables import format_table
from repro.core import ShardedAnalyzer, ZoomAnalyzer
from repro.telemetry import Telemetry

SHARDS = 4
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()


def _timed(label, fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_sharded_throughput(campus, report):
    trace, _model, single = campus
    packets = trace.result.captures

    # Pure-Python decode holds the GIL, so real parallelism needs the
    # process backend — which only pays off with cores to run on.
    backend = "process" if CORES >= 2 else "thread"
    _, single_time = _timed("single", lambda: ZoomAnalyzer().analyze(packets))
    sharded, sharded_time = _timed(
        "sharded",
        lambda: ShardedAnalyzer(shards=SHARDS, backend=backend).analyze(packets),
    )

    # The merged result must agree with the single pass on everything the
    # flow-affine partition guarantees.
    assert len(sharded.streams) == len(single.streams)
    assert len(sharded.grouper.meetings()) == len(single.grouper.meetings())
    assert sharded.packets_total == single.packets_total
    assert sharded.packets_zoom == single.packets_zoom
    assert sharded.encap_share_table() == single.encap_share_table()
    assert sharded.payload_type_table() == single.payload_type_table()

    single_pps = len(packets) / single_time
    sharded_pps = len(packets) / sharded_time
    report(
        "sharded_throughput",
        format_table(
            ["variant", "packets", "best s", "packets/s", "speedup"],
            [
                ("single pass", len(packets), round(single_time, 2),
                 f"{single_pps:,.0f}", "1.00x"),
                (f"{SHARDS} shards ({backend})", len(packets), round(sharded_time, 2),
                 f"{sharded_pps:,.0f}", f"{single_time / sharded_time:.2f}x"),
            ],
        )
        + f"\n{CORES} core(s) available; speedup requires cores >= shards"
        + f"\nequivalent: {len(single.streams)} streams, "
        f"{len(single.grouper.meetings())} meetings, Table 2/3 rows identical",
    )
    assert single_pps > 1_000
    assert sharded_pps > 1_000


def test_telemetry_overhead(campus, report):
    """The telemetry acceptance budget: <= ~5% slower with counters on,
    indistinguishable from baseline with them off."""
    trace, _model, _analysis = campus
    packets = trace.result.captures

    _, off_time = _timed(
        "telemetry off", lambda: ZoomAnalyzer(telemetry=False).analyze(packets)
    )
    enabled_result, on_time = _timed(
        "telemetry on", lambda: ZoomAnalyzer(telemetry=True).analyze(packets)
    )

    snapshot = enabled_result.telemetry_snapshot()
    assert snapshot.counter("pipeline.completed") > 0
    overhead = on_time / off_time - 1.0

    report(
        "telemetry_overhead",
        format_table(
            ["variant", "packets", "best s", "packets/s", "overhead"],
            [
                ("telemetry off", len(packets), round(off_time, 3),
                 f"{len(packets) / off_time:,.0f}", "baseline"),
                ("telemetry on", len(packets), round(on_time, 3),
                 f"{len(packets) / on_time:,.0f}", f"{100.0 * overhead:+.1f}%"),
            ],
        )
        + f"\ncounters recorded: {len(snapshot.counters)}; "
        f"stage timers sampled 1-in-{Telemetry.TIMING_SAMPLE}"
        + "\nbudget: enabled <= 5% over disabled; disabled adds one branch/packet",
    )
    # Generous CI margin over the 5% local budget: wall-clock noise on a
    # shared runner easily exceeds the effect being measured.
    assert overhead < 0.15, f"telemetry overhead {100 * overhead:.1f}% exceeds budget"
