"""Batch and sharded throughput vs the scalar single pass (§6 scale).

The paper analyzes a 12-hour border-tap trace offline; a deployment that
wants to keep up with the tap live needs both a cheaper per-frame path and
more than one core.  This experiment measures the two levers separately:

* **batch decode** — a border-style trace (95% provably non-Zoom
  background, the mix a campus border actually carries) through the
  scalar ``feed`` loop vs the ``read_batches``/``feed_batch`` fast path,
  single core.  The prefilter drops the background before any
  ``ParsedPacket`` exists, so the target is a >=5x packet rate.
* **flow-affine sharding** — the campus trace through
  :class:`~repro.core.sharded.ShardedAnalyzer`, whose process backend
  ships :class:`~repro.net.batch.FrameBatch` buffers across the pool.
  Pure-Python decode holds the GIL, so a real speedup needs the process
  backend *and* cores to run on; with fewer cores than shards the speedup
  row is omitted rather than reported as a misleading <1x.

Both sections land in ``results/sharded_throughput.txt`` together with the
machine's core/affinity facts, so a reader can tell what the numbers were
measured on.
"""

import io
import os
import random
import time

from repro.analysis.tables import format_table
from repro.core import AnalyzerConfig, ShardedAnalyzer, ZoomAnalyzer
from repro.net.packet import CapturedPacket, build_udp_frame
from repro.net.pcap import PcapReader, PcapWriter
from repro.telemetry import Telemetry

SHARDS = 4
CPU_COUNT = os.cpu_count() or 1
AFFINITY = (
    len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else CPU_COUNT
)
CORES = min(CPU_COUNT, AFFINITY)

#: Border-trace composition for the batch-decode measurement.
BORDER_FRAMES = 120_000
BACKGROUND_SHARE = 0.95


def _timed(label, fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _machine_line() -> str:
    return (
        f"machine: os.cpu_count()={CPU_COUNT}, "
        f"sched_getaffinity={AFFINITY} -> {CORES} usable core(s)"
    )


def _border_pcap() -> bytes:
    """A border-style trace: mostly background, a Zoom media flow inside."""
    rng = random.Random(7)
    writer_buffer = io.BytesIO()
    writer = PcapWriter(writer_buffer)
    zoom = build_udp_frame(
        "10.8.0.5", 20000, "170.114.1.1", 8801, b"\x05\x10" + bytes(900)
    )
    keep_every = round(1.0 / (1.0 - BACKGROUND_SHARE))
    t = 0.0
    for i in range(BORDER_FRAMES):
        t += 0.0001
        if i % keep_every == 0:
            writer.write(CapturedPacket(t, zoom))
        else:
            src = (
                f"10.{rng.randrange(256)}.{rng.randrange(256)}"
                f".{rng.randrange(1, 255)}"
            )
            dst = (
                f"93.{rng.randrange(256)}.{rng.randrange(256)}"
                f".{rng.randrange(1, 255)}"
            )
            writer.write(
                CapturedPacket(
                    t,
                    build_udp_frame(
                        src, rng.randrange(1024, 65000), dst, 443, bytes(600)
                    ),
                )
            )
    return writer_buffer.getvalue()


def test_batch_and_sharded_throughput(campus, report):
    # ---------------------------------------------- batch decode, one core
    border = _border_pcap()

    def scalar_pass():
        analyzer = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        for packet in PcapReader(io.BytesIO(border)):
            analyzer.feed(packet)
        return analyzer.result

    def batch_pass():
        analyzer = ZoomAnalyzer(AnalyzerConfig(telemetry=True))
        for batch in PcapReader(io.BytesIO(border)).read_batches():
            analyzer.feed_batch(batch)
        return analyzer.result

    scalar_result, scalar_time = _timed("scalar", scalar_pass, rounds=2)
    batch_result, batch_time = _timed("batch", batch_pass, rounds=2)

    # Bit-identical analysis is the contract the speed comes under.
    assert batch_result.packets_total == scalar_result.packets_total
    assert batch_result.packets_zoom == scalar_result.packets_zoom
    assert batch_result.bytes_total == scalar_result.bytes_total
    batch_snapshot = batch_result.telemetry_snapshot()
    dropped = batch_snapshot.counter("prefilter.dropped")
    assert dropped > 0

    scalar_pps = BORDER_FRAMES / scalar_time
    batch_pps = BORDER_FRAMES / batch_time
    batch_speedup = scalar_time / batch_time
    batch_table = format_table(
        ["ingest path", "frames", "best s", "frames/s", "speedup"],
        [
            ("scalar feed", BORDER_FRAMES, round(scalar_time, 2),
             f"{scalar_pps:,.0f}", "1.00x"),
            ("batch feed_batch", BORDER_FRAMES, round(batch_time, 2),
             f"{batch_pps:,.0f}", f"{batch_speedup:.2f}x"),
        ],
    )
    batch_notes = (
        f"border trace: {100 * BACKGROUND_SHARE:.0f}% background; prefilter "
        f"dropped {dropped:,} of {BORDER_FRAMES:,} frames before any "
        "ParsedPacket existed; results bit-identical"
    )

    # ------------------------------------------- flow-affine sharding
    trace, _model, single = campus
    packets = trace.result.captures

    backend = "process" if CORES >= SHARDS else "thread"
    _, single_time = _timed("single", lambda: ZoomAnalyzer().analyze(packets))
    sharded, sharded_time = _timed(
        "sharded",
        lambda: ShardedAnalyzer(shards=SHARDS, backend=backend).analyze(packets),
    )

    # The merged result must agree with the single pass on everything the
    # flow-affine partition guarantees.
    assert len(sharded.streams) == len(single.streams)
    assert len(sharded.grouper.meetings()) == len(single.grouper.meetings())
    assert sharded.packets_total == single.packets_total
    assert sharded.packets_zoom == single.packets_zoom
    assert sharded.encap_share_table() == single.encap_share_table()
    assert sharded.payload_type_table() == single.payload_type_table()

    single_pps = len(packets) / single_time
    sharded_pps = len(packets) / sharded_time
    sharded_rows = [
        ("single pass", len(packets), round(single_time, 2),
         f"{single_pps:,.0f}", "1.00x"),
    ]
    if CORES >= SHARDS:
        sharded_rows.append(
            (f"{SHARDS} shards ({backend})", len(packets),
             round(sharded_time, 2), f"{sharded_pps:,.0f}",
             f"{single_time / sharded_time:.2f}x")
        )
        sharded_note = (
            f"{SHARDS} shards on {CORES} usable cores, {backend} backend; "
            "FrameBatch buffers cross the pool boundary"
        )
        # With the cores to run on, shipping FrameBatch buffers across the
        # process pool must beat the single pass outright.
        assert sharded_pps > single_pps
    else:
        sharded_rows.append(
            (f"{SHARDS} shards ({backend})", len(packets),
             round(sharded_time, 2), f"{sharded_pps:,.0f}", "(skipped)")
        )
        sharded_note = (
            f"speedup row skipped: {CORES} usable core(s) < {SHARDS} shards, "
            "so a parallel speedup is not measurable on this machine"
        )

    report(
        "sharded_throughput",
        "== batch decode fast path (single core) ==\n"
        + batch_table
        + "\n" + batch_notes + "\n"
        + "\n== flow-affine sharding ==\n"
        + format_table(
            ["variant", "packets", "best s", "packets/s", "speedup"],
            sharded_rows,
        )
        + "\n" + sharded_note
        + "\n" + _machine_line()
        + f"\nequivalent: {len(single.streams)} streams, "
        f"{len(single.grouper.meetings())} meetings, Table 2/3 rows identical",
    )
    # The batch fast path is the tentpole claim: >=5x on the recorded run,
    # asserted here with margin for shared-runner noise.
    assert batch_speedup > 3.0, (
        f"batch decode only {batch_speedup:.2f}x over scalar"
    )
    assert single_pps > 1_000
    assert sharded_pps > 1_000


def test_telemetry_overhead(campus, report):
    """The telemetry acceptance budget: <= ~5% slower with counters on,
    indistinguishable from baseline with them off."""
    trace, _model, _analysis = campus
    packets = trace.result.captures

    _, off_time = _timed(
        "telemetry off", lambda: ZoomAnalyzer(telemetry=False).analyze(packets)
    )
    enabled_result, on_time = _timed(
        "telemetry on", lambda: ZoomAnalyzer(telemetry=True).analyze(packets)
    )

    snapshot = enabled_result.telemetry_snapshot()
    assert snapshot.counter("pipeline.completed") > 0
    overhead = on_time / off_time - 1.0

    report(
        "telemetry_overhead",
        format_table(
            ["variant", "packets", "best s", "packets/s", "overhead"],
            [
                ("telemetry off", len(packets), round(off_time, 3),
                 f"{len(packets) / off_time:,.0f}", "baseline"),
                ("telemetry on", len(packets), round(on_time, 3),
                 f"{len(packets) / on_time:,.0f}", f"{100.0 * overhead:+.1f}%"),
            ],
        )
        + f"\ncounters recorded: {len(snapshot.counters)}; "
        f"stage timers sampled 1-in-{Telemetry.TIMING_SAMPLE}"
        + "\nbudget: enabled <= 5% over disabled; disabled adds one branch/packet",
    )
    # Generous CI margin over the 5% local budget: wall-clock noise on a
    # shared runner easily exceeds the effect being measured.
    assert overhead < 0.15, f"telemetry overhead {100 * overhead:.1f}% exceeds budget"
