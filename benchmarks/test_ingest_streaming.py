"""Streaming vs eager capture ingest: peak memory and wall time.

The pre-PacketSource analyzers materialized every capture as a
``list[CapturedPacket]`` before the first packet was analyzed.  This
experiment pins down what the streaming readers buy: the same campus-scale
pcap is analyzed (a) the old way — ``read_pcap`` into a list, then
``analyze`` — and (b) through ``AnalysisSession`` over a
:class:`~repro.net.source.PcapFileSource`, which never holds more than one
batch.  Peak allocation is measured with :mod:`tracemalloc`; the analysis
results are asserted identical before any number is reported.
"""

import time
import tracemalloc
import warnings

from repro.analysis.tables import format_table
from repro.core import AnalysisSession, AnalyzerConfig, ZoomAnalyzer
from repro.net.pcap import read_pcap, write_pcap
from repro.net.source import PcapFileSource


def _measure(fn):
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_ingest_streaming_vs_eager(campus, tmp_path, report):
    trace, _model, _analysis = campus
    pcap_path = tmp_path / "campus.pcap"
    packet_count = write_pcap(pcap_path, trace.result.captures)
    file_bytes = pcap_path.stat().st_size

    def eager():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            packets = read_pcap(pcap_path)
        return ZoomAnalyzer().analyze(packets)

    def streaming_scalar():
        analyzer = ZoomAnalyzer(AnalyzerConfig())
        with PcapFileSource(pcap_path) as source:
            for batch in source.batches():
                for parsed in batch:
                    analyzer.feed_parsed(parsed)
        return analyzer.result

    def streaming_batch():
        # AnalysisSession.run drains frame_batches() when the source has
        # them: raw FrameBatch buffers, columnar decode, lazy survivors.
        session = AnalysisSession(AnalyzerConfig())
        return session.run(PcapFileSource(pcap_path))

    eager_result, eager_time, eager_peak = _measure(eager)
    stream_result, stream_time, stream_peak = _measure(streaming_scalar)
    batch_result, batch_time, batch_peak = _measure(streaming_batch)

    # Same capture, same pipeline — the ingest paths must agree before
    # their costs are worth comparing.
    for result in (stream_result, batch_result):
        assert result.packets_total == eager_result.packets_total
        assert result.packets_zoom == eager_result.packets_zoom
        assert len(result.streams) == len(eager_result.streams)
        assert result.encap_share_table() == eager_result.encap_share_table()

    # The point of the streaming reader: peak allocation should not grow
    # with the capture (eager holds every frame at once).  The batch path
    # must keep that bound — it buffers one read chunk plus its columns,
    # never the whole capture.
    assert stream_peak < eager_peak
    assert batch_peak < eager_peak

    mib = 1024 * 1024
    report(
        "ingest_streaming",
        format_table(
            ["ingest path", "wall s", "peak MiB", "packets/s"],
            [
                (
                    "eager (read_pcap + analyze)",
                    f"{eager_time:.2f}",
                    f"{eager_peak / mib:.1f}",
                    int(packet_count / eager_time),
                ),
                (
                    "streaming scalar (batches of ParsedPacket)",
                    f"{stream_time:.2f}",
                    f"{stream_peak / mib:.1f}",
                    int(packet_count / stream_time),
                ),
                (
                    "streaming batch (FrameBatch fast path)",
                    f"{batch_time:.2f}",
                    f"{batch_peak / mib:.1f}",
                    int(packet_count / batch_time),
                ),
            ],
        )
        + f"\n\ncapture: {packet_count} packets, {file_bytes / mib:.1f} MiB on disk"
        + f"\npeak-memory ratio (eager/scalar streaming): "
        f"{eager_peak / stream_peak:.1f}x"
        + f"\npeak-memory ratio (eager/batch streaming): "
        f"{eager_peak / batch_peak:.1f}x"
        + "\nnote: the campus trace is nearly all Zoom, so the batch "
        "prefilter passes ~everything and its screening cost is pure "
        "overhead here; the fast path pays off on border-style mixes — "
        "see results/sharded_throughput.txt",
    )
