"""Streaming vs eager capture ingest: peak memory and wall time.

The pre-PacketSource analyzers materialized every capture as a
``list[CapturedPacket]`` before the first packet was analyzed.  This
experiment pins down what the streaming readers buy: the same campus-scale
pcap is analyzed (a) the old way — ``read_pcap`` into a list, then
``analyze`` — and (b) through ``AnalysisSession`` over a
:class:`~repro.net.source.PcapFileSource`, which never holds more than one
batch.  Peak allocation is measured with :mod:`tracemalloc`; the analysis
results are asserted identical before any number is reported.
"""

import time
import tracemalloc
import warnings

from repro.analysis.tables import format_table
from repro.core import AnalysisSession, AnalyzerConfig, ZoomAnalyzer
from repro.net.pcap import read_pcap, write_pcap
from repro.net.source import PcapFileSource


def _measure(fn):
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_ingest_streaming_vs_eager(campus, tmp_path, report):
    trace, _model, _analysis = campus
    pcap_path = tmp_path / "campus.pcap"
    packet_count = write_pcap(pcap_path, trace.result.captures)
    file_bytes = pcap_path.stat().st_size

    def eager():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            packets = read_pcap(pcap_path)
        return ZoomAnalyzer().analyze(packets)

    def streaming():
        session = AnalysisSession(AnalyzerConfig())
        return session.run(PcapFileSource(pcap_path))

    eager_result, eager_time, eager_peak = _measure(eager)
    stream_result, stream_time, stream_peak = _measure(streaming)

    # Same capture, same pipeline — the two ingest paths must agree before
    # their costs are worth comparing.
    assert stream_result.packets_total == eager_result.packets_total
    assert stream_result.packets_zoom == eager_result.packets_zoom
    assert len(stream_result.streams) == len(eager_result.streams)
    assert stream_result.encap_share_table() == eager_result.encap_share_table()

    # The point of the streaming reader: peak allocation should not grow
    # with the capture (eager holds every frame at once).
    assert stream_peak < eager_peak

    mib = 1024 * 1024
    report(
        "ingest_streaming",
        format_table(
            ["ingest path", "wall s", "peak MiB", "packets/s"],
            [
                (
                    "eager (read_pcap + analyze)",
                    f"{eager_time:.2f}",
                    f"{eager_peak / mib:.1f}",
                    int(packet_count / eager_time),
                ),
                (
                    "streaming (AnalysisSession + PcapFileSource)",
                    f"{stream_time:.2f}",
                    f"{stream_peak / mib:.1f}",
                    int(packet_count / stream_time),
                ),
            ],
        )
        + f"\n\ncapture: {packet_count} packets, {file_bytes / mib:.1f} MiB on disk"
        + f"\npeak-memory ratio (eager/streaming): {eager_peak / stream_peak:.1f}x",
    )
