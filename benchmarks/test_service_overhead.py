"""What the live-monitoring layer costs on top of the rolling analyzer.

The monitoring daemon adds three things to the rolling analyzer's packet
path: the per-packet ``observe_packet`` feed into the window aggregator,
the event-bus fan-in of stream/meeting events into open windows, and the
exporters at window close (JSONL append plus a Prometheus render, standing
in for a scrape).  This benchmark replays the §5 validation meeting through
(a) the bare rolling analyzer and (b) the full aggregator + exporter stack,
and reports the throughput delta.  The analysis output is asserted
identical first — the overhead is only worth reporting if the windows
reproduce the bare run's totals.
"""

import time

from repro.analysis.tables import format_table
from repro.core import AnalyzerConfig
from repro.core.rolling import RollingZoomAnalyzer
from repro.service.exporters import JsonlWindowLog
from repro.service.prometheus import render_metrics
from repro.service.windows import WindowAggregator

WINDOW_SECONDS = 5.0
REPEATS = 3


def _config() -> AnalyzerConfig:
    return AnalyzerConfig(rolling=True, rolling_idle_timeout=60.0, telemetry=True)


def _run_bare(captures):
    rolling = RollingZoomAnalyzer(_config())
    start = time.perf_counter()
    for capture in captures:
        rolling.feed(capture)
    rolling.sweep(float("inf"))
    return time.perf_counter() - start, rolling


def _run_monitored(captures, tmp_path):
    rolling = RollingZoomAnalyzer(_config())
    telemetry = rolling.result.telemetry
    windows = []
    log = JsonlWindowLog(tmp_path / "windows.jsonl", telemetry=telemetry)

    def export(window):
        windows.append(window)
        log.write(window)
        # A dashboard scrape renders the page roughly once per window.
        render_metrics(telemetry.snapshot(), last_window=window)

    aggregator = WindowAggregator(
        rolling,
        window_seconds=WINDOW_SECONDS,
        lateness=2.0,
        on_window=(export,),
        telemetry=telemetry,
    )
    start = time.perf_counter()
    for capture in captures:
        rolling.feed(capture)
        aggregator.observe_packet(capture.timestamp, len(capture.data))
    rolling.sweep(float("inf"))
    aggregator.flush(final=True)
    elapsed = time.perf_counter() - start
    log.close()
    return elapsed, rolling, windows


def test_service_overhead(validation, tmp_path, report):
    result, _analysis = validation
    captures = list(result.captures)

    bare_best = monitored_best = float("inf")
    for _ in range(REPEATS):
        bare_time, bare_rolling = _run_bare(captures)
        monitored_time, monitored_rolling, windows = _run_monitored(
            captures, tmp_path
        )
        bare_best = min(bare_best, bare_time)
        monitored_best = min(monitored_best, monitored_time)

    # Equivalence first: monitoring must not change what is measured.
    assert monitored_rolling.streams_evicted == bare_rolling.streams_evicted
    assert sum(w.packets_total for w in windows) == len(captures)
    finalized_packets = sum(s.packets for s in monitored_rolling.finalized)
    assert finalized_packets == sum(s.packets for s in bare_rolling.finalized)

    bare_pps = len(captures) / bare_best
    monitored_pps = len(captures) / monitored_best
    overhead = (bare_best / monitored_best - 1.0) * -100.0
    rows = [
        ("rolling only", f"{bare_pps:,.0f}", f"{bare_best * 1e3:.1f}"),
        ("rolling + windows + exporters", f"{monitored_pps:,.0f}",
         f"{monitored_best * 1e3:.1f}"),
    ]
    table = format_table(
        ("configuration", "packets/s", "wall ms"), rows
    )
    lines = [
        f"validation meeting: {len(captures)} packets, "
        f"{len(windows)} windows of {WINDOW_SECONDS:.0f}s "
        f"(best of {REPEATS} runs)",
        table,
        f"monitoring overhead: {overhead:.1f}% throughput "
        f"({monitored_pps / bare_pps:.2f}x of bare)",
    ]
    report("service_overhead", "\n".join(lines))

    # Guardrail, deliberately loose for CI noise: the monitoring layer must
    # not halve analyzer throughput.
    assert monitored_pps > bare_pps * 0.5
