"""Figure 10 — estimation accuracy vs the Zoom-client ground truth.

The §5 validation experiment: a two-person call with cross-traffic injected
twice, analyzer estimates compared second-by-second against the emulator's
SDK-style QoS feed.

* 10a frame rate: estimate tracks the delivered-frame truth closely and dips
  with the encoder's 28→14 fps adaptation during congestion.
* 10b latency: estimate matches the displayed figure when the network is
  calm, provides far more samples, and exposes fluctuations the 5-second
  display refresh misses.
* 10c jitter: the RFC 3550 estimate reacts to the congestion events while
  the Zoom-style figure stays under ~2 ms — the paper's documented mismatch.
"""

from collections import defaultdict

from repro.analysis.tables import format_table

SENDER_VIDEO_SSRC = 0x10
CONGESTION_WINDOWS = ((15.0, 23.0), (38.0, 48.0))


def _in_congestion(second: float) -> bool:
    return any(start <= second <= end for start, end in CONGESTION_WINDOWS)


def _per_second(samples, value):
    table = defaultdict(list)
    for sample in samples:
        table[int(sample.time)].append(value(sample))
    return {second: sum(vals) / len(vals) for second, vals in table.items()}


def test_fig10a_frame_rate(validation, report, benchmark):
    result, analysis = validation
    ingress = next(
        s for s in analysis.media_streams()
        if s.ssrc == SENDER_VIDEO_SSRC and s.to_server is False
    )
    metrics = analysis.metrics_for(ingress.key)

    def estimate_series():
        return _per_second(metrics.framerate_delivered.samples, lambda s: s.fps)

    estimates = benchmark(estimate_series)
    truth = {
        int(s.time) - 1: float(s.delivered_frames)
        for s in result.qos.for_stream(SENDER_VIDEO_SSRC)
    }

    errors, clean_rates, congested_rates, rows = [], [], [], []
    for second in sorted(set(estimates) & set(truth)):
        if second < 2:
            continue
        error = abs(estimates[second] - truth[second])
        errors.append(error)
        (congested_rates if _in_congestion(second) else clean_rates).append(estimates[second])
        if second % 5 == 0:
            rows.append((second, estimates[second], truth[second], error))
    mean_error = sum(errors) / len(errors)
    report(
        "fig10a_framerate",
        format_table(["second", "estimate fps", "truth fps", "|err|"], rows)
        + f"\nmean |error| = {mean_error:.2f} fps over {len(errors)} seconds",
    )
    assert mean_error < 3.0
    assert min(congested_rates) < 18.0  # the 28->14 adaptation is visible
    assert sum(clean_rates) / len(clean_rates) > 25.0


def test_fig10b_latency(validation, report, benchmark):
    result, analysis = validation

    def estimate_series():
        return _per_second(
            analysis.rtp_latency.samples_for(SENDER_VIDEO_SSRC), lambda s: s.rtt * 1000
        )

    estimates = benchmark(estimate_series)
    truth_rows = result.qos.for_stream(SENDER_VIDEO_SSRC)
    dense_truth = {int(s.time) - 1: s.true_latency_ms for s in truth_rows}
    displayed = {int(s.time) - 1: s.latency_ms for s in truth_rows}

    errors, clean_errors, rows = [], [], []
    for second in sorted(set(estimates) & set(dense_truth)):
        if dense_truth[second] != dense_truth[second]:
            continue
        error = abs(estimates[second] - dense_truth[second])
        errors.append(error)
        if not _in_congestion(second):
            clean_errors.append(abs(estimates[second] - displayed.get(second, float("nan"))))
        if second % 5 == 0:
            rows.append((second, estimates[second], dense_truth[second], displayed.get(second)))
    mean_error = sum(errors) / len(errors)
    sample_count = len(analysis.rtp_latency.samples_for(SENDER_VIDEO_SSRC))
    report(
        "fig10b_latency",
        format_table(["second", "estimate ms", "dense truth ms", "displayed ms"], rows)
        + f"\nmean |error| vs dense truth = {mean_error:.2f} ms; "
        f"{sample_count} samples vs {len(truth_rows)} SDK updates",
    )
    assert mean_error < 3.0
    # The analyzer yields 1-2 orders of magnitude more samples than the SDK.
    assert sample_count > 10 * len(truth_rows)
    # Congestion raises the estimate visibly.
    congested = [v for s, v in estimates.items() if _in_congestion(s)]
    clean = [v for s, v in estimates.items() if not _in_congestion(s) and s > 2]
    assert max(congested) > 1.4 * (sum(clean) / len(clean))


def test_fig10c_jitter(validation, report, benchmark):
    result, analysis = validation
    ingress = next(
        s for s in analysis.media_streams()
        if s.ssrc == SENDER_VIDEO_SSRC and s.to_server is False
    )
    metrics = analysis.metrics_for(ingress.key)

    def estimate_series():
        return _per_second(metrics.jitter.samples, lambda s: s.jitter * 1000)

    estimates = benchmark(estimate_series)
    zoom_style = {
        int(s.time) - 1: s.jitter_ms for s in result.qos.for_stream(SENDER_VIDEO_SSRC)
    }

    rows = [
        (second, estimates[second], zoom_style.get(second))
        for second in sorted(estimates)
        if second % 5 == 0 and second in zoom_style
    ]
    congested_estimate = max(v for s, v in estimates.items() if _in_congestion(s))
    zoom_max = max(zoom_style.values())
    report(
        "fig10c_jitter",
        format_table(["second", "RFC3550 estimate ms", "Zoom-style ms"], rows)
        + f"\npeak estimate during congestion = {congested_estimate:.1f} ms; "
        f"Zoom-style never exceeds {zoom_max:.2f} ms (the Fig 10c mismatch)",
    )
    # Our estimate reacts to congestion; the Zoom-style figure does not.
    clean_estimate = [v for s, v in estimates.items() if not _in_congestion(s) and s > 3]
    assert congested_estimate > 2.0 * (sum(clean_estimate) / len(clean_estimate))
    # Paper: Zoom's figure "never exceeded 2 ms"; our emulator's stand-in is
    # calibrated to stay in the same few-ms band regardless of congestion.
    assert zoom_max < 4.0
    assert congested_estimate > zoom_max
