"""Ablations of the design choices DESIGN.md §5 calls out.

1. Duplicate-stream matching features: with SSRC-only matching (no RTP
   timestamp window), re-used SSRCs from unrelated meetings collapse into
   one stream id — the full four-feature check prevents that.
2. STUN tracker timeout: too short misses the P2P switch, too long invites
   port-reuse false positives.
3. Frame-rate methods: delivered (Method 1) vs encoder (Method 2) rates
   diverge under congestion before the encoder adapts.
4. End-to-end analyzer throughput: the number that decides whether a
   software analyzer keeps up with a border tap.
"""

from repro.analysis.tables import format_table
from repro.core import ZoomAnalyzer
from repro.core.detector import ZoomClass, ZoomTrafficDetector
from repro.core.meetings import MeetingGrouper
from repro.core.streams import RTPPacketRecord, StreamTable
from repro.net.packet import parse_frame
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


def _rec(src, sport, *, ssrc, rtp_ts, t):
    return RTPPacketRecord(
        timestamp=t, five_tuple=(src, sport, "170.114.1.1", 8801, 17),
        ssrc=ssrc, payload_type=98, sequence=1, rtp_timestamp=rtp_ts,
        marker=False, media_type=16, payload_len=500, udp_payload_len=550,
        to_server=True,
    )


def test_ablation_duplicate_matching_features(report, benchmark):
    """SSRC reuse across meetings: the timestamp window is load-bearing."""
    records = [
        _rec("10.8.1.2", 50001, ssrc=0x110, rtp_ts=100_000, t=1.0),
        # Same SSRC, unrelated meeting, wildly different timestamp base.
        _rec("10.8.7.7", 50002, ssrc=0x110, rtp_ts=2_500_000_000, t=2.0),
    ]

    def run_both():
        full = MeetingGrouper()  # default: time + timestamp windows
        table_full = StreamTable()
        for record in records:
            full.observe_new_stream(table_full.observe(record), table_full)
        # "SSRC-only": timestamp window wide open (half the 32-bit space).
        ssrc_only = MeetingGrouper(rtp_window_seconds=2_147_483_648 / 90_000)
        table_ssrc = StreamTable()
        for record in records:
            ssrc_only.observe_new_stream(table_ssrc.observe(record), table_ssrc)
        return full, ssrc_only

    full, ssrc_only = benchmark(run_both)
    report(
        "ablation_duplicate_matching",
        format_table(
            ["variant", "unique streams", "meetings"],
            [
                ("time+SSRC+timestamp (paper)", full.unique_stream_count(), len(full.meetings())),
                ("SSRC only", ssrc_only.unique_stream_count(), len(ssrc_only.meetings())),
            ],
        ),
    )
    assert full.unique_stream_count() == 2       # kept apart, correctly
    assert len(full.meetings()) == 2
    assert ssrc_only.unique_stream_count() == 1  # falsely merged
    assert len(ssrc_only.meetings()) == 1


def test_ablation_stun_timeout(report, benchmark):
    """Sweep the STUN timeout against a meeting whose P2P flow starts ~6 s
    after the exchange, plus a port-reuse event 200 s later."""
    result = MeetingSimulator(
        MeetingConfig(
            meeting_id="ablation-stun",
            participants=(
                ParticipantConfig(name="a", on_campus=True),
                ParticipantConfig(name="b", on_campus=False, join_time=0.5),
            ),
            duration=18.0,
            allow_p2p=True,
            p2p_switch_delay=6.0,
            seed=3,
        )
    ).run()
    parsed = [parse_frame(c.data, c.timestamp) for c in result.captures]
    truth = result.p2p_flows[0]
    # Port reuse much later by an unrelated application.
    from repro.net.packet import CapturedPacket, build_udp_frame

    reuse = parse_frame(
        build_udp_frame(truth.client_ip, truth.client_port, "93.184.0.9", 9999, b"game"),
        250.0,
    )

    def sweep():
        rows = []
        for timeout in (1.0, 30.0, 120.0, 100_000.0):
            detector = ZoomTrafficDetector(stun_timeout=timeout)
            detected = sum(
                1 for p in parsed if detector.classify(p) is ZoomClass.P2P_MEDIA
            )
            false_positive = detector.classify(reuse) is ZoomClass.P2P_MEDIA
            rows.append((timeout, detected, false_positive))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_stun_timeout",
        format_table(["timeout s", "P2P pkts detected", "port-reuse false positive"], rows),
    )
    by_timeout = {timeout: (detected, fp) for timeout, detected, fp in rows}
    assert by_timeout[1.0][0] == 0                 # too short: switch missed
    assert by_timeout[120.0][0] > 100              # paper-scale timeout: works
    assert not by_timeout[120.0][1]                # ...without the false positive
    assert by_timeout[100_000.0][1]                # unbounded: port reuse bites


def test_ablation_framerate_methods_divergence(report, benchmark):
    """Method 1 (delivered) dips under congestion while Method 2 (encoder)
    holds until the encoder adapts — their gap is the paper's network-problem
    indicator (§5.2).  Demonstrated on a queue-buildup scenario: the encoder
    keeps producing 30 fps (constant RTP increments) while delivery slows."""
    from collections import defaultdict

    from repro.core.metrics.framerate import FrameRateMethod1, FrameRateMethod2
    from repro.core.metrics.frames import CompletedFrame

    def run_scenario():
        delivered = FrameRateMethod1()
        encoder = FrameRateMethod2(90_000)
        for i in range(180):
            # Seconds 2-4 (frames 60-119): a queue adds 25 ms per frame.
            queueing = 0.025 * max(0, min(i, 119) - 59)
            completed = CompletedFrame(
                rtp_timestamp=i * 3000,
                frame_sequence=i,
                expected_packets=2,
                first_time=(i + 1) / 30.0 + queueing - 0.004,
                completed_time=(i + 1) / 30.0 + queueing,
                payload_bytes=1400,
            )
            delivered.observe(completed)
            encoder.observe(completed)
        d_by_second = defaultdict(list)
        e_by_second = defaultdict(list)
        for sample in delivered.samples:
            d_by_second[int(sample.time)].append(sample.fps)
        for sample in encoder.samples:
            e_by_second[int(sample.time)].append(sample.fps)
        return d_by_second, e_by_second

    d_by_second, e_by_second = benchmark(run_scenario)
    gaps = []
    for second in sorted(set(d_by_second) & set(e_by_second)):
        d = sum(d_by_second[second]) / len(d_by_second[second])
        e = sum(e_by_second[second]) / len(e_by_second[second])
        gaps.append((second, d, e, e - d))
    report(
        "ablation_framerate_methods",
        format_table(["second", "delivered fps (M1)", "encoder fps (M2)", "gap"], gaps),
    )
    congested = [g for s, _d, _e, g in gaps if 2 <= s <= 4]
    # Second 0 is Method 1's window warm-up; "calm" starts at second 1.
    calm = [abs(g) for s, _d, _e, g in gaps if s == 1]
    assert congested and max(congested) > 8.0    # delivery collapses, encoder holds
    assert calm and max(calm) < 3.0              # agreement when calm


def test_ablation_analyzer_throughput(campus, report, benchmark):
    """Packets per second through the full software pipeline."""
    trace, _model, _analysis = campus
    sample = trace.result.captures[:20_000]

    def analyze():
        return ZoomAnalyzer().analyze(sample).packets_total

    count = benchmark.pedantic(analyze, rounds=3, iterations=1)
    assert count == len(sample)
    stats = benchmark.stats.stats
    pps = len(sample) / stats.mean
    report(
        "ablation_analyzer_throughput",
        f"full pipeline: {pps:,.0f} packets/s single-core "
        f"(mean over {stats.rounds} rounds of {len(sample)} packets)",
    )
    assert pps > 3_000
