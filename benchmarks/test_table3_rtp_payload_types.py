"""Table 3 — RTP payload-type shares in the campus trace.

Paper: video/98 62.00%/79.27%, audio/112 22.04%/7.92%, video-FEC/110
6.14%/7.47%, screen/99 3.59%/3.72%, audio/113 2.96%/0.89%, audio/99 (silent)
2.60%/0.56%, audio-FEC/110 0.62%/0.13%.  Shape to hold: video main first by
a wide margin; speaking-mode audio ≫ silent-mode audio (muted participants
send nothing at all); FEC a ~10% shadow of its main substream.
"""

from repro.analysis.tables import format_table

PAPER = {
    (16, 98): ("video main", 62.00, 79.27),
    (15, 112): ("audio speaking", 22.04, 7.92),
    (16, 110): ("video FEC", 6.14, 7.47),
    (13, 99): ("screen share main", 3.59, 3.72),
    (15, 113): ("audio mode unknown", 2.96, 0.89),
    (15, 99): ("audio silent", 2.60, 0.56),
    (15, 110): ("audio FEC", 0.62, 0.13),
}


def test_table3_payload_types(campus, report, benchmark):
    _trace, _model, analysis = campus

    def build_table():
        return analysis.payload_type_table()

    rows = benchmark(build_table)
    shares = {(mt, pt): (pct, byte_pct) for mt, pt, pct, byte_pct in rows}

    out_rows = []
    for key, (name, paper_pct, paper_bytes) in PAPER.items():
        measured_pct, measured_bytes = shares.get(key, (0.0, 0.0))
        out_rows.append(
            (f"{key[0]}/{key[1]}", name, paper_pct, measured_pct, paper_bytes, measured_bytes)
        )
    report(
        "table3_rtp_payload_types",
        format_table(
            ["media/PT", "description", "paper %pkts", "ours %pkts",
             "paper %bytes", "ours %bytes"],
            out_rows,
        ),
    )

    # Shape assertions.
    assert shares[(16, 98)][0] == max(pct for pct, _ in shares.values())
    assert shares[(16, 98)][1] > 60.0                        # video bytes dominate
    assert shares[(15, 112)][0] > shares.get((15, 99), (0, 0))[0]  # speaking >> silent
    video_fec = shares.get((16, 110), (0.0, 0.0))[0]
    assert 0.02 * shares[(16, 98)][0] < video_fec < 0.25 * shares[(16, 98)][0]
    if (15, 113) in shares:                                   # mobile clients present
        assert shares[(15, 113)][0] < shares[(15, 112)][0]
