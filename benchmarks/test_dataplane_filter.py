"""Raw-bytes prefilter vs columnar prefilter vs no filter, in packets/s.

The software dataplane's tier 0.5 claim: on a border trace that is ~95%
background, deciding drop/pass straight off the frame bytes — before any
``HeaderColumns`` arrays are built — beats the post-decode
:class:`BatchPrefilter`, because the columnar path pays full header
decoding for every frame it is about to throw away.  The cBPF reference
interpreter is timed alongside as the (unoptimized, pure-Python) stand-in
for the kernel tier — in deployment that cost is paid inside the kernel
per ``recv``, not in Python at all.

Survivor equivalence is asserted before any number is reported.
"""

import io
import random
import time

from repro.analysis.tables import format_table
from repro.dataplane.cbpf import run_cbpf
from repro.dataplane.compiler import CaptureRules, compile_cbpf
from repro.dataplane.rawfilter import RawFrameFilter
from repro.net.batch import BatchPrefilter, decode_columns
from repro.net.packet import CapturedPacket, build_udp_frame
from repro.net.pcap import PcapReader, PcapWriter

FRAMES = 40_000
ZOOM_NET = "170.114.0.0/16"


def _border_batches():
    rng = random.Random(11)
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    zoom = build_udp_frame(
        "10.8.0.5", 20000, "170.114.1.1", 8801, b"\x05\x10" + bytes(700)
    )
    t = 0.0
    for i in range(FRAMES):
        t += 0.0001
        if i % 20 == 0:
            writer.write(CapturedPacket(t, zoom))
        else:
            src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            dst = f"93.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            writer.write(
                CapturedPacket(
                    t,
                    build_udp_frame(
                        src, rng.randrange(1024, 65000), dst, 443, bytes(400)
                    ),
                )
            )
    return list(PcapReader(io.BytesIO(buffer.getvalue())).read_batches())


def _timed(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_raw_prefilter_beats_columnar(report):
    batches = _border_batches()
    assert sum(len(b) for b in batches) == FRAMES

    def no_filter():
        # The pre-prefilter cost floor: full columnar decode of everything.
        decoded = 0
        for batch in batches:
            decode_columns(batch)
            decoded += len(batch)
        return decoded

    def columnar():
        prefilter = BatchPrefilter([ZOOM_NET])
        passed = 0
        for batch in batches:
            verdict = prefilter.apply(batch, decode_columns(batch))
            passed += len(verdict.survivors)
        return passed

    def raw():
        # Drop on raw bytes first; only survivors pay columnar decoding
        # (what LiveInterfaceSource and the batch pipeline integration do).
        prefilter = BatchPrefilter([ZOOM_NET])
        raw_filter = RawFrameFilter(prefilter)
        passed = 0
        for batch in batches:
            survivors, _stats = raw_filter.filter_batch(batch)
            decode_columns(survivors)
            passed += len(survivors)
        return passed

    def cbpf_reference():
        program = compile_cbpf(CaptureRules.from_networks([ZOOM_NET]))
        passed = 0
        for batch in batches:
            for frame, _ts in batch.iter_frames():
                if run_cbpf(program, frame):
                    passed += 1
        return passed

    decoded, base_time = _timed(no_filter)
    columnar_passed, columnar_time = _timed(columnar)
    raw_passed, raw_time = _timed(raw)
    cbpf_passed, cbpf_time = _timed(cbpf_reference, rounds=1)

    assert decoded == FRAMES
    # All three tiers keep exactly the Zoom share of the trace.
    assert raw_passed == columnar_passed == cbpf_passed == FRAMES // 20

    # The tentpole claim: pre-decode filtering beats post-decode filtering
    # on a background-heavy trace.
    assert raw_time < columnar_time, (
        f"raw-bytes prefilter ({raw_time:.3f}s) is not faster than the "
        f"columnar prefilter ({columnar_time:.3f}s)"
    )

    rows = [
        ("no filter (decode everything)", f"{base_time:.3f}", int(FRAMES / base_time)),
        ("columnar BatchPrefilter (post-decode)", f"{columnar_time:.3f}",
         int(FRAMES / columnar_time)),
        ("raw-bytes RawFrameFilter (pre-decode)", f"{raw_time:.3f}",
         int(FRAMES / raw_time)),
        ("cBPF reference interpreter (kernel-tier stand-in)",
         f"{cbpf_time:.3f}", int(FRAMES / cbpf_time)),
    ]
    report(
        "dataplane_filter",
        format_table(["filter strategy", "wall s", "packets/s"], rows)
        + f"\n\n95%-background border trace, {FRAMES} frames, "
        f"{FRAMES // 20} Zoom survivors in every strategy.\n"
        "In deployment the cBPF tier runs inside the kernel via "
        "SO_ATTACH_FILTER; the interpreter row is the pure-Python "
        "reference executor, not the deployed cost.",
    )
