"""Figures 11 & 12 — the latency measurement methods and frame-level timing.

Figure 11: the three RTT vantage legs — (1) RTP sequence matching through
the SFU, (2) TCP RTT to the client, (3) TCP RTT to the server — regenerated
on one meeting, with the upstream/downstream localization check.

Figure 12: frame-level interarrival computation on a bursty stream — the
RFC 3550 frame-level jitter stays near zero on a clean network where naive
packet-interarrival "jitter" explodes (the ablation the paper argues from).
"""

from repro.analysis.tables import format_table
from repro.core.metrics.jitter import FrameJitterEstimator, NaiveInterarrivalJitter
from repro.core.streams import RTPPacketRecord


def test_fig11_latency_methods(validation, report, benchmark):
    _result, analysis = validation

    def collect():
        rtp_samples = analysis.rtp_latency.samples
        estimator = next(iter(analysis.tcp_rtt.values()))
        return rtp_samples, estimator

    rtp_samples, tcp = benchmark(collect)
    rtp_mean = 1000 * sum(s.rtt for s in rtp_samples) / len(rtp_samples)
    server_mean = 1000 * sum(s.rtt for s in tcp.server_samples) / len(tcp.server_samples)
    client_mean = 1000 * sum(s.rtt for s in tcp.client_samples) / len(tcp.client_samples)

    rows = [
        ("(1) RTP seq matching, monitor<->SFU", len(rtp_samples), rtp_mean),
        ("(2) TCP proxy, monitor<->client", len(tcp.client_samples), client_mean),
        ("(3) TCP proxy, monitor<->server", len(tcp.server_samples), server_mean),
    ]
    report(
        "fig11_latency_methods",
        format_table(["method", "samples", "mean RTT ms"], rows)
        + f"\nasymmetry = {1000 * tcp.asymmetry():+.1f} ms -> congestion is "
        + ("outside" if tcp.asymmetry() > 0 else "inside") + " the campus",
    )

    # Method 1 produces far more samples than the TCP proxy (§5.3).
    assert len(rtp_samples) > 5 * len(tcp.server_samples)
    # The campus leg is short; the external leg dominates.
    assert client_mean < server_mean
    # Methods 1 and 3 measure almost the same path (monitor->SFU->monitor).
    assert abs(rtp_mean - server_mean) < 0.5 * server_mean


def _burst_stream(noise: float = 0.0) -> list[RTPPacketRecord]:
    """Three back-to-back packets per frame at 30 fps, optional path noise."""
    import random

    rng = random.Random(12)
    records = []
    seq = 0
    for i in range(200):
        base = 1.0 + i / 30.0 + (rng.uniform(0, noise) if noise else 0.0)
        for j in range(3):
            records.append(
                RTPPacketRecord(
                    timestamp=base + j * 0.0003,
                    five_tuple=("10.8.1.2", 50001, "170.114.1.1", 8801, 17),
                    ssrc=0x110,
                    payload_type=98,
                    sequence=seq,
                    rtp_timestamp=i * 3000,
                    marker=(j == 2),
                    media_type=16,
                    payload_len=900,
                    udp_payload_len=950,
                    packets_in_frame=3,
                    to_server=True,
                )
            )
            seq += 1
    return records


def test_fig12_frame_level_vs_naive(report, benchmark):
    clean = _burst_stream(noise=0.0)
    noisy = _burst_stream(noise=0.012)

    def run_estimators():
        results = {}
        for name, records in (("clean network", clean), ("12 ms path noise", noisy)):
            frame_level = FrameJitterEstimator(90_000)
            naive = NaiveInterarrivalJitter()
            for record in records:
                frame_level.observe(record)
                naive.observe(record)
            results[name] = (frame_level.jitter * 1000, naive.jitter * 1000)
        return results

    results = benchmark(run_estimators)
    rows = [
        (name, frame_ms, naive_ms) for name, (frame_ms, naive_ms) in results.items()
    ]
    report(
        "fig12_interarrival",
        format_table(["scenario", "frame-level jitter ms", "naive packet jitter ms"], rows)
        + "\n(naive interarrival misreads frame bursts as jitter; the frame-"
        "level computation isolates actual network variation — §5.4)",
    )

    clean_frame, clean_naive = results["clean network"]
    noisy_frame, _noisy_naive = results["12 ms path noise"]
    assert clean_frame < 0.01          # clean network, ~zero true jitter
    assert clean_naive > 1.0           # naive estimator fooled by bursts
    assert noisy_frame > 10 * max(clean_frame, 1e-6)  # reacts to real noise
