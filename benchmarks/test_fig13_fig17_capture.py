"""Figures 13 & 17 — the P4 capture pipeline and its packet-rate telemetry.

Figure 13: per-stage behaviour of the filter on mixed campus traffic — Zoom
server traffic passes statelessly, STUN teaches the registers, P2P flows hit
the registers, everything else drops.  The benchmark measures per-packet
filtering throughput, the quantity that determined deployability in §6.1.

Figure 17: the all-traffic vs Zoom-traffic packet-rate series from the
switch counters over the synthetic campus day.
"""

from repro.analysis.tables import format_table
from repro.analysis.timeseries import ascii_plot
from repro.capture.p4_model import P4CaptureModel
from repro.net.packet import parse_frame
from repro.zoom.packets import parse_zoom_payload


def test_fig13_pipeline_stages(campus, report, benchmark):
    trace, _shared_model, _analysis = campus
    packets = trace.all_packets()

    def run_filter():
        model = P4CaptureModel(rate_bin_width=1800.0)
        passed = sum(1 for _ in model.process(packets))
        return model, passed

    model, passed = benchmark.pedantic(run_filter, rounds=1, iterations=1)
    counters = model.counters

    rows = [
        ("packets in", counters.processed),
        ("no campus endpoint", counters.no_campus_endpoint),
        ("Zoom IP matched (pass)", counters.zoom_ip_matched),
        ("STUN learned (register write)", counters.stun_learned),
        ("P2P lookup matched (pass)", counters.p2p_matched),
        ("dropped", counters.dropped),
        ("passed total", passed),
    ]
    report("fig13_p4_pipeline", format_table(["stage", "packets"], rows))

    assert counters.processed == len(packets)
    assert passed == counters.zoom_ip_matched + counters.p2p_matched
    # All Zoom truth passed; all synthetic background dropped.
    assert passed == len(trace.result.captures)
    assert counters.dropped == len(trace.background)
    if trace.result.p2p_flows:
        assert counters.p2p_matched > 0


def test_fig13_no_media_packet_escapes(campus, benchmark):
    """False-negative check: every decodable Zoom media packet in the truth
    capture is passed by the filter."""
    trace, _model, _analysis = campus
    sample = trace.result.captures[:4000]

    def verify():
        model = P4CaptureModel()
        missed = 0
        for captured in sample:
            out = model.process_one(captured)
            if out is None:
                packet = parse_frame(captured.data, captured.timestamp)
                if packet.is_udp:
                    zoom = parse_zoom_payload(packet.payload)
                    if zoom.is_media:
                        missed += 1
        return missed

    assert benchmark.pedantic(verify, rounds=1, iterations=1) == 0


def test_fig17_packet_rate_series(campus, report, benchmark):
    trace, model, _analysis = campus

    def series():
        return model.rate_series()

    all_series, zoom_series = benchmark(series)
    report(
        "fig17_packet_rate",
        ascii_plot(all_series, label="all campus pkts/s ", height=8)
        + "\n"
        + ascii_plot(zoom_series, label="zoom pkts/s ", height=8),
    )
    assert all_series and zoom_series
    total_all = sum(v for _t, v in all_series)
    total_zoom = sum(v for _t, v in zoom_series)
    # Zoom is a subset of all traffic; in our synthetic mix it dominates
    # (the paper's ratio was ~7% — background volume is configurable).
    assert 0 < total_zoom <= total_all
    # The diurnal shape: some bins are clearly busier than others.
    values = [v for _t, v in zoom_series if v > 0]
    assert max(values) > 1.7 * (sum(values) / len(values))
