"""§8 — accuracy of switch-feasible approximate metrics vs exact ones.

The paper predicts that data-plane implementations of its metrics are
possible but that "the space constraints of high-speed programmable switches
may require approximate data structures limiting overall accuracy".  This
benchmark quantifies that trade-off on the validation call: integer/shift
jitter and register-window frame rate vs the exact estimators, across
register-array sizes (collision pressure).
"""

from collections import defaultdict

from repro.analysis.tables import format_table
from repro.capture.dataplane import DataplaneMetrics, stream_key_bytes
from repro.core import ZoomAnalyzer


def test_dataplane_accuracy(campus, report, benchmark):
    trace, _model, _analysis = campus
    retained = ZoomAnalyzer(keep_records=True).analyze(trace.result.captures)
    streams = [
        s for s in retained.media_streams() if s.media_type == 16 and s.packets > 100
    ]

    def run_variants():
        rows = []
        for buckets in (16, 256, 16384):
            metrics = DataplaneMetrics(buckets=buckets)
            for stream in streams:
                for record in stream.records:
                    metrics.observe(record)
            jitter_error = []
            fps_error = []
            for stream in streams:
                exact = retained.metrics_for(stream.key)
                key = stream_key_bytes(stream.records[-1])
                jitter_error.append(
                    abs(metrics.jitter.jitter_seconds(key) - exact.jitter.jitter) * 1000
                )
                tail_fps = [
                    s.fps
                    for s in exact.framerate_delivered.samples
                    if s.time > stream.last_time - 2
                ]
                if tail_fps:
                    fps_error.append(
                        abs(metrics.framerate.rate(key) - sum(tail_fps) / len(tail_fps))
                    )
            sram = metrics.resource_estimate()["sram_percent"]
            rows.append(
                (
                    buckets,
                    sum(jitter_error) / len(jitter_error),
                    sum(fps_error) / len(fps_error) if fps_error else float("nan"),
                    sram,
                )
            )
        return rows

    rows = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    report(
        "discussion_dataplane_accuracy",
        format_table(
            ["register buckets", "mean |jitter err| ms", "mean |fps err|", "SRAM %"],
            rows,
        )
        + "\n(large arrays: sub-ms jitter and ~1 fps agreement; tiny arrays"
        "\n show the collision-induced accuracy loss the paper anticipates)",
    )
    by_buckets = {buckets: (jerr, ferr, sram) for buckets, jerr, ferr, sram in rows}
    # With ample registers the approximation is excellent...
    assert by_buckets[16384][0] < 1.0
    assert by_buckets[16384][1] < 4.0
    # ...and still cheap in SRAM.
    assert by_buckets[16384][2] < 15.0
    # Collision pressure (141 streams in 16 slots) degrades accuracy.
    assert by_buckets[16][0] > 2.0 * max(by_buckets[16384][0], 0.01)


def test_dataplane_throughput(validation, benchmark):
    """Per-packet cost of the three estimators (the switch does this at
    line rate; the model's Python throughput bounds simulation scale)."""
    result, _analysis = validation
    retained = ZoomAnalyzer(keep_records=True).analyze(result.captures)
    records = []
    for stream in retained.media_streams():
        records.extend(stream.records)
    records.sort(key=lambda r: r.timestamp)
    per_second = defaultdict(int)
    for record in records:
        per_second[int(record.timestamp)] += 1

    def process_all():
        metrics = DataplaneMetrics(buckets=8192)
        for record in records:
            metrics.observe(record)
        return metrics.jitter.updates

    updates = benchmark(process_all)
    assert updates > 1000
