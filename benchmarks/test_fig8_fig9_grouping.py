"""Figures 8 & 9 — grouping streams into meetings, and its limitations.

Figure 8: the two-step heuristic on the campus trace — meeting count vs
ground truth, no cross-meeting merges despite SSRC reuse across meetings.

Figure 9: the two documented failure modes, reproduced deliberately:
(left) a passive participant is invisible to the estimate; (right) two
meetings behind one NAT address merge into one.
"""

from repro.analysis.tables import format_table
from repro.core import ZoomAnalyzer
from repro.core.meetings import MeetingGrouper
from repro.core.streams import RTPPacketRecord, StreamTable
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


def test_fig8_campus_grouping(campus, report, benchmark):
    trace, _model, analysis = campus

    def regroup():
        """Re-run grouping from scratch over the assembled streams."""
        grouper = MeetingGrouper()
        table = analysis.streams
        for stream in sorted(table.streams(), key=lambda s: s.first_time):
            grouper.observe_new_stream(stream, table)
        return grouper

    grouper = benchmark(regroup)
    meetings = grouper.meetings()
    truth = len(trace.meeting_configs)
    truth_ssrc_instances = len(trace.result.stream_truths)

    rows = [
        ("meetings (ground truth)", truth),
        ("meetings (inferred)", len(meetings)),
        ("merges performed", grouper.merges),
        ("media streams (ground truth)", truth_ssrc_instances),
        ("unique stream ids (step 1)", grouper.unique_stream_count()),
        ("network streams (copies)", len(analysis.streams)),
    ]
    report("fig8_stream_grouping", format_table(["quantity", "value"], rows))

    # SSRCs repeat across meetings (the emulator reuses the same scheme), so
    # step 1's timestamp windows are what keeps meetings apart.
    assert truth * 0.6 <= len(meetings) <= truth * 1.4
    # Step 1 must not invent streams: unique ids ≤ network streams, and it
    # must collapse most SFU copies.
    assert grouper.unique_stream_count() < len(analysis.streams)


def test_fig9_passive_participant_invisible(report, benchmark):
    result = MeetingSimulator(
        MeetingConfig(
            meeting_id="fig9a",
            participants=(
                ParticipantConfig(name="speaker", on_campus=True),
                ParticipantConfig(name="passive", on_campus=False, media=(), join_time=0.3),
            ),
            duration=10.0,
            allow_p2p=False,
            seed=9,
        )
    ).run()

    def analyze():
        return ZoomAnalyzer().analyze(result.captures)

    analysis = benchmark.pedantic(analyze, rounds=1, iterations=1)
    meeting = analysis.meetings[0]
    estimate = meeting.participant_estimate()
    report(
        "fig9_passive_participant",
        format_table(
            ["quantity", "value"],
            [
                ("true participants", 2),
                ("estimated participants", estimate),
                ("streams from passive participant", 0),
            ],
        ),
    )
    # The limitation is real: the passive off-campus participant is invisible.
    assert estimate == 1


def test_fig9_nat_merges_meetings(benchmark):
    """Two concurrent meetings whose campus clients share one (NAT) address
    appear as one meeting — the Figure 9 (right) failure mode."""

    def rec(src, sport, dst, ssrc, rtp_ts, t):
        return RTPPacketRecord(
            timestamp=t, five_tuple=(src, sport, dst, 8801, 17),
            ssrc=ssrc, payload_type=98, sequence=1, rtp_timestamp=rtp_ts,
            marker=False, media_type=16, payload_len=500, udp_payload_len=550,
            to_server=True,
        )

    nat_ip = "10.8.99.99"
    records = [
        rec(nat_ip, 50001, "170.114.1.1", ssrc=0x110, rtp_ts=1_000, t=1.0),
        rec(nat_ip, 51001, "170.114.2.2", ssrc=0x210, rtp_ts=900_000_000, t=1.5),
    ]

    def group():
        table = StreamTable()
        grouper = MeetingGrouper()
        for record in records:
            stream = table.observe(record)
            grouper.observe_new_stream(stream, table)
        return grouper

    grouper = benchmark(group)
    # Different SFUs, different SSRCs, distant timestamps: truly two
    # meetings — yet one shared client IP merges them.
    assert len(grouper.meetings()) == 1
