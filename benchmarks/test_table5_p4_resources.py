"""Table 5 — Tofino resource usage of the capture program, by component.

Paper: Zoom-IP match 2 stages / 0.7% TCAM / 0.1% SRAM / 1.3% instr / 0% hash;
P2P detection 7 / 1.0 / 10.9 / 3.4 / 16.7; anonymization 11 / 1.4 / 1.1 /
5.2 / 8.3.  The cost model must reproduce these within tolerance, and the
whole program must fit one Tofino ("lightweight": <15% of most resources).
"""

import pytest

from repro.analysis.tables import format_table
from repro.capture.resources import (
    component_usage,
    fits_budget,
    resource_usage_table,
    TableSpec,
)

PAPER = {
    "Zoom IP Match": (2, 0.7, 0.1, 1.3, 0.0),
    "P2P Detection": (7, 1.0, 10.9, 3.4, 16.7),
    "Anonymization": (11, 1.4, 1.1, 5.2, 8.3),
}


def test_table5_resource_usage(report, benchmark):
    table = benchmark(resource_usage_table)

    rows = []
    for component in table:
        got = component.percentages()
        paper = PAPER[component.name]
        rows.append(
            (component.name,
             f"{paper[0]} / {got['stages']:.0f}",
             f"{paper[1]} / {got['tcam']:.1f}",
             f"{paper[2]} / {got['sram']:.1f}",
             f"{paper[3]} / {got['instructions']:.1f}",
             f"{paper[4]} / {got['hash_units']:.1f}")
        )
        assert got["stages"] == paper[0]
        assert got["tcam"] == pytest.approx(paper[1], abs=1.0)
        assert got["sram"] == pytest.approx(paper[2], abs=1.5)
        assert got["instructions"] == pytest.approx(paper[3], abs=2.0)
        assert got["hash_units"] == pytest.approx(paper[4], abs=1.5)
    report(
        "table5_p4_resources",
        format_table(
            ["component (paper / model)", "stages", "TCAM %", "SRAM %",
             "instr %", "hash %"],
            rows,
        ),
    )
    assert fits_budget()


def test_table5_ablation_register_sizing(report, benchmark):
    """Ablation: how P2P-register capacity trades SRAM for collision risk."""

    def sweep():
        rows = []
        for entries in (4096, 16384, 65536, 262144):
            usage = component_usage(
                "p2p-registers",
                (
                    TableSpec("src", "register", key_bits=104, entries=entries, hash_units=5, stages=3),
                    TableSpec("dst", "register", key_bits=104, entries=entries, hash_units=5, stages=3),
                ),
            )
            rows.append((entries, usage.percentages()["sram"]))
        return rows

    rows = benchmark(sweep)
    report(
        "table5_ablation_registers",
        format_table(["register entries", "SRAM %"], rows),
    )
    sram = [s for _e, s in rows]
    assert sram == sorted(sram)
    assert sram[-1] > 4 * sram[-2] * 0.9  # linear in entries
