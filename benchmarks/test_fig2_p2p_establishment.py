"""Figure 2 — P2P connection establishment: STUN exchange, then direct flow.

Regenerates the event sequence: client exchanges STUN with a zone controller
on UDP 3478 from ephemeral port :X, then the media flow appears from the
same :X toward the peer — and verifies the detector catches it
deterministically, measuring classification throughput along the way.
"""

from repro.analysis.tables import format_table
from repro.core.detector import ZoomClass, ZoomTrafficDetector
from repro.net.packet import parse_frame
from repro.rtp.stun import is_stun
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


def _p2p_meeting():
    return MeetingSimulator(
        MeetingConfig(
            meeting_id="fig2",
            participants=(
                ParticipantConfig(name="campus", on_campus=True),
                ParticipantConfig(name="peer", on_campus=False, join_time=0.5),
            ),
            duration=20.0,
            allow_p2p=True,
            p2p_switch_delay=5.0,
            seed=2,
        )
    ).run()


def test_fig2_establishment_sequence(report, benchmark):
    result = _p2p_meeting()
    parsed = [parse_frame(c.data, c.timestamp) for c in result.captures]

    def classify_all():
        detector = ZoomTrafficDetector()
        return [detector.classify(p) for p in parsed]

    classes = benchmark(classify_all)

    first_stun = next(
        (p.timestamp for p, k in zip(parsed, classes) if k is ZoomClass.SERVER_STUN),
        None,
    )
    first_p2p = next(
        (p.timestamp for p, k in zip(parsed, classes) if k is ZoomClass.P2P_MEDIA),
        None,
    )
    truth = result.p2p_flows[0]
    stun_endpoints = {
        (p.src_ip, p.src_port)
        for p, k in zip(parsed, classes)
        if k is ZoomClass.SERVER_STUN and p.is_udp and is_stun(p.payload) and p.dst_port == 3478
    }

    assert first_stun is not None and first_p2p is not None
    assert first_stun < first_p2p  # STUN strictly precedes the P2P flow
    assert (truth.client_ip, truth.client_port) in stun_endpoints  # same port :X
    p2p_count = sum(1 for k in classes if k is ZoomClass.P2P_MEDIA)
    assert p2p_count > 200

    report(
        "fig2_p2p_establishment",
        format_table(
            ["event", "value"],
            [
                ("first STUN exchange at", f"{first_stun:.2f} s"),
                ("STUN client endpoint", f"{truth.client_ip}:{truth.client_port}"),
                ("P2P flow established (truth)", f"{truth.established_at:.2f} s"),
                ("first P2P packet classified", f"{first_p2p:.2f} s"),
                ("P2P media packets detected", p2p_count),
                ("false negatives", sum(1 for k in classes if k is ZoomClass.NOT_ZOOM)),
            ],
        ),
    )
    assert all(k.is_zoom for k in classes)
