"""Figures 3-5 — entropy-based header analysis.

Figure 4's three value-distribution archetypes (identifier / sequence /
random) must be recovered from synthetic fields, and Figure 5's field
inference must hold on an emulated Zoom video flow: the 1-byte media-type
and RTP-PT fields as identifiers, the 2-byte frame/RTP sequence numbers as
counters, the 4-byte RTP timestamp as a counter, and deep payload as random.
"""

import random

from repro.analysis.tables import format_table
from repro.core.entropy import (
    FieldClass,
    analyze_flow,
    classify_field,
    find_rtp_signature,
)
from repro.net.packet import parse_frame
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
from repro.zoom.packets import parse_zoom_payload


def _video_flow_payloads() -> list[bytes]:
    result = MeetingSimulator(
        MeetingConfig(
            meeting_id="fig5",
            participants=(
                ParticipantConfig(name="a", on_campus=True),
                ParticipantConfig(name="b", on_campus=True, join_time=0.5),
            ),
            duration=20.0,
            allow_p2p=False,
            seed=5,
        )
    ).run()
    flows: dict = {}
    for captured in result.captures:
        packet = parse_frame(captured.data, captured.timestamp)
        if packet.is_udp and packet.dst_port == 8801:
            zoom = parse_zoom_payload(packet.payload, from_server=True)
            if zoom.is_media and zoom.media.media_type == 16:
                flows.setdefault(packet.five_tuple, []).append(packet.payload)
    return max(flows.values(), key=len)


def test_fig4_archetype_patterns(report, benchmark):
    rng = random.Random(4)
    identifiers = [bytes([rng.choice([13, 15, 16])]) for _ in range(500)]
    sequences = [((7 * i) % 65536).to_bytes(2, "big") for i in range(500)]
    randoms = [rng.randbytes(4) for _ in range(500)]

    def classify_three():
        return (
            classify_field(identifiers, 0, 1).field_class,
            classify_field(sequences, 0, 2).field_class,
            classify_field(randoms, 0, 4).field_class,
        )

    identifier_class, sequence_class, random_class = benchmark(classify_three)
    assert identifier_class is FieldClass.IDENTIFIER
    assert sequence_class is FieldClass.COUNTER
    assert random_class is FieldClass.RANDOM
    report(
        "fig4_entropy_patterns",
        format_table(
            ["synthetic field", "expected", "classified"],
            [
                ("3-value byte", "identifier (horizontal lines)", identifier_class.value),
                ("wrapping counter", "sequence (angled lines)", sequence_class.value),
                ("random 32-bit", "random (uniform cloud)", random_class.value),
            ],
        ),
    )


def test_fig5_field_inference_on_zoom_flow(report, benchmark):
    payloads = _video_flow_payloads()

    def sweep():
        return analyze_flow(payloads, widths=(1, 2, 4), max_offset=64)

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(r.offset, r.width): r for r in reports}

    expectations = [
        # (offset, width, paper meaning, acceptable classes)
        (8, 1, "Zoom media type", {FieldClass.IDENTIFIER, FieldClass.CONSTANT}),
        (33, 1, "RTP PT superset byte", {FieldClass.IDENTIFIER, FieldClass.CONSTANT, FieldClass.MIXED}),
        (29, 2, "Zoom frame seq", {FieldClass.COUNTER}),
        (34, 2, "RTP seq", {FieldClass.COUNTER}),
        (36, 4, "RTP timestamp", {FieldClass.COUNTER}),
        (40, 4, "SSRC", {FieldClass.IDENTIFIER, FieldClass.CONSTANT}),
        (60, 4, "encrypted payload", {FieldClass.RANDOM}),
    ]
    rows = []
    for offset, width, meaning, acceptable in expectations:
        got = by_key[(offset, width)].field_class
        rows.append((offset, width, meaning, got.value, "ok" if got in acceptable else "MISMATCH"))
        assert got in acceptable, (offset, width, meaning, got)
    report(
        "fig5_field_inference",
        format_table(["offset", "width", "paper meaning", "classified", "check"], rows),
    )
    # The RTP signature search lands on the Table 2 video offset.
    assert 32 in find_rtp_signature(reports)
