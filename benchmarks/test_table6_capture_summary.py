"""Table 6 — capture summary of the campus trace.

Paper (12 h): 1,846 M packets (42,733/s), 583,777 flows, 1,203 GB
(222.9 Mbit/s), 59,020 RTP media streams.  Our trace is deliberately scaled
down (DESIGN.md §2): meetings last tens of seconds and arrive at unit rates,
so the comparison is of *structure* — the summary's rows are regenerable and
internally consistent — not absolute magnitude.
"""

from repro.analysis.tables import format_table
from repro.net.packet import parse_frame


def test_table6_capture_summary(campus, report, benchmark):
    trace, model, analysis = campus

    def summarize():
        flows = set()
        total_bytes = 0
        for captured in trace.result.captures:
            packet = parse_frame(captured.data, captured.timestamp)
            total_bytes += len(captured.data)
            if packet.five_tuple is not None:
                src = (packet.src_ip, packet.src_port)
                dst = (packet.dst_ip, packet.dst_port)
                flows.add((min(src, dst), max(src, dst), packet.protocol))
        return flows, total_bytes

    flows, total_bytes = benchmark.pedantic(summarize, rounds=1, iterations=1)

    duration_hours = trace.config.hours
    packets = len(trace.result.captures)
    seconds = duration_hours * 3600.0
    rows = [
        ("capture duration", "12 h", f"{duration_hours} h (sparse, scaled)"),
        ("Zoom packets", "1,846 M (42,733/s)", f"{packets:,} ({packets / seconds:,.2f}/s)"),
        ("Zoom flows", "583,777", f"{len(flows):,}"),
        ("Zoom data", "1,203 GB (222.9 Mbit/s)",
         f"{total_bytes / 1e6:,.1f} MB ({8 * total_bytes / seconds / 1e3:,.1f} kbit/s)"),
        ("RTP media streams", "59,020", f"{len(analysis.streams):,} network / "
         f"{analysis.grouper.unique_stream_count():,} unique"),
        ("meetings (ground truth)", "n/a", f"{len(trace.meeting_configs):,}"),
        ("meetings (inferred)", "n/a", f"{len(analysis.meetings):,}"),
    ]
    report("table6_capture_summary", format_table(["statistic", "paper", "ours"], rows))

    assert packets > 10_000
    assert len(flows) > 20
    assert len(analysis.streams) >= analysis.grouper.unique_stream_count()
    # Internal consistency: the analyzer consumed exactly what the filter passed.
    assert analysis.packets_total == model.counters.passed
