"""§8 "In-Network Monitoring and Control" — the paper's proposed actions.

The discussion section sketches what a switch could do once it parses Zoom
headers: DSCP annotation by packet type/importance, and selective forwarding
of SVC layers in response to congestion.  These benchmarks regenerate both:

* DSCP marking coverage and throughput over the campus trace;
* SVC temporal thinning: measured downstream with our own analyzer, FEC
  drop sheds bytes without touching frame rate, and layer halving cuts the
  delivered video frame rate in half while streams stay decodable.
"""

from repro.analysis.tables import format_table
from repro.capture.control import DscpAnnotator, SvcLayerDropper
from repro.core import ZoomAnalyzer
from repro.net.packet import parse_frame
from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig


def test_dscp_annotation(campus, report, benchmark):
    trace, _model, _analysis = campus
    sample = trace.result.captures[:8000]

    def annotate_all():
        annotator = DscpAnnotator()
        marked = [annotator.annotate(packet) for packet in sample]
        return annotator, marked

    annotator, marked = benchmark.pedantic(annotate_all, rounds=1, iterations=1)
    from collections import Counter

    dscp_counts = Counter()
    for packet in marked:
        parsed = parse_frame(packet.data)
        if parsed.ipv4 is not None:
            dscp_counts[parsed.ipv4.dscp] += 1
    rows = [
        ("EF 46 (audio)", dscp_counts.get(46, 0)),
        ("AF41 34 (video)", dscp_counts.get(34, 0)),
        ("AF31 26 (screen share)", dscp_counts.get(26, 0)),
        ("BE 0 (control/RTCP/other)", dscp_counts.get(0, 0)),
    ]
    report("discussion_dscp_annotation", format_table(["class", "packets"], rows))
    # Media is ~80% of campus packets; TCP control and the ~10% undecoded
    # control packets stay best-effort.
    assert annotator.marked > 0.7 * len(sample)
    assert dscp_counts.get(34, 0) > dscp_counts.get(46, 0) * 0.5
    # Every marked packet still parses with a valid checksum.
    assert sum(dscp_counts.values()) == len(sample)


def test_svc_thinning_effect(report, benchmark):
    result = MeetingSimulator(
        MeetingConfig(
            meeting_id="svc",
            participants=(
                ParticipantConfig(name="a", on_campus=True),
                ParticipantConfig(name="b", on_campus=True, join_time=0.5),
            ),
            duration=20.0,
            allow_p2p=False,
            seed=88,
        )
    ).run()
    window = (6.0, 14.0)

    def run_variants():
        variants = {}
        for name, kwargs in (
            ("baseline", dict(drop_fec=False, halve_frame_rate=False)),
            ("drop FEC", dict(drop_fec=True, halve_frame_rate=False)),
            ("halve frame rate", dict(drop_fec=True, halve_frame_rate=True)),
        ):
            dropper = SvcLayerDropper(
                congested=lambda t: window[0] <= t <= window[1], **kwargs
            )
            thinned = dropper.process(result.captures)
            analysis = ZoomAnalyzer().analyze(thinned)
            stream = next(
                s for s in analysis.media_streams()
                if s.ssrc == 0x110 and s.to_server is True
            )
            metrics = analysis.metrics_for(stream.key)
            fps_inside = [
                s.fps for s in metrics.framerate_delivered.samples
                if window[0] + 1.5 <= s.time <= window[1] - 0.5
            ]
            variants[name] = (
                len(thinned),
                sum(fps_inside) / len(fps_inside) if fps_inside else 0.0,
                dropper.dropped_fec,
                dropper.dropped_frames,
            )
        return variants

    variants = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = [
        (name, packets, fps, fec, frames)
        for name, (packets, fps, fec, frames) in variants.items()
    ]
    report(
        "discussion_svc_thinning",
        format_table(
            ["policy", "packets fwd", "video fps in window", "FEC dropped", "frames dropped"],
            rows,
        ),
    )
    base_fps = variants["baseline"][1]
    fec_fps = variants["drop FEC"][1]
    halved_fps = variants["halve frame rate"][1]
    assert abs(fec_fps - base_fps) < 3.0            # FEC drop preserves fps
    assert variants["drop FEC"][0] < variants["baseline"][0]
    assert 0.35 * base_fps < halved_fps < 0.7 * base_fps  # ~half the rate
