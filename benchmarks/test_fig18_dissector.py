"""Figure 18 — the Wireshark-plugin view of a Zoom video packet.

Regenerates the packet-details tree the plugin screenshot shows and
benchmarks dissection throughput (the plugin must keep up with live
captures).
"""

from repro.core.dissector import dissect, dissect_text
from repro.net.packet import parse_frame
from repro.zoom.packets import parse_zoom_payload


def _one_video_payload(campus):
    trace, _model, _analysis = campus
    for captured in trace.result.captures:
        packet = parse_frame(captured.data, captured.timestamp)
        if packet.is_udp and packet.dst_port == 8801 and len(packet.payload) > 400:
            zoom = parse_zoom_payload(packet.payload, from_server=True)
            if zoom.is_media and zoom.media.media_type == 16:
                return packet.payload
    raise AssertionError("no video packet found")


def test_fig18_dissection_tree(campus, report, benchmark):
    payload = _one_video_payload(campus)

    def run():
        return dissect(payload, from_server=True)

    tree = benchmark(run)
    text = tree.render()
    report("fig18_dissector", text)

    # The tree carries everything the Figure 18 screenshot shows.
    for field in (
        "zoom.sfu.type",
        "zoom.sfu.direction",
        "zoom.media.type",
        "zoom.media.frame_seq",
        "zoom.media.pkts_in_frame",
        "rtp.p_type",
        "rtp.seq",
        "rtp.timestamp",
        "rtp.ssrc",
        "zoom.payload",
    ):
        assert tree.find(field) is not None, field
    assert "Zoom Media Encapsulation (VIDEO)" in text
    assert "Real-Time Transport Protocol" in text


def test_fig18_dissection_throughput(campus, benchmark):
    trace, _model, _analysis = campus
    payloads = []
    for captured in trace.result.captures[:2000]:
        packet = parse_frame(captured.data, captured.timestamp)
        if packet.is_udp and 8801 in (packet.src_port, packet.dst_port):
            payloads.append(packet.payload)

    def dissect_batch():
        return sum(1 for payload in payloads if dissect_text(payload) is not None)

    count = benchmark(dissect_batch)
    assert count == len(payloads)
