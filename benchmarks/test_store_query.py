"""What the metrics store costs to write and what its index buys on read.

Two numbers an operator sizes a longitudinal campaign with:

* **Ingest rate** — window records appended per second through the full
  durability path (CRC framing, threshold sealing, manifest rewrites).
  Window cadence is one record per ~10 s of capture time, so anything
  above a few thousand records/s means store overhead is noise.
* **Indexed-query speedup** — a narrow time-range query planned off the
  manifest's per-segment footers versus the same query forced to
  decompress every segment (``use_index=False``).  This is the paper's
  §6.2 workflow — slice a long campus capture by time/meeting/media —
  made cheap enough to run interactively.
"""

import time

from repro.analysis.tables import format_table
from repro.core import StoreConfig
from repro.store import MetricsStore, StoreQuery

#: A day-scale campaign at 10 s windows, hourly partitions scaled down so
#: the benchmark stays seconds-fast: 7200 windows over 72 partitions.
WINDOWS = 7200
PARTITION_SECONDS = 1000.0
WINDOW_SECONDS = 10.0
REPEATS = 3


def _window(index: int) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * WINDOW_SECONDS,
        "end": (index + 1) * WINDOW_SECONDS,
        "packets_total": 1000 + index % 97,
        "bytes_total": 900_000 + index % 1013,
        "zoom_packets": 950,
        "meetings_formed": index % 7 == 0,
        "meetings_active": 1 + index % 3,
        "streams_evicted": 0,
        "forced": False,
        "media": [
            {
                "media": name,
                "packets": 450,
                "bytes": 450_000,
                "bitrate_bps": 360_000.0,
                "streams": 2,
                "streams_opened": 0,
                "p2p_packets": 0,
                "mean_fps": 24.0 + (index % 11),
                "mean_jitter_ms": 2.0,
                "lost": index % 5,
                "duplicates": 0,
            }
            for name in ("audio", "video")
        ],
    }


def test_store_ingest_and_indexed_query(tmp_path, report):
    config = StoreConfig(
        partition_seconds=PARTITION_SECONDS, seal_records=128, gzip_level=6
    )
    store = MetricsStore(tmp_path / "store", config)
    started = time.perf_counter()
    for index in range(WINDOWS):
        store.append(_window(index))
    store.close()
    ingest_elapsed = time.perf_counter() - started
    ingest_rate = WINDOWS / ingest_elapsed
    segments = store.segments()

    # One partition out of 72: the index should skip nearly everything.
    lo = 35 * PARTITION_SECONDS
    narrow = StoreQuery(start=lo, end=lo + PARTITION_SECONDS)
    reader = MetricsStore(tmp_path / "store", config)

    indexed_best = scanned_best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        indexed = reader.query(narrow)
        indexed_best = min(indexed_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        scanned = reader.query(
            StoreQuery(start=lo, end=lo + PARTITION_SECONDS, use_index=False)
        )
        scanned_best = min(scanned_best, time.perf_counter() - t0)

    # The speedup is only worth reporting if both plans agree exactly.
    assert indexed.records == scanned.records
    assert indexed.records  # the range is populated
    assert indexed.segments_skipped > 0
    assert scanned.segments_skipped == 0
    assert indexed.records_examined < scanned.records_examined
    speedup = scanned_best / indexed_best

    report(
        "store_query",
        format_table(
            ["metric", "value"],
            [
                ("windows ingested", WINDOWS),
                ("ingest rate (records/s)", f"{ingest_rate:,.0f}"),
                ("sealed segments", len(segments)),
                ("store size (bytes)", store.total_bytes()),
                ("narrow-query records", indexed.count),
                ("segments scanned (indexed)", indexed.segments_scanned),
                ("segments skipped (indexed)", indexed.segments_skipped),
                ("records examined (indexed)", indexed.records_examined),
                ("records examined (full scan)", scanned.records_examined),
                ("query time indexed (ms)", f"{1000 * indexed_best:.2f}"),
                ("query time full scan (ms)", f"{1000 * scanned_best:.2f}"),
                ("indexed speedup", f"{speedup:.1f}x"),
            ],
        ),
    )
    assert speedup > 1.0  # skipping segments must not be slower
