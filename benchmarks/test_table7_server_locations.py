"""Table 7 — Zoom server locations (MMRs and zone controllers).

Paper: 5,452 MMRs and 256 ZCs across 15 locations, US sites first
(California 1,410/68, New York 1,280/62, ...).  The synthetic directory
reproduces the location list, the naming scheme, and the proportions at a
configurable scale.
"""

from repro.analysis.tables import format_table
from repro.simulation.infrastructure import TABLE7_LOCATIONS, ServerDirectory


def test_table7_locations(report, benchmark):
    def build():
        return ServerDirectory(scale=0.05)

    directory = benchmark(build)
    table = directory.location_table()

    paper_by_location = {loc: (mmr, zc) for loc, _code, mmr, zc in TABLE7_LOCATIONS}
    rows = []
    for location, mmrs, zcs in table:
        paper_mmr, paper_zc = paper_by_location[location]
        rows.append((location, paper_mmr, mmrs, paper_zc, zcs))
    totals = (
        "Total",
        sum(m for m, _z in paper_by_location.values()),
        sum(m for _l, m, _z in table),
        sum(z for _m, z in paper_by_location.values()),
        sum(z for _l, _m, z in table),
    )
    rows.append(totals)
    report(
        "table7_server_locations",
        format_table(["location", "paper #MMR", "ours #MMR", "paper #ZC", "ours #ZC"], rows),
    )

    # Shape: same location set, proportional counts, US/California first.
    assert len(table) == len(TABLE7_LOCATIONS)
    assert table[0][0] == "United States / California"
    for location, mmrs, zcs in table:
        paper_mmr, paper_zc = paper_by_location[location]
        assert mmrs == max(1, round(paper_mmr * 0.05))
        assert zcs == max(1, round(paper_zc * 0.05))
    # MMRs outnumber ZCs overall, as in the paper (5,452 vs 256).
    assert totals[2] > 5 * totals[4]


def test_table7_reverse_dns_scheme(benchmark):
    directory = ServerDirectory(scale=0.02)

    def resolve_all():
        return [directory.lookup(server.ip) for server in directory.servers]

    resolved = benchmark(resolve_all)
    assert all(server is not None for server in resolved)
    for server in directory.servers[:50]:
        assert server.hostname.endswith(".zoom.us")
        assert ("mmr" in server.hostname) == server.is_mmr
        assert ("zc" in server.hostname) == server.is_zc
