"""Figures 14-16 — the campus performance study.

Figure 14: media bit rate per type over the day, with the hour-boundary
spikes and diurnal envelope.

Figure 15: per-media-type distributions in 1-second bins — (a) data rate:
screen share is closer to audio than to video; (b) frame rate: screen share
has a mass at zero and ~half its samples ≤5 fps, video is bimodal around
14/28 fps; (c) frame size: >50% of screen-share frames under 500 B with a
long tail, most video frames under ~2000 B; (d) video frame-level jitter
mostly below 20 ms with a long tail.

Figure 16: jitter does not correlate with bit rate or frame rate.
"""

from collections import defaultdict

from repro.analysis.cdfs import cdf_of
from repro.analysis.correlation import pearson, spearman
from repro.analysis.tables import format_table
from repro.analysis.timeseries import ascii_plot, resample_sum
from repro.zoom.constants import ZoomMediaType

VIDEO = int(ZoomMediaType.VIDEO)
AUDIO = int(ZoomMediaType.AUDIO)
SCREEN = int(ZoomMediaType.SCREEN_SHARE)


def _per_stream_metric_values(analysis):
    """1-second-bin metric values per media type, as §6.2 computes them."""
    rate = defaultdict(list)
    fps = defaultdict(list)
    sizes = defaultdict(list)
    jitter = defaultdict(list)
    for stream in analysis.media_streams():
        metrics = analysis.metrics_for(stream.key)
        media_type = stream.media_type
        rate[media_type].extend(
            analysis.bitrate.stream_rate_values(stream.five_tuple, stream.ssrc)
        )
        per_second = defaultdict(list)
        for sample in metrics.framerate_delivered.samples:
            per_second[int(sample.time)].append(sample.fps)
        fps[media_type].extend(
            sum(v) / len(v) for v in per_second.values()
        )
        # Screen share: seconds with zero completed frames count as 0 fps.
        if media_type == SCREEN and stream.duration > 2:
            active = set(per_second)
            for second in range(int(stream.first_time), int(stream.last_time)):
                if second not in active:
                    fps[media_type].append(0.0)
        sizes[media_type].extend(metrics.framesize.sizes())
        if media_type == VIDEO:
            jitter[media_type].extend(1000 * s.jitter for s in metrics.jitter.samples)
    return rate, fps, sizes, jitter


def test_fig14_diurnal_bitrate(campus, report, benchmark):
    _trace, _model, analysis = campus

    def build_series():
        return {
            media_type: analysis.bitrate.media_type_rate_series(media_type)
            for media_type in (VIDEO, AUDIO, SCREEN)
        }

    series = benchmark(build_series)
    plot = []
    for media_type, name in ((VIDEO, "video"), (AUDIO, "audio"), (SCREEN, "screen share")):
        if series[media_type]:
            hourly = resample_sum(series[media_type], 3600.0)
            hourly = [(t, v / 3600.0) for t, v in hourly]
            plot.append(ascii_plot(hourly, label=f"{name} bit/s ", height=6))
    report("fig14_datarate_timeseries", "\n".join(plot))

    video_total = sum(v for _t, v in series[VIDEO])
    audio_total = sum(v for _t, v in series[AUDIO])
    assert video_total > 3 * audio_total  # video dominates (Fig 14)
    # Diurnal envelope: the busiest hour clearly beats the quietest.
    hourly_video = [v for _t, v in resample_sum(series[VIDEO], 3600.0)]
    busy, quiet = max(hourly_video), min(v for v in hourly_video)
    assert busy > 2 * max(quiet, 1.0)


def test_fig15_metric_cdfs(campus, report, benchmark):
    _trace, _model, analysis = campus

    rate, fps, sizes, jitter = benchmark.pedantic(
        lambda: _per_stream_metric_values(analysis), rounds=1, iterations=1
    )

    fractions = (0.10, 0.25, 0.50, 0.75, 0.90)
    rows = []
    for label, values in (
        ("a: rate kbit/s, audio", [v / 1000 for v in rate[AUDIO]]),
        ("a: rate kbit/s, screen", [v / 1000 for v in rate[SCREEN]]),
        ("a: rate kbit/s, video", [v / 1000 for v in rate[VIDEO]]),
        ("b: fps, screen", fps[SCREEN]),
        ("b: fps, video", fps[VIDEO]),
        ("c: frame B, screen", sizes[SCREEN]),
        ("c: frame B, video", sizes[VIDEO]),
        ("d: jitter ms, video", jitter[VIDEO]),
    ):
        cdf = cdf_of(values)
        rows.append([label, *cdf.quantile_row(fractions), cdf.count])
    report(
        "fig15_metric_cdfs",
        format_table(["metric / media", "p10", "p25", "p50", "p75", "p90", "n"], rows),
    )

    # (a) screen-share rates sit near audio, far from video (§6.2).
    video_rate = cdf_of(rate[VIDEO])
    audio_rate = cdf_of(rate[AUDIO])
    screen_rate = cdf_of(rate[SCREEN])
    assert video_rate.median > 4 * audio_rate.median
    assert screen_rate.median < video_rate.median / 2
    # (b) screen share: a mass at 0 fps, roughly half at <=5 fps.
    screen_fps = cdf_of(fps[SCREEN])
    assert screen_fps.probability_below(0.0) > 0.05
    assert 0.25 < screen_fps.probability_below(5.0) < 0.95
    # (b) video: bimodal around 14 and 28 fps.
    video_fps = cdf_of(fps[VIDEO])
    low_cluster = video_fps.probability_below(18.0) - video_fps.probability_below(9.0)
    high_cluster = video_fps.probability_below(31.0) - video_fps.probability_below(23.0)
    assert low_cluster > 0.15 and high_cluster > 0.15
    # (c) sizes: >40% of screen-share frames small, long tail; most video
    # frames under ~2800 B.
    screen_sizes = cdf_of(sizes[SCREEN])
    assert screen_sizes.probability_below(500) > 0.4
    assert screen_sizes.quantile(0.99) > 3 * screen_sizes.median
    video_sizes = cdf_of(sizes[VIDEO])
    assert video_sizes.probability_below(2800) > 0.5
    # (d) jitter mostly below 20 ms, long tail present.
    video_jitter = cdf_of(jitter[VIDEO])
    assert video_jitter.probability_below(20.0) > 0.7
    assert video_jitter.quantile(0.99) > 2 * video_jitter.median


def test_fig16_jitter_uncorrelated(campus, report, benchmark):
    _trace, _model, analysis = campus

    def collect_pairs():
        jitter_values, rate_values, fps_values = [], [], []
        for stream in analysis.media_streams():
            if stream.media_type != VIDEO:
                continue
            metrics = analysis.metrics_for(stream.key)
            per_second_jitter = defaultdict(list)
            for sample in metrics.jitter.samples:
                per_second_jitter[int(sample.time)].append(sample.jitter * 1000)
            per_second_fps = defaultdict(list)
            for sample in metrics.framerate_delivered.samples:
                per_second_fps[int(sample.time)].append(sample.fps)
            rates = {
                int(t): v
                for t, v in analysis.bitrate.stream_rate_series(stream.five_tuple, stream.ssrc)
            }
            for second, jitters in per_second_jitter.items():
                if second in per_second_fps and second in rates:
                    jitter_values.append(sum(jitters) / len(jitters))
                    fps_values.append(
                        sum(per_second_fps[second]) / len(per_second_fps[second])
                    )
                    rate_values.append(rates[second])
        return jitter_values, rate_values, fps_values

    jitter_values, rate_values, fps_values = benchmark.pedantic(
        collect_pairs, rounds=1, iterations=1
    )
    assert len(jitter_values) > 300
    correlations = {
        "pearson(jitter, bitrate)": pearson(jitter_values, rate_values),
        "spearman(jitter, bitrate)": spearman(jitter_values, rate_values),
        "pearson(jitter, fps)": pearson(jitter_values, fps_values),
        "spearman(jitter, fps)": spearman(jitter_values, fps_values),
    }
    report(
        "fig16_jitter_correlation",
        format_table(
            ["correlation", "value"],
            [(k, f"{v:+.3f}") for k, v in correlations.items()],
        )
        + f"\nsamples: {len(jitter_values)} (1 s bins, video streams)",
    )
    # The paper's negative result: no strong relationship in either pairing.
    for name, value in correlations.items():
        assert abs(value) < 0.45, (name, value)
