"""What federating a query across a fleet costs over querying one store.

The fleet plane fans one :class:`StoreQuery` out to N node stores on a
thread pool and merges raw results through the same shaping path a single
store uses.  Two numbers size a deployment:

* **Fan-out latency vs node count** — the same day-scale record set
  partitioned over 1/2/4/8 node stores, federated each way.  Threads
  overlap the per-node scan, so the federated query should track the
  slowest node (≈ the single-store time divided by the fan-out), not the
  sum of nodes.
* **Federation overhead** — the federated answer over the partitioned
  fleet against a plain single-store query over the union of the same
  records.  Bit-identity is asserted while timing, so the overhead number
  is for the *same* answer.
"""

import time

from repro.analysis.tables import format_table
from repro.core import FleetConfig, FleetNodeConfig, StoreConfig
from repro.fleet import federated_query
from repro.store import MetricsStore, StoreQuery

#: Day-scale campaign at 10 s windows, as in test_store_query.py.
WINDOWS = 7200
PARTITION_SECONDS = 1000.0
WINDOW_SECONDS = 10.0
NODE_COUNTS = (1, 2, 4, 8)
REPEATS = 3

QUERY = StoreQuery(kinds=("window",), reaggregate_seconds=60.0)


def _window(index: int) -> dict:
    return {
        "kind": "window",
        "window": index,
        "start": index * WINDOW_SECONDS,
        "end": (index + 1) * WINDOW_SECONDS,
        "packets_total": 1000 + index % 97,
        "bytes_total": 900_000 + index % 1013,
        "zoom_packets": 950,
        "meetings_formed": index % 7 == 0,
        "meetings_active": 1 + index % 3,
        "streams_evicted": 0,
        "forced": False,
        "media": [
            {
                "media": name,
                "packets": 450,
                "bytes": 450_000,
                "bitrate_bps": 360_000.0,
                "streams": 2,
                "streams_opened": 0,
                "p2p_packets": 0,
                "mean_fps": 24.0 + (index % 11),
                "mean_jitter_ms": 2.0,
                "lost": index % 5,
                "duplicates": 0,
            }
            for name in ("audio", "video")
        ],
    }


def _build_store(path) -> MetricsStore:
    config = StoreConfig(
        partition_seconds=PARTITION_SECONDS, seal_records=128, gzip_level=1
    )
    store = MetricsStore(path, config)
    return store


def _build_fleet(root, node_count: int) -> tuple[FleetConfig, dict]:
    """Partition the window set round-robin over ``node_count`` stores."""
    stores = {}
    nodes = []
    writers = []
    for i in range(node_count):
        path = root / f"n{i}"
        writers.append(_build_store(path))
        nodes.append(FleetNodeConfig(name=f"n{i}", store_dir=str(path)))
    for index in range(WINDOWS):
        writers[index % node_count].append(_window(index))
    for i, writer in enumerate(writers):
        writer.close()
        stores[f"n{i}"] = MetricsStore(root / f"n{i}")
    return FleetConfig(nodes=tuple(nodes)), stores


def test_fleet_query_fanout(tmp_path, report):
    # The union baseline: every record in one store.
    union = _build_store(tmp_path / "union")
    for index in range(WINDOWS):
        union.append(_window(index))
    union.close()
    reader = MetricsStore(tmp_path / "union")

    union_best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        expected = reader.query(QUERY)
        union_best = min(union_best, time.perf_counter() - t0)

    rows = [
        ("windows", WINDOWS),
        ("query", "windows reaggregated to 60 s"),
        ("single-store time (ms)", f"{1000 * union_best:.2f}"),
    ]
    for node_count in NODE_COUNTS:
        config, stores = _build_fleet(tmp_path / f"fleet-{node_count}", node_count)
        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = federated_query(config, QUERY, local_stores=stores)
            best = min(best, time.perf_counter() - t0)
        # Same answer, bit for bit, regardless of the partitioning.
        assert result.records == expected.records
        assert result.nodes_missing == []
        overhead = best / union_best
        rows.append(
            (
                f"federated over {node_count} node(s) (ms)",
                f"{1000 * best:.2f} ({overhead:.2f}x single store)",
            )
        )

    report("fleet_query", format_table(["metric", "value"], rows))
