"""The per-meeting QoE state machine: pure, window-in / transition-out.

The machine consumes one :class:`QoeSample` per scoring window and holds one
of four states — GOOD, DEGRADED, IMPAIRED, CRITICAL — the operator-facing
ladder the ROADMAP's "Closed-loop QoE" item asks for (wanctl's
GREEN/YELLOW/SOFT_RED/RED machine is the exemplar).  Classification keys on
exactly the window metrics the paper's pipeline already emits (§5): a
recovery-visible loss fraction, an RFC-3550 jitter estimate, and the
delivered-frame-rate ratio whose collapse "Can You See Me Now?" identifies
as the dominant user-visible failure.

Hysteresis has three independent guards, and their composition makes the
zero-flap property *structural*:

* **Enter/exit threshold gap** — a metric must clear the enter threshold to
  escalate but fall below ``enter * exit_fraction`` to de-escalate, so a
  value hovering at a threshold cannot alternately satisfy both.
* **Streaks with consensus targets** — escalation needs ``enter_windows``
  consecutive above-state windows that *agree* on the same higher severity,
  and de-escalation needs ``exit_windows`` consecutive below-state windows
  agreeing on the same lower one.  Consensus matters at both edges for the
  same reason: the window straddling an impairment's onset carries only
  part of the damage, and the first window after its end still carries
  residue, so min/max-over-streak rules would staircase entry and recovery
  through intermediate states.  A boundary window merely restarts the
  consensus count; it cannot drag the target.  If a streak runs to twice
  its required length without consensus (genuinely oscillating severity),
  the machine falls back to the streak minimum on entry and the streak
  maximum on exit — the two conservative choices — so it cannot get stuck.
* **Dwell** — any transition requires at least ``min_dwell_windows`` scored
  windows since the previous one.  Because every transition resets the
  counter, two transitions can never be closer than the dwell, whatever the
  input series does — the invariant the Hypothesis suite checks.

The machine is deliberately free of I/O, clocks, and analyzer types so the
batch, rolling, and live-service paths drive the identical object; feeding
the same window sequence one sample at a time or via :meth:`observe_batch`
yields the identical transition sequence by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable

from repro.core.config import QoeConfig


class QoeState(IntEnum):
    """The operator-facing QoE ladder; comparisons follow severity."""

    GOOD = 0
    DEGRADED = 1
    IMPAIRED = 2
    CRITICAL = 3


@dataclass(frozen=True, slots=True)
class QoeSample:
    """One meeting-window's monitor-visible QoE signals.

    Attributes:
        window_index: Tumbling-window index (``floor(time / width)``).
        window_end: Capture-time end of the window.
        packets: Media packets the meeting's streams received in the window.
        loss_fraction: Worst qualifying stream's recovery-visible loss share
            (sequence gaps / (gaps + received)); NaN when no stream
            qualifies.
        jitter_ms: Worst qualifying stream's RFC-3550 jitter estimate at
            window close; NaN when no stream qualifies.
        fps_ratio: Worst video stream's delivered fps over its learned
            baseline; NaN while no baseline exists.
    """

    window_index: int
    window_end: float
    packets: int
    loss_fraction: float
    jitter_ms: float
    fps_ratio: float


@dataclass(frozen=True, slots=True)
class QoeTransition:
    """One state-machine transition, with the window that triggered it."""

    window_index: int
    time: float
    previous: QoeState
    state: QoeState
    windows_in_previous: int
    observation: int
    reason: str
    sample: QoeSample


def _severity(
    value: float, degraded: float, impaired: float, critical: float
) -> QoeState:
    """Severity of one ascending metric against three thresholds (NaN=GOOD)."""
    if math.isnan(value):
        return QoeState.GOOD
    if value > critical:
        return QoeState.CRITICAL
    if value > impaired:
        return QoeState.IMPAIRED
    if value > degraded:
        return QoeState.DEGRADED
    return QoeState.GOOD


def _fps_severity(
    ratio: float, degraded: float, impaired: float, critical: float
) -> QoeState:
    """Severity of the fps *ratio* (descending: lower is worse; NaN=GOOD)."""
    if math.isnan(ratio):
        return QoeState.GOOD
    if ratio < critical:
        return QoeState.CRITICAL
    if ratio < impaired:
        return QoeState.IMPAIRED
    if ratio < degraded:
        return QoeState.DEGRADED
    return QoeState.GOOD


class QoeStateMachine:
    """Hysteresis state machine over a sequence of :class:`QoeSample`.

    One instance per meeting.  :meth:`observe` returns the transition the
    sample caused, or ``None``; :meth:`observe_batch` is the literal scalar
    loop, so batch and scalar feeds cannot diverge.
    """

    __slots__ = (
        "config",
        "state",
        "observations",
        "windows_in_state",
        "_since_transition",
        "_up_streak",
        "_up_min",
        "_up_consensus",
        "_up_consensus_streak",
        "_down_streak",
        "_down_max",
        "_down_consensus",
        "_down_consensus_streak",
    )

    def __init__(self, config: QoeConfig | None = None) -> None:
        self.config = config if config is not None else QoeConfig()
        self.state = QoeState.GOOD
        self.observations = 0
        self.windows_in_state = 0
        # Large sentinel: the dwell guard never blocks the first transition.
        self._since_transition = 1 << 30
        self._up_streak = 0
        self._up_min = QoeState.CRITICAL
        self._up_consensus = QoeState.GOOD
        self._up_consensus_streak = 0
        self._down_streak = 0
        self._down_max = QoeState.GOOD
        self._down_consensus = QoeState.GOOD
        self._down_consensus_streak = 0

    # ------------------------------------------------------------- severity

    def enter_severity(self, sample: QoeSample) -> QoeState:
        """Worst severity any metric reaches against the *enter* thresholds."""
        cfg = self.config
        return max(
            _severity(
                sample.loss_fraction,
                cfg.loss_degraded,
                cfg.loss_impaired,
                cfg.loss_critical,
            ),
            _severity(
                sample.jitter_ms,
                cfg.jitter_degraded_ms,
                cfg.jitter_impaired_ms,
                cfg.jitter_critical_ms,
            ),
            _fps_severity(
                sample.fps_ratio, cfg.fps_degraded, cfg.fps_impaired, cfg.fps_critical
            ),
        )

    def exit_severity(self, sample: QoeSample) -> QoeState:
        """Worst severity against the scaled-down *exit* thresholds.

        The fps ratio moves the other way (it is a floor, not a ceiling),
        and its healthy value sits near 1.0 with a few percent of counting
        noise, so a multiplicative gap would push the degraded exit bound
        past 1.0 and trap the machine.  Its exit thresholds instead move up
        by a small additive margin proportional to the hysteresis gap.
        """
        cfg = self.config
        f = cfg.exit_fraction
        fps_margin = (1.0 - f) * 0.1
        return max(
            _severity(
                sample.loss_fraction,
                cfg.loss_degraded * f,
                cfg.loss_impaired * f,
                cfg.loss_critical * f,
            ),
            _severity(
                sample.jitter_ms,
                cfg.jitter_degraded_ms * f,
                cfg.jitter_impaired_ms * f,
                cfg.jitter_critical_ms * f,
            ),
            _fps_severity(
                sample.fps_ratio,
                cfg.fps_degraded + fps_margin,
                cfg.fps_impaired + fps_margin,
                cfg.fps_critical + fps_margin,
            ),
        )

    # ------------------------------------------------------------ observing

    def observe(self, sample: QoeSample) -> QoeTransition | None:
        """Fold one window in; returns the transition it caused, if any."""
        cfg = self.config
        self.observations += 1
        self.windows_in_state += 1
        self._since_transition += 1

        up = self.enter_severity(sample)
        if up > self.state:
            self._up_min = up if self._up_streak == 0 else min(self._up_min, up)
            self._up_streak += 1
            if self._up_consensus_streak > 0 and up == self._up_consensus:
                self._up_consensus_streak += 1
            else:
                self._up_consensus = up
                self._up_consensus_streak = 1
        else:
            self._up_streak = 0
            self._up_consensus_streak = 0
        down = self.exit_severity(sample)
        if down < self.state:
            self._down_max = (
                down if self._down_streak == 0 else max(self._down_max, down)
            )
            self._down_streak += 1
            if self._down_consensus_streak > 0 and down == self._down_consensus:
                self._down_consensus_streak += 1
            else:
                self._down_consensus = down
                self._down_consensus_streak = 1
        else:
            self._down_streak = 0
            self._down_consensus_streak = 0

        if self._since_transition < cfg.min_dwell_windows:
            return None
        if self._up_consensus_streak >= cfg.enter_windows:
            # Consensus entry: the last enter_windows windows all read the
            # same higher severity.  The window straddling the impairment's
            # onset (partial damage, lower severity) restarts the count
            # instead of dragging the target down to a staircase start.
            return self._transition(self._up_consensus, sample, escalation=True)
        if self._up_streak >= 2 * cfg.enter_windows:
            # Anti-stall fallback: severities keep oscillating above the
            # current state without agreeing; escalate to the streak
            # minimum — the severity every window of the streak sustained
            # (each individually exceeded the old state, so the minimum
            # still does).
            return self._transition(self._up_min, sample, escalation=True)
        if self._down_consensus_streak >= cfg.exit_windows:
            # Consensus exit: the last exit_windows windows all supported
            # the same lower severity, so de-escalate straight to it.  The
            # first post-impairment window's residual damage breaks the
            # consensus rather than dragging the target upward.
            return self._transition(self._down_consensus, sample, escalation=False)
        if self._down_streak >= 2 * cfg.exit_windows:
            # Anti-stuck fallback: the metrics have sat below the current
            # state for twice the exit streak without agreeing on a target;
            # take the streak maximum (every window was below the old
            # state, so the maximum still is).
            return self._transition(self._down_max, sample, escalation=False)
        return None

    def observe_batch(self, samples: Iterable[QoeSample]) -> list[QoeTransition]:
        """Feed many windows; returns every transition, in order.

        Exactly equivalent to calling :meth:`observe` per sample — this *is*
        that loop, which is what the batch-vs-scalar property test pins.
        """
        transitions = []
        for sample in samples:
            transition = self.observe(sample)
            if transition is not None:
                transitions.append(transition)
        return transitions

    # ------------------------------------------------------------ internals

    def _transition(
        self, target: QoeState, sample: QoeSample, *, escalation: bool
    ) -> QoeTransition:
        previous = self.state
        transition = QoeTransition(
            window_index=sample.window_index,
            time=sample.window_end,
            previous=previous,
            state=target,
            windows_in_previous=self.windows_in_state,
            observation=self.observations,
            reason=self._reason(sample, target, escalation=escalation),
            sample=sample,
        )
        self.state = target
        self.windows_in_state = 0
        self._since_transition = 0
        self._up_streak = 0
        self._up_consensus_streak = 0
        self._down_streak = 0
        self._down_consensus_streak = 0
        return transition

    def _reason(self, sample: QoeSample, target: QoeState, *, escalation: bool) -> str:
        """Human-readable trigger, e.g. ``"loss=0.11 jitter=2.1ms"``."""
        if not escalation:
            return "recovered" if target is QoeState.GOOD else "partial recovery"
        cfg = self.config
        parts = []
        if not math.isnan(sample.loss_fraction) and (
            _severity(
                sample.loss_fraction,
                cfg.loss_degraded,
                cfg.loss_impaired,
                cfg.loss_critical,
            )
            >= target
        ):
            parts.append(f"loss={sample.loss_fraction:.3f}")
        if not math.isnan(sample.jitter_ms) and (
            _severity(
                sample.jitter_ms,
                cfg.jitter_degraded_ms,
                cfg.jitter_impaired_ms,
                cfg.jitter_critical_ms,
            )
            >= target
        ):
            parts.append(f"jitter={sample.jitter_ms:.1f}ms")
        if not math.isnan(sample.fps_ratio) and (
            _fps_severity(
                sample.fps_ratio, cfg.fps_degraded, cfg.fps_impaired, cfg.fps_critical
            )
            >= target
        ):
            parts.append(f"fps_ratio={sample.fps_ratio:.2f}")
        return " ".join(parts) if parts else "sustained degradation"
