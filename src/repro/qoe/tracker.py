"""Event-bus sink that scores meeting QoE windows and drives the machines.

:class:`MeetingQoeTracker` subscribes to the analyzer's stream lifecycle
events (:class:`~repro.core.events.StreamOpened` /
:class:`~repro.core.events.StreamUpdated` /
:class:`~repro.core.events.StreamEvicted`), folds every decoded media packet
into tumbling capture-time windows, and at each window close feeds one
:class:`~repro.qoe.machine.QoeSample` per meeting to that meeting's
:class:`~repro.qoe.machine.QoeStateMachine`.  Transitions come back out as
:class:`~repro.core.events.MeetingQoeChanged` events on the same bus, as
``qoe.*`` telemetry counters, and on :attr:`transitions` for tests and
report layers.

Signal definitions (all monitor-visible, §5 of the paper):

* **Loss** — window-local *gap events*: per substream (payload type), a
  newer sequence number that skips ``d`` values records ``d`` losses, and a
  later backward-sequence arrival counts as a recovery but never decrements.
  Zoom's retransmit repair keeps cumulative ``lost`` counters near zero even
  under heavy path loss (the gap is filled within ~100-300 ms), so the
  cumulative counter is blind exactly when users hurt; gap events are the
  recovery-visible signal.  Gaps wider than :data:`GAP_CAP` are treated as
  sender discontinuities, not loss.
* **Jitter** — the RFC 3550 interarrival estimator per substream, using the
  media clock for the stream's media type; a window reports the peak
  estimate any of its packets reached.
* **Frame rate** — distinct Zoom frame-sequence values per window for video
  streams, as a ratio over a per-stream EWMA baseline.  The baseline learns
  only while the meeting's machine is GOOD and only from windows delivering
  at least ``fps_min_baseline`` fps, so degraded windows, join/leave partial
  windows, and inherently slow screen-share streams never contaminate it.

Windowing follows the service-layer watermark discipline
(:class:`~repro.service.windows.WindowAggregator`): windows close once the
maximum capture timestamp passes ``window end + lateness``, strictly in
index order, and packets for already-closed windows are counted
(``qoe.late_packets``) and dropped.  Because every path — batch
``feed_batch``, scalar feed, rolling eviction, the live service — publishes
the identical record stream on the bus, all of them produce the identical
transition sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.config import QoeConfig
from repro.core.events import (
    MeetingQoeChanged,
    AnalysisSink,
    StreamEvicted,
    StreamOpened,
    StreamUpdated,
)
from repro.core.streams import RTPPacketRecord, StreamKey
from repro.qoe.machine import QoeSample, QoeState, QoeStateMachine, QoeTransition
from repro.zoom.constants import (
    AUDIO_SAMPLING_RATE,
    VIDEO_SAMPLING_RATE,
    ZoomMediaType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.meetings import Meeting
    from repro.core.pipeline import ZoomAnalyzer
    from repro.telemetry.registry import Telemetry

#: Sequence gaps wider than this are discontinuities, not countable loss.
GAP_CAP = 64

#: Counters the tracker records; the service exporter pre-seeds these.
QOE_COUNTER_SEEDS = (
    "qoe.windows",
    "qoe.transitions",
    "qoe.alerts",
    "qoe.late_packets",
    "qoe.transitions_to.good",
    "qoe.transitions_to.degraded",
    "qoe.transitions_to.impaired",
    "qoe.transitions_to.critical",
)

TransitionCallback = Callable[["Meeting", QoeTransition], None]


class _SubStreamSeqState:
    """Per-(stream, payload type) sequence and jitter tracking."""

    __slots__ = ("highest", "jitter", "_last_transit")

    def __init__(self) -> None:
        self.highest: int | None = None
        self.jitter = 0.0
        self._last_transit: float | None = None

    def observe_jitter(self, record: RTPPacketRecord, clock_rate: int) -> float:
        """Fold one packet into the RFC 3550 estimator; returns the estimate."""
        transit = record.timestamp - record.rtp_timestamp / clock_rate
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self.jitter += (d - self.jitter) / 16.0
        self._last_transit = transit
        return self.jitter


class _WindowAcc:
    """One stream's accumulator for one scoring window."""

    __slots__ = ("media_type", "packets", "gap_lost", "recovered", "sub_jitter", "frames")

    def __init__(self, media_type: int) -> None:
        self.media_type = media_type
        self.packets = 0
        self.gap_lost = 0
        self.recovered = 0
        # payload type -> [in-order packet count, peak jitter estimate (ms)]
        self.sub_jitter: dict[int, list[float]] = {}
        self.frames: set[int] = set()

    @property
    def loss_fraction(self) -> float:
        seen = self.gap_lost + self.packets
        return self.gap_lost / seen if seen else 0.0

    def jitter_peak(self, min_packets: int) -> float:
        """Worst substream jitter peak, over substreams dense enough to
        trust (sparse ones hold transient spikes for many windows)."""
        peak = float("nan")
        for count, value in self.sub_jitter.values():
            if count >= min_packets and not (value <= peak):  # NaN-aware max
                peak = value
        return peak


class MeetingQoeTracker(AnalysisSink):
    """Per-meeting QoE scoring over the analyzer's event stream.

    Args:
        analyzer: A :class:`~repro.core.pipeline.ZoomAnalyzer` or a
            :class:`~repro.core.rolling.RollingZoomAnalyzer` (unwrapped via
            its ``analyzer`` property).  The tracker registers itself on the
            analyzer's event bus.
        config: The :class:`~repro.core.config.QoeConfig`; defaults apply.
        telemetry: Registry for ``qoe.*`` counters; defaults to the
            analyzer result's registry.
        on_transition: Callbacks invoked ``(meeting, transition)`` for every
            state change, after the bus event is emitted.
    """

    def __init__(
        self,
        analyzer: "ZoomAnalyzer",
        config: QoeConfig | None = None,
        *,
        telemetry: "Telemetry | None" = None,
        on_transition: Iterable[TransitionCallback] = (),
    ) -> None:
        analyzer = getattr(analyzer, "analyzer", analyzer)
        self.config = config if config is not None else QoeConfig()
        self._bus = analyzer.bus
        self._result = analyzer.result
        self._telemetry = telemetry if telemetry is not None else self._result.telemetry
        self._callbacks = tuple(on_transition)
        self.machines: dict[int, QoeStateMachine] = {}
        self.transitions: list[tuple[int, QoeTransition]] = []
        self._pending: dict[int, dict[StreamKey, _WindowAcc]] = {}
        self._seq: dict[tuple[StreamKey, int], _SubStreamSeqState] = {}
        self._fps_baseline: dict[StreamKey, float] = {}
        self._max_ts = float("-inf")
        self._closed_index: int | None = None
        self._bus.register(self)

    # ----------------------------------------------------------- event hooks

    def on_stream_opened(self, event: StreamOpened) -> None:
        self._ingest(event.record)

    def on_stream_updated(self, event: StreamUpdated) -> None:
        self._ingest(event.record)

    def on_stream_evicted(self, event: StreamEvicted) -> None:
        """Drop the evicted stream's persistent tracking state.

        Pending window accumulators keep the packets the stream already
        contributed — those windows still score — but sequence/jitter/fps
        state dies with the stream, so an SSRC reuse starts clean.
        """
        key = event.stream.key
        for sub_key in [k for k in self._seq if k[0] == key]:
            del self._seq[sub_key]
        self._fps_baseline.pop(key, None)

    # -------------------------------------------------------------- ingestion

    def _ingest(self, record: RTPPacketRecord) -> None:
        width = self.config.window_seconds
        index = int(record.timestamp // width)
        if self._closed_index is not None and index <= self._closed_index:
            self._telemetry.count("qoe.late_packets")
            return
        accs = self._pending.get(index)
        if accs is None:
            accs = self._pending[index] = {}
        key = record.stream_key
        acc = accs.get(key)
        if acc is None:
            acc = accs[key] = _WindowAcc(record.media_type)
        acc.packets += 1

        sub = self._seq.get((key, record.payload_type))
        if sub is None:
            sub = self._seq[(key, record.payload_type)] = _SubStreamSeqState()
        in_order = True
        if sub.highest is None:
            sub.highest = record.sequence
        else:
            delta = (record.sequence - sub.highest) & 0xFFFF
            if 0 < delta < 0x8000:
                gap = delta - 1
                if 0 < gap <= GAP_CAP:
                    acc.gap_lost += gap
                sub.highest = record.sequence
            else:
                # Retransmit or duplicate filling an earlier gap: a recovery.
                acc.recovered += 1
                in_order = False
        if in_order:
            # Retransmits arrive ~100-300 ms after their slot, measuring the
            # repair loop rather than path delay variation — feeding them to
            # the estimator would make any loss episode read as jitter too.
            clock = (
                AUDIO_SAMPLING_RATE
                if record.media_type == ZoomMediaType.AUDIO
                else VIDEO_SAMPLING_RATE
            )
            jitter_ms = sub.observe_jitter(record, clock) * 1000.0
            entry = acc.sub_jitter.get(record.payload_type)
            if entry is None:
                acc.sub_jitter[record.payload_type] = [1, jitter_ms]
            else:
                entry[0] += 1
                if jitter_ms > entry[1]:
                    entry[1] = jitter_ms

        if record.media_type != ZoomMediaType.AUDIO and record.packets_in_frame > 0:
            acc.frames.add(record.frame_sequence)

        if record.timestamp > self._max_ts:
            self._max_ts = record.timestamp
            self._close_ready()

    # -------------------------------------------------------------- windowing

    def _close_ready(self) -> None:
        """Close every window whose end has passed the watermark, in order."""
        if not self._pending:
            return
        width = self.config.window_seconds
        watermark = self._max_ts - self.config.lateness
        for index in sorted(self._pending):
            if (index + 1) * width > watermark:
                break
            self._close_window(index, self._pending.pop(index))

    def flush(self, final: bool = False) -> None:
        """Close ready windows; with ``final=True`` close everything pending.

        The service runner calls ``flush(final=True)`` at shutdown so the
        tail windows of a capture are scored even though no later packet
        will ever advance the watermark.
        """
        if final:
            for index in sorted(self._pending):
                self._close_window(index, self._pending.pop(index))
        else:
            self._close_ready()

    def _close_window(self, index: int, accs: dict[StreamKey, _WindowAcc]) -> None:
        cfg = self.config
        if self._closed_index is None or index > self._closed_index:
            self._closed_index = index
        grouper = self._result.grouper
        by_meeting: dict[int, list[tuple[StreamKey, _WindowAcc]]] = {}
        meetings: dict[int, "Meeting"] = {}
        for key, acc in accs.items():
            meeting = grouper.meeting_of(key)
            if meeting is None:
                continue
            by_meeting.setdefault(meeting.meeting_id, []).append((key, acc))
            meetings[meeting.meeting_id] = meeting

        for meeting_id, entries in sorted(by_meeting.items()):
            packets = sum(acc.packets for _, acc in entries)
            if packets < cfg.min_meeting_packets:
                continue
            qualifying = [
                (key, acc)
                for key, acc in entries
                if acc.packets >= cfg.min_stream_packets
            ]
            loss = float("nan")
            jitter = float("nan")
            fps_ratio = float("nan")
            fps_windows: list[tuple[StreamKey, float]] = []
            for key, acc in qualifying:
                if not (acc.loss_fraction <= loss):  # NaN-aware max
                    loss = acc.loss_fraction
                peak = acc.jitter_peak(cfg.min_substream_packets)
                if not (peak <= jitter):
                    jitter = peak
            # fps uses every video stream with frames, not just qualifying
            # ones: a rate-adapted stream can drop to one packet per frame
            # and fall under the packet floor, and excluding it would blind
            # the machine to exactly the collapse it should flag.  Having
            # whole frames in the window is qualification enough for fps.
            for key, acc in entries:
                if acc.media_type == ZoomMediaType.VIDEO and acc.frames:
                    fps = len(acc.frames) / cfg.window_seconds
                    fps_windows.append((key, fps))
                    baseline = self._fps_baseline.get(key)
                    if baseline is not None and baseline > 0:
                        ratio = fps / baseline
                        if not (ratio >= fps_ratio):  # NaN-aware min
                            fps_ratio = ratio
            sample = QoeSample(
                window_index=index,
                window_end=(index + 1) * cfg.window_seconds,
                packets=packets,
                loss_fraction=loss,
                jitter_ms=jitter,
                fps_ratio=fps_ratio,
            )
            machine = self.machines.get(meeting_id)
            if machine is None:
                machine = self.machines[meeting_id] = QoeStateMachine(cfg)
            transition = machine.observe(sample)
            self._telemetry.count("qoe.windows")
            if transition is not None:
                self._record_transition(meetings[meeting_id], transition)
            if machine.state is QoeState.GOOD:
                self._learn_baselines(fps_windows)

    def _learn_baselines(self, fps_windows: list[tuple[StreamKey, float]]) -> None:
        cfg = self.config
        for key, fps in fps_windows:
            if fps < cfg.fps_min_baseline:
                continue
            baseline = self._fps_baseline.get(key)
            if baseline is None:
                self._fps_baseline[key] = fps
            else:
                alpha = cfg.fps_baseline_alpha
                self._fps_baseline[key] = (1.0 - alpha) * baseline + alpha * fps

    # ------------------------------------------------------------ transitions

    def _record_transition(
        self, meeting: "Meeting", transition: QoeTransition
    ) -> None:
        self.transitions.append((meeting.meeting_id, transition))
        tel = self._telemetry
        tel.count("qoe.transitions")
        tel.count(f"qoe.transitions_to.{transition.state.name.lower()}")
        if transition.state >= QoeState.IMPAIRED:
            tel.count("qoe.alerts")
        self._bus.emit(
            MeetingQoeChanged(
                timestamp=transition.time,
                meeting=meeting,
                previous=transition.previous,
                state=transition.state,
                sample=transition.sample,
                windows_in_previous=transition.windows_in_previous,
                reason=transition.reason,
            )
        )
        for callback in self._callbacks:
            callback(meeting, transition)

    # --------------------------------------------------------------- queries

    def transitions_for(self, meeting_id: int) -> list[QoeTransition]:
        """This meeting's transition sequence, in occurrence order."""
        return [t for mid, t in self.transitions if mid == meeting_id]

    def fleet_summary(self) -> dict[str, int]:
        """Meeting count per QoE state name, for health output.

        Only meetings the grouper still resolves to themselves count —
        machines orphaned by a meeting merge are skipped.
        """
        active = {m.meeting_id for m in self._result.grouper.meetings()}
        counts: dict[str, int] = {}
        for meeting_id, machine in self.machines.items():
            if meeting_id not in active:
                continue
            counts[machine.state.name] = counts.get(machine.state.name, 0) + 1
        return counts

    def worst_state(self) -> QoeState:
        """The most severe state any active meeting is currently in."""
        active = {m.meeting_id for m in self._result.grouper.meetings()}
        worst = QoeState.GOOD
        for meeting_id, machine in self.machines.items():
            if meeting_id in active and machine.state > worst:
                worst = machine.state
        return worst

    def meeting_states(self) -> dict[int, QoeState]:
        """Current machine state per meeting id (including merged-away ids)."""
        return {mid: machine.state for mid, machine in self.machines.items()}
