"""Closed-loop QoE: per-meeting state machines over the window stream.

The ROADMAP's "Closed-loop QoE" layer: :class:`~repro.qoe.machine.QoeStateMachine`
classifies each meeting into GOOD / DEGRADED / IMPAIRED / CRITICAL from the
window metrics the pipeline already emits (§5), with hysteresis so flapping
links don't flap alerts, and :class:`~repro.qoe.tracker.MeetingQoeTracker`
feeds it from the analyzer's event bus in batch, rolling, and live paths
alike.
"""

from repro.qoe.machine import QoeSample, QoeState, QoeStateMachine, QoeTransition
from repro.qoe.tracker import GAP_CAP, QOE_COUNTER_SEEDS, MeetingQoeTracker

__all__ = [
    "GAP_CAP",
    "QOE_COUNTER_SEEDS",
    "MeetingQoeTracker",
    "QoeSample",
    "QoeState",
    "QoeStateMachine",
    "QoeTransition",
]
