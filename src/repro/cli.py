"""``zoom-analysis`` — the command-line face of the library.

Subcommands mirror the paper's workflow:

* ``simulate``  — generate a meeting or campus trace to a pcap (the stand-in
  for a real capture);
* ``filter``    — run a pcap through the P4 capture-pipeline model
  (optionally anonymizing), writing the Zoom-only pcap;
* ``analyze``   — the full passive analysis: meetings, streams, Table 2/3
  style shares, latency, per-stream metrics; optional ML feature CSV;
* ``dissect``   — Wireshark-plugin style packet dissection;
* ``entropy``   — the §4.2 reverse-engineering sweep over a flow;
* ``query``     — slice a persistent metrics store (``analyze-live
  --store``) by time, meeting, and media type;
* ``backfill``  — load pre-store JSONL window logs or batch captures into
  a metrics store;
* ``compact``   — store maintenance: merge small segments, enforce
  retention.

Run ``zoom-analysis <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.tables import format_table


def _subnet_list(value: str) -> list[str]:
    """argparse type for comma-separated CIDR lists.

    Tolerates whitespace and stray commas ("10.0.0.0/8, ,10.1.0.0/16,"),
    rejects malformed prefixes with a proper argparse error instead of a
    traceback deep inside the analyzer.
    """
    import ipaddress

    subnets: list[str] = []
    for token in value.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            ipaddress.ip_network(token)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(f"bad subnet {token!r}: {exc}") from None
        subnets.append(token)
    if not subnets:
        raise argparse.ArgumentTypeError(f"no subnets in {value!r}")
    return subnets


def _protocol_list(value: str) -> tuple[str, ...]:
    """argparse type for comma-separated protocol-plugin names."""
    from repro.core.config import KNOWN_PROTOCOLS

    names = tuple(token.strip() for token in value.split(",") if token.strip())
    if not names:
        raise argparse.ArgumentTypeError(f"no protocol names in {value!r}")
    for name in names:
        if name not in KNOWN_PROTOCOLS:
            raise argparse.ArgumentTypeError(
                f"unknown protocol {name!r} (known: {', '.join(KNOWN_PROTOCOLS)})"
            )
    return names


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.net.pcap import write_pcap
    from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
    from repro.simulation.campus import CampusTraceConfig, generate_campus_trace
    from repro.simulation.webrtc import WebRTCCallConfig, simulate_webrtc_call

    if args.kind == "webrtc":
        result = simulate_webrtc_call(
            WebRTCCallConfig(duration=args.duration, seed=args.seed)
        )
        packets = result.captures
        print(
            f"webrtc call: {len(packets)} captured packets over "
            f"{args.duration:.0f}s ({result.stun_sent} stun, "
            f"{result.rtp_sent} rtp, {result.rtcp_sent} rtcp)"
        )
    elif args.kind == "campus":
        trace = generate_campus_trace(
            CampusTraceConfig(
                hours=args.hours,
                meetings_per_hour_peak=args.peak,
                background_pps=args.background_pps,
                seed=args.seed,
            )
        )
        packets = trace.all_packets()
        print(
            f"campus trace: {len(trace.meeting_configs)} meetings, "
            f"{len(trace.result.captures)} zoom + {len(trace.background)} background packets"
        )
    else:
        participants = [
            ParticipantConfig(name=f"p{i}", on_campus=(i % 2 == 0), join_time=0.4 * i)
            for i in range(args.participants)
        ]
        config = MeetingConfig(
            meeting_id="cli-meeting",
            participants=tuple(participants),
            duration=args.duration,
            allow_p2p=args.participants == 2,
            seed=args.seed,
        )
        result = MeetingSimulator(config).run()
        packets = result.captures
        print(f"meeting: {len(packets)} captured packets over {args.duration:.0f}s")
    count = write_pcap(args.output, packets)
    print(f"wrote {count} packets to {args.output}")
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    from repro.capture.anonymize import Anonymizer
    from repro.capture.p4_model import P4CaptureModel
    from repro.net.packet import CapturedPacket
    from repro.net.pcap import PcapWriter
    from repro.net.source import open_capture_source

    anonymizer = Anonymizer(key=args.anonymize.encode()) if args.anonymize else None
    model = P4CaptureModel(
        zoom_subnets=args.zoom_subnets,
        campus_subnets=args.campus_subnets,
        anonymizer=anonymizer,
    )
    with open_capture_source(args.input) as source, PcapWriter(args.output) as writer:
        captured = (CapturedPacket(p.timestamp, p.raw) for p in source)
        for packet in model.process(captured):
            writer.write(packet)
        written = writer.packets_written
    counters = model.counters
    print(
        f"processed {counters.processed}, passed {written} "
        f"(server {counters.zoom_ip_matched}, p2p {counters.p2p_matched}), "
        f"dropped {counters.dropped}"
    )
    return 0


def _build_analyze_source(args: argparse.Namespace):
    """One file streams directly; anything else goes through the directory
    source (timestamp-ordered multi-file replay)."""
    from repro.net.source import CaptureDirectorySource, open_capture_source

    inputs = [str(path) for path in args.inputs] + list(args.glob or [])
    if (
        len(inputs) == 1
        and not any(char in inputs[0] for char in "*?[")
        and not Path(inputs[0]).is_dir()
    ):
        return open_capture_source(
            inputs[0], tolerant=args.tolerant, batch_size=args.batch_size
        )
    return CaptureDirectorySource(
        inputs, tolerant=args.tolerant, batch_size=args.batch_size
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core import AnalysisSession, AnalyzerConfig
    from repro.core.config import ProtocolConfig

    want_stats = args.stats or args.stats_json is not None
    config = AnalyzerConfig(
        zoom_subnets=tuple(args.zoom_subnets),
        shards=args.shards,
        tolerant=args.tolerant,
        telemetry=want_stats,
        protocols=ProtocolConfig(protocols=tuple(args.protocols)),
        batch_size=args.batch_size,
    )
    source = _build_analyze_source(args)
    if getattr(source, "files", None) is not None and len(source.files) > 1:
        print(f"inputs: {len(source.files)} capture files (timestamp order)")
    result = AnalysisSession(config).run(source)

    claimed = "zoom" if config.protocols.protocols == ("zoom",) else "claimed"
    print(f"packets: {result.packets_total} total, {result.packets_zoom} {claimed}")
    print(f"meetings: {len(result.meetings)}")
    for meeting in result.meetings:
        print(
            f"  meeting {meeting.meeting_id}: ~{meeting.participant_estimate()} "
            f"participants, {len(meeting.stream_uids)} media streams, "
            f"{meeting.duration:.1f}s"
        )
    print("\nmedia encapsulation shares (cf. Table 2):")
    print(
        format_table(
            ["type", "% pkts", "% bytes"],
            [(str(v), p, b) for v, p, b in result.encap_share_table()],
        )
    )
    print("\nRTP payload types (cf. Table 3):")
    print(
        format_table(
            ["media/PT", "% pkts", "% bytes"],
            [(f"{mt}/{pt}", p, b) for mt, pt, p, b in result.payload_type_table()],
        )
    )
    if result.rtp_latency.samples:
        mean_rtt = sum(s.rtt for s in result.rtp_latency.samples) / len(
            result.rtp_latency.samples
        )
        print(
            f"\nlatency (RTP matching): {len(result.rtp_latency.samples)} samples, "
            f"mean {1000 * mean_rtt:.1f} ms"
        )
    print("\nper-stream metrics:")
    streams = sorted(result.media_streams(), key=lambda s: s.first_time)
    # The protocol column only appears once a non-Zoom plugin claimed a
    # stream, so single-protocol output is unchanged.
    multi = any(stream.protocol != "zoom" for stream in streams)
    rows = []
    for stream in streams:
        metrics = result.metrics_for(stream.key)
        fps = metrics.framerate_delivered.samples
        row = (
            f"{stream.ssrc:#x}",
            stream.media_type_name,
            "p2p" if stream.is_p2p else ("up" if stream.to_server else "down"),
            stream.packets,
            (sum(s.fps for s in fps) / len(fps)) if fps else float("nan"),
            metrics.jitter.jitter * 1000,
            metrics.loss.report().duplicates,
            len(metrics.stall_events()),
        )
        rows.append((stream.protocol,) + row if multi else row)
    headers = ["ssrc", "media", "dir", "pkts", "mean fps", "jitter ms", "dups", "stalls"]
    if multi:
        headers = ["proto"] + headers
    print(format_table(headers, rows))
    if want_stats:
        snapshot = result.telemetry_snapshot()
        if args.stats:
            from repro.telemetry import log_anomalies, render_stats

            print("\n=== runtime telemetry (--stats) ===\n")
            print(render_stats(snapshot))
            anomalies = log_anomalies(snapshot)
            if anomalies:
                print("\nhealth warnings:")
                for anomaly in anomalies:
                    print(f"  [{anomaly.name}] {anomaly.message}")
        if args.stats_json is not None:
            import json

            payload = json.dumps(snapshot.to_dict(), indent=2, sort_keys=True)
            if str(args.stats_json) == "-":
                print(payload)
            else:
                Path(args.stats_json).write_text(payload + "\n")
                print(f"\nwrote telemetry JSON to {args.stats_json}")
    if args.report:
        from repro.analysis.reportgen import full_report

        print("\n" + full_report(result))
    if args.csv:
        from repro.analysis.export import write_feature_csv

        count = write_feature_csv(result, args.csv)
        print(f"\nwrote {count} feature rows to {args.csv}")
    return 0


def _cmd_dissect(args: argparse.Namespace) -> int:
    from repro.core.config import AnalyzerConfig, ProtocolConfig
    from repro.net.source import open_capture_source
    from repro.protocols import build_registry

    # Classify with the real plugin registry rather than guessing "server"
    # from a port number: a P2P flow carries no SFU encapsulation (its bytes
    # start at the media layer), and an unrelated flow that happens to use
    # port 8801 is not Zoom at all.  STUN exchanges seen along the way teach
    # each plugin its endpoints, exactly as in the analyze path.  Every
    # media packet is printed under the plugin that claimed it, e.g.
    # ``[zoom][server]`` or ``[rtp][p2p]``.
    config = AnalyzerConfig(
        zoom_subnets=tuple(args.zoom_subnets),
        campus_subnets=(
            tuple(args.campus_subnets) if args.campus_subnets else None
        ),
        protocols=ProtocolConfig(protocols=tuple(args.protocols)),
    )
    plugins = build_registry(config)
    show = set(args.protocol) if args.protocol else None
    printed = 0
    for packet in open_capture_source(args.input):
        if not packet.is_udp:
            continue
        claimant = klass = None
        for plugin in plugins:
            verdict = plugin.classify(packet)
            if verdict is not None and verdict.claimed:
                claimant, klass = plugin, verdict
                break
        if claimant is None or not klass.is_media:
            continue
        if show is not None and claimant.name not in show:
            continue
        print(
            f"--- t={packet.timestamp:.4f}s "
            f"{packet.src_ip}:{packet.src_port} -> {packet.dst_ip}:{packet.dst_port} "
            f"[{claimant.name}][{claimant.flow_tag(klass)}] ---"
        )
        print(claimant.dissect_text(packet, klass).rstrip("\n"))
        print()
        printed += 1
        if printed >= args.limit:
            break
    if printed == 0:
        label = "Zoom" if any(p.name == "zoom" for p in plugins) else "media"
        print(f"no dissectable {label} UDP packets found", file=sys.stderr)
        return 1
    return 0


def _cmd_analyze_live(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core import AnalyzerConfig, ServiceConfig
    from repro.core.config import ProtocolConfig
    from repro.service.runner import ZoomMonitorService

    if args.interface is None and args.directory is None:
        print("analyze-live: a capture directory or --interface is required",
              file=sys.stderr)
        return 2
    if args.interface is not None and args.directory is not None:
        print("analyze-live: --interface and a capture directory are "
              "mutually exclusive", file=sys.stderr)
        return 2
    config = ServiceConfig(
        analyzer=AnalyzerConfig(
            zoom_subnets=tuple(args.zoom_subnets),
            campus_subnets=(
                tuple(args.campus_subnets) if args.campus_subnets else None
            ),
            rolling=True,
            rolling_idle_timeout=args.idle_timeout,
            telemetry=True,
            protocols=ProtocolConfig(protocols=tuple(args.protocols)),
            batch_size=args.batch_size,
        ),
        window_seconds=args.window,
        watermark_lateness=args.lateness,
        poll_interval=args.poll_interval,
        tail_pattern=args.pattern,
        interface=args.interface,
        listen=args.listen,
        jsonl_path=str(args.jsonl_out) if args.jsonl_out else None,
        store_dir=str(args.store) if args.store else None,
    )
    if args.no_qoe:
        config = replace(config, qoe=replace(config.qoe, enabled=False))
    service = ZoomMonitorService(args.directory, config)
    if args.interface is not None:
        print(f"capturing from {args.interface} "
              f"(cBPF capture filter, {args.window:.0f}s windows)")
    else:
        print(f"tailing {args.directory} (pattern {args.pattern!r}, "
              f"{args.window:.0f}s windows)")
    if service.http is not None:
        host, port = service.http.address
        print(f"metrics: http://{host}:{port}/metrics", flush=True)
    report = service.run(
        install_signal_handlers=True, stop_after_polls=args.max_polls
    )
    print(
        f"processed {report.packets_processed} packets over {report.polls} polls: "
        f"{report.windows_emitted} windows, {report.streams_finalized} streams, "
        f"{report.meetings_formed} meetings"
    )
    if service.qoe is not None:
        summary = service.qoe.fleet_summary()
        breakdown = (
            " ".join(f"{name}={count}" for name, count in sorted(summary.items()))
            or "no scored meetings"
        )
        print(
            f"qoe: worst={report.qoe_worst_state} [{breakdown}] "
            f"{report.qoe_transitions} transitions, {report.qoe_alerts} alerts"
        )
    if report.packets_dropped or report.ingest_restarts or report.kernel_drops:
        print(
            f"degraded: dropped {report.packets_dropped} packets "
            f"({report.batches_dropped} batches), "
            f"{report.kernel_drops} kernel ring drops, "
            f"{report.ingest_restarts} ingest restarts",
            file=sys.stderr,
        )
    from repro.telemetry import log_anomalies

    anomalies = log_anomalies(service.telemetry.snapshot())
    if anomalies:
        print("health warnings:", file=sys.stderr)
        for anomaly in anomalies:
            print(f"  [{anomaly.name}] {anomaly.message}", file=sys.stderr)
    return 0


def _cmd_entropy(args: argparse.Namespace) -> int:
    from collections import defaultdict

    from repro.core.entropy import analyze_flow, find_rtp_signature
    from repro.core.offset_finder import discover_offsets
    from repro.net.source import open_capture_source

    flows: dict = defaultdict(list)
    for packet in open_capture_source(args.input):
        if packet.is_udp and packet.five_tuple is not None:
            flows[packet.five_tuple].append(packet.payload)
    if not flows:
        print("no UDP flows in capture", file=sys.stderr)
        return 1
    flow_key, payloads = max(flows.items(), key=lambda kv: len(kv[1]))
    print(f"busiest flow: {flow_key[0]}:{flow_key[1]} -> {flow_key[2]}:{flow_key[3]} "
          f"({len(payloads)} packets)")
    reports = analyze_flow(payloads, max_offset=args.max_offset)
    rows = [
        (r.offset, r.width, r.field_class.value, r.stats.distinct,
         f"{r.stats.entropy:.2f}", f"{r.stats.increment_fraction:.2f}")
        for r in reports
        if r.field_class.value != "mixed"
    ]
    print(format_table(["offset", "width", "class", "distinct", "entropy", "inc"], rows))
    print("RTP signature offsets:", find_rtp_signature(reports))
    all_payloads = [p for ps in flows.values() for p in ps]
    discovery = discover_offsets(all_payloads)
    print("flow-wide RTP offsets:", dict(discovery.rtp_offsets))
    print("type field position(s):", discovery.type_field_positions)
    print("type -> offset map:", discovery.offset_by_type_value)
    return 0


def _metric_list(value: str) -> tuple[str, ...]:
    metrics = tuple(token.strip() for token in value.split(",") if token.strip())
    if not metrics:
        raise argparse.ArgumentTypeError(f"no metric names in {value!r}")
    return metrics


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.store import MetricsStore, StoreQuery, flatten_records

    store = MetricsStore(args.store)
    query = StoreQuery(
        start=args.start,
        end=args.end,
        kinds=tuple(args.kind) if args.kind else ("window",),
        meeting_id=args.meeting,
        media=args.media,
        metrics=args.metrics,
        reaggregate_seconds=args.reaggregate,
        use_index=not args.no_index,
    )
    result = store.query(query)
    if args.format == "json":
        for record in result.records:
            print(json.dumps(record, sort_keys=True))
    else:
        columns, rows = flatten_records(result.records)
        cells = [
            tuple("" if row.get(c) is None else row.get(c) for c in columns)
            for row in rows
        ]
        if args.format == "csv":
            import csv

            writer = csv.writer(sys.stdout)
            writer.writerow(columns)
            writer.writerows(cells)
        else:
            print(format_table(columns, cells))
    print(
        f"{result.count} records from {result.segments_scanned} segments "
        f"({result.segments_skipped} skipped by index, "
        f"{result.records_examined} records examined)",
        file=sys.stderr,
    )
    return 0


def _cmd_backfill(args: argparse.Namespace) -> int:
    from repro.core import AnalysisSession, AnalyzerConfig
    from repro.net.source import open_capture_source
    from repro.store import MetricsStore, backfill_jsonl, backfill_result

    jsonl_paths = [p for p in args.inputs if not _looks_like_capture(p)]
    capture_paths = [p for p in args.inputs if _looks_like_capture(p)]
    with MetricsStore(args.store) as store:
        if jsonl_paths:
            report = backfill_jsonl(store, jsonl_paths)
            print(
                f"jsonl: {report.windows} windows from {report.files} files "
                f"({report.skipped_lines} lines skipped)"
            )
        for path in capture_paths:
            config = AnalyzerConfig(zoom_subnets=tuple(args.zoom_subnets))
            result = AnalysisSession(config).run(open_capture_source(str(path)))
            report = backfill_result(store, result)
            print(
                f"{path}: {report.streams} streams, {report.meetings} meetings"
            )
        total = store.record_count()
    print(f"store now holds {total} records in {args.store}")
    return 0


def _looks_like_capture(path: Path) -> bool:
    name = path.name.lower()
    return any(token in name for token in (".pcap", ".cap"))


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.store import MetricsStore

    store = MetricsStore(args.store)
    if args.retention_max_age is not None or args.retention_max_bytes is not None:
        store.config = store.config.replace(
            retention_max_age=args.retention_max_age,
            retention_max_bytes=args.retention_max_bytes,
        )
    before_segments = len(store.segments())
    before_bytes = store.total_bytes()
    report = store.maintain()
    store.close()
    print(
        f"compacted {report.segments_merged} segments into "
        f"{report.compactions}, expired {report.segments_expired} "
        f"({report.bytes_reclaimed} bytes reclaimed)"
    )
    print(
        f"segments: {before_segments} -> {len(store.segments())}, "
        f"bytes: {before_bytes} -> {store.total_bytes()}"
    )
    return 0


def _cmd_fleet_simulate(args: argparse.Namespace) -> int:
    from repro.fleet.simulate import FleetSimConfig, simulate_fleet

    _, nodes = simulate_fleet(
        args.root,
        FleetSimConfig(
            nodes=args.nodes,
            hours=args.hours,
            meetings_per_hour_peak=args.peak,
            window_seconds=args.window,
            seed=args.seed,
            overlap=args.overlap,
        ),
    )
    for node in nodes:
        print(
            f"{node.name}: {node.packets} packets -> "
            f"{node.windows_stored} windows, {node.streams_stored} streams, "
            f"{node.meetings_stored} meetings ({node.store_dir})"
        )
    print(f"fleet manifest written to {Path(args.root) / 'fleet.json'}")
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.fleet import fleet_status, load_fleet_manifest, render_fleet_status

    config = load_fleet_manifest(args.fleet)
    status = fleet_status(config)
    print(render_fleet_status(status), end="")
    # Unreachable nodes make status non-zero (scripts can alert on it);
    # softer anomalies (stale, drop outliers) are printed but exit 0.
    return 0 if status.reachable == len(status.nodes) else 1


def _cmd_fleet_query(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import FederatedQuery, load_fleet_manifest
    from repro.store import StoreQuery, flatten_records

    config = load_fleet_manifest(args.fleet)
    query = StoreQuery(
        start=args.start,
        end=args.end,
        kinds=tuple(args.kind) if args.kind else ("window",),
        meeting_id=args.meeting,
        media=args.media,
        metrics=args.metrics,
        reaggregate_seconds=args.reaggregate,
        use_index=not args.no_index,
    )
    with FederatedQuery(config) as plane:
        result = plane.run(query)
    if args.format == "json":
        for record in result.records:
            print(json.dumps(record, sort_keys=True))
    else:
        columns, rows = flatten_records(result.records)
        cells = [
            tuple("" if row.get(c) is None else row.get(c) for c in columns)
            for row in rows
        ]
        if args.format == "csv":
            import csv

            writer = csv.writer(sys.stdout)
            writer.writerow(columns)
            writer.writerows(cells)
        else:
            print(format_table(columns, cells))
    print(
        f"{result.count} records from {len(result.nodes_queried)}/"
        f"{len(config.nodes)} nodes ({result.segments_scanned} segments "
        f"scanned, {result.segments_skipped} skipped, "
        f"{result.meetings_deduped} cross-tap meetings deduplicated)",
        file=sys.stderr,
    )
    for name in result.nodes_missing:
        print(
            f"warning: node {name} missing from results: "
            f"{result.node_errors.get(name, 'unreachable')}",
            file=sys.stderr,
        )
    # Partial results are the degraded-but-working case; only a fleet
    # with zero reachable nodes is an error.
    return 0 if result.nodes_queried else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="zoom-analysis",
        description="Passive measurement of Zoom performance (IMC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate an emulated capture")
    simulate.add_argument("output", type=Path)
    simulate.add_argument(
        "--kind", choices=("meeting", "campus", "webrtc"), default="meeting"
    )
    simulate.add_argument("--participants", type=int, default=3)
    simulate.add_argument("--duration", type=float, default=30.0)
    simulate.add_argument("--hours", type=int, default=4)
    simulate.add_argument("--peak", type=float, default=2.0)
    simulate.add_argument("--background-pps", type=float, default=0.05)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    filter_cmd = sub.add_parser("filter", help="run the P4 capture model over a pcap")
    filter_cmd.add_argument("input", type=Path)
    filter_cmd.add_argument("output", type=Path)
    filter_cmd.add_argument(
        "--zoom-subnets",
        type=_subnet_list,
        default="170.114.0.0/16,203.0.113.0/24",
    )
    filter_cmd.add_argument(
        "--campus-subnets",
        type=_subnet_list,
        default="10.8.0.0/16,10.9.0.0/16",
    )
    filter_cmd.add_argument("--anonymize", metavar="KEY", default=None)
    filter_cmd.set_defaults(func=_cmd_filter)

    analyze = sub.add_parser("analyze", help="full passive analysis of captures")
    analyze.add_argument("inputs", type=Path, nargs="+", metavar="input",
                         help="capture files, directories, or glob patterns; "
                              "multiple inputs are merged in timestamp order")
    analyze.add_argument("--glob", action="append", default=None, metavar="PATTERN",
                         help="add capture files matching an (unexpanded) glob "
                              "pattern; may be repeated")
    analyze.add_argument(
        "--zoom-subnets",
        type=_subnet_list,
        default="170.114.0.0/16,203.0.113.0/24",
    )
    analyze.add_argument("--protocols", type=_protocol_list, default="zoom",
                         metavar="NAME[,NAME...]",
                         help="protocol plugins to enable, in registry "
                              "priority order (default: zoom; e.g. "
                              "'zoom,rtp' for mixed traces)")
    analyze.add_argument("--shards", type=_positive_int, default=1,
                         help="flow-shard the analysis across N parallel workers "
                              "(RTP-latency matching needs a single pass)")
    analyze.add_argument("--csv", type=Path, default=None,
                         help="write the per-(stream,second) ML feature matrix")
    analyze.add_argument("--report", action="store_true",
                         help="print per-meeting report cards with diagnoses")
    analyze.add_argument("--stats", action="store_true",
                         help="print the runtime-telemetry health report "
                              "(per-stage packet/time counters, drop reasons, "
                              "shard balance) plus anomaly warnings")
    analyze.add_argument("--stats-json", type=Path, default=None, metavar="PATH",
                         help="write the telemetry snapshot as JSON "
                              "('-' for stdout)")
    analyze.add_argument("--tolerant", action="store_true",
                         help="treat a truncated capture tail as end-of-file "
                              "instead of an error (counted in --stats)")
    analyze.add_argument("--batch-size", type=_positive_int, default=256,
                         metavar="FRAMES",
                         help="capture read-chunk size in frames "
                              "(default 256; the batch pipeline upgrades an "
                              "untouched default to its preferred chunk)")
    analyze.set_defaults(func=_cmd_analyze)

    live = sub.add_parser(
        "analyze-live",
        help="monitor a capture directory or a live interface (daemon mode)",
        description="Follow a rotating capture directory as a capture daemon "
                    "writes it — or capture straight off a NIC with "
                    "--interface — analyze continuously with bounded memory, "
                    "and export tumbling-window metrics (Prometheus /metrics "
                    "+ JSONL). SIGTERM flushes all open windows and exits 0.",
    )
    live.add_argument("directory", type=Path, nargs="?", default=None,
                      help="capture directory to tail (omit with --interface)")
    live.add_argument("--interface", default=None, metavar="IFACE",
                      help="capture from this network interface instead of "
                           "tailing a directory: attaches the compiled cBPF "
                           "capture filter to an AF_PACKET socket (needs "
                           "CAP_NET_RAW); 'sim:<capture-path>' replays a "
                           "capture through the simulated socket, no "
                           "privileges needed")
    live.add_argument("--batch-size", type=_positive_int, default=256,
                      metavar="FRAMES",
                      help="ingest read-chunk size in frames (default 256)")
    live.add_argument("--window", type=float, default=10.0, metavar="SECONDS",
                      help="tumbling aggregation window width (default 10)")
    live.add_argument("--lateness", type=float, default=5.0, metavar="SECONDS",
                      help="watermark lag before a window closes (default 5)")
    live.add_argument("--listen", default=None, metavar="HOST:PORT",
                      help="serve /metrics, /healthz, /readyz here "
                           "(port 0 picks a free port; default: no server)")
    live.add_argument("--jsonl-out", type=Path, default=None, metavar="PATH",
                      help="append one JSON object per closed window")
    live.add_argument("--poll-interval", type=float, default=1.0, metavar="SECONDS",
                      help="directory scan interval (default 1)")
    live.add_argument("--pattern", default="*.pcap*",
                      help="capture-file glob inside the directory")
    live.add_argument("--idle-timeout", type=float, default=60.0, metavar="SECONDS",
                      help="finalize streams idle this long (default 60)")
    live.add_argument(
        "--zoom-subnets",
        type=_subnet_list,
        default="170.114.0.0/16,203.0.113.0/24",
    )
    live.add_argument("--campus-subnets", type=_subnet_list, default=None)
    live.add_argument("--protocols", type=_protocol_list, default="zoom",
                      metavar="NAME[,NAME...]",
                      help="protocol plugins to enable (default: zoom)")
    live.add_argument("--max-polls", type=_positive_int, default=None,
                      help="exit after this many directory polls "
                           "(smoke tests; default: run until SIGTERM)")
    live.add_argument("--store", type=Path, default=None, metavar="DIR",
                      help="append closed windows and finalized streams to "
                           "a persistent metrics store (query later with "
                           "'query'); crash-safe — a kill loses at most one "
                           "torn record")
    live.add_argument("--no-qoe", action="store_true",
                      help="disable the per-meeting QoE state machines "
                           "(and their qoe.* counters and gauges)")
    live.set_defaults(func=_cmd_analyze_live)

    query = sub.add_parser(
        "query",
        help="slice a persistent metrics store",
        description="Query a store written by 'analyze-live --store' or "
                    "'backfill': filter by time range, meeting id, and media "
                    "type, optionally re-aggregate windows into coarser "
                    "buckets, and print as a table, JSON lines, or CSV. "
                    "Segment skipping statistics go to stderr.",
    )
    query.add_argument("store", type=Path, help="store directory")
    query.add_argument("--start", type=float, default=None, metavar="SECONDS",
                       help="capture-time lower bound (inclusive)")
    query.add_argument("--end", type=float, default=None, metavar="SECONDS",
                       help="capture-time upper bound (exclusive)")
    query.add_argument("--kind", action="append",
                       choices=("window", "stream", "meeting"), default=None,
                       help="record kind(s) to return; may be repeated "
                            "(default: window)")
    query.add_argument("--meeting", type=int, default=None, metavar="ID",
                       help="restrict to one meeting (other kinds are "
                            "filtered to the meeting's activity span)")
    query.add_argument("--media", choices=("audio", "video", "screen"),
                       default=None,
                       help="restrict to one media type")
    query.add_argument("--metrics", type=_metric_list, default=None,
                       metavar="NAME[,NAME...]",
                       help="project records down to these metric keys")
    query.add_argument("--reaggregate", type=float, default=None,
                       metavar="SECONDS",
                       help="merge windows into coarser tumbling buckets of "
                            "this width")
    query.add_argument("--format", choices=("table", "json", "csv"),
                       default="table")
    query.add_argument("--no-index", action="store_true",
                       help="disable footer-index segment skipping "
                            "(full-scan baseline)")
    query.set_defaults(func=_cmd_query)

    backfill = sub.add_parser(
        "backfill",
        help="load pre-store history into a metrics store",
        description="Ingest existing artifacts into a store: service JSONL "
                    "window logs (plain or gzip-rotated) become window "
                    "records; capture files are batch-analyzed and their "
                    "stream/meeting summaries stored.",
    )
    backfill.add_argument("store", type=Path, help="store directory "
                          "(created if missing)")
    backfill.add_argument("inputs", type=Path, nargs="+", metavar="input",
                          help="JSONL window logs (*.jsonl, *.jsonl*.gz) "
                               "and/or capture files (*.pcap*)")
    backfill.add_argument(
        "--zoom-subnets",
        type=_subnet_list,
        default="170.114.0.0/16,203.0.113.0/24",
    )
    backfill.set_defaults(func=_cmd_backfill)

    compact = sub.add_parser(
        "compact",
        help="metrics-store maintenance (compaction + retention)",
        description="Merge a partition's many small sealed segments into "
                    "one and delete the oldest segments beyond the "
                    "retention budget.  Safe to run while no writer holds "
                    "the store.",
    )
    compact.add_argument("store", type=Path, help="store directory")
    compact.add_argument("--retention-max-age", type=float, default=None,
                         metavar="SECONDS",
                         help="drop sealed segments older than this behind "
                              "the newest record")
    compact.add_argument("--retention-max-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="drop oldest sealed segments until under this "
                              "total size")
    compact.set_defaults(func=_cmd_compact)

    fleet = sub.add_parser(
        "fleet",
        help="operate a multi-vantage-point monitor fleet",
        description="Federate several monitor nodes (local store "
                    "directories and/or live daemon endpoints) behind one "
                    "query plane: 'simulate' builds an N-node fleet "
                    "in-process, 'status' scrapes every node's health "
                    "surface, 'query' fans a store query out over the "
                    "fleet and merges the results.",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_sim = fleet_sub.add_parser(
        "simulate", help="build an N-node simulated fleet under a directory"
    )
    fleet_sim.add_argument("root", type=Path, help="fleet root directory")
    fleet_sim.add_argument("--nodes", type=_positive_int, default=3,
                           help="vantage points to simulate (default 3)")
    fleet_sim.add_argument("--hours", type=_positive_int, default=1,
                           help="campus-trace hours per node (default 1)")
    fleet_sim.add_argument("--peak", type=float, default=3.0,
                           help="meetings/hour per node at peak (default 3)")
    fleet_sim.add_argument("--window", type=float, default=10.0,
                           help="aggregation window seconds (default 10)")
    fleet_sim.add_argument("--seed", type=int, default=7)
    fleet_sim.add_argument("--overlap", action="store_true",
                           help="feed a shared trace to the first two nodes "
                                "(exercises cross-tap meeting dedup)")
    fleet_sim.set_defaults(func=_cmd_fleet_simulate)

    fleet_status_cmd = fleet_sub.add_parser(
        "status", help="scrape and summarize every node's health"
    )
    fleet_status_cmd.add_argument(
        "fleet", type=Path,
        help="fleet.json manifest (or a directory containing one)")
    fleet_status_cmd.set_defaults(func=_cmd_fleet_status)

    fleet_query = fleet_sub.add_parser(
        "query", help="run one store query across the whole fleet"
    )
    fleet_query.add_argument(
        "fleet", type=Path,
        help="fleet.json manifest (or a directory containing one)")
    fleet_query.add_argument("--start", type=float, default=None,
                             metavar="SECONDS")
    fleet_query.add_argument("--end", type=float, default=None,
                             metavar="SECONDS")
    fleet_query.add_argument("--kind", action="append",
                             choices=("window", "stream", "meeting"),
                             default=None,
                             help="record kind(s); may be repeated "
                                  "(default: window)")
    fleet_query.add_argument("--meeting", type=int, default=None, metavar="ID",
                             help="restrict to one meeting id (spans are "
                                  "resolved fleet-wide first)")
    fleet_query.add_argument("--media", choices=("audio", "video", "screen"),
                             default=None)
    fleet_query.add_argument("--metrics", type=_metric_list, default=None,
                             metavar="NAME[,NAME...]")
    fleet_query.add_argument("--reaggregate", type=float, default=None,
                             metavar="SECONDS")
    fleet_query.add_argument("--format", choices=("table", "json", "csv"),
                             default="table")
    fleet_query.add_argument("--no-index", action="store_true")
    fleet_query.set_defaults(func=_cmd_fleet_query)

    dissect = sub.add_parser("dissect", help="Wireshark-style packet dissection")
    dissect.add_argument("input", type=Path)
    dissect.add_argument("--limit", type=int, default=5)
    dissect.add_argument(
        "--zoom-subnets",
        type=_subnet_list,
        default="170.114.0.0/16,203.0.113.0/24",
    )
    dissect.add_argument("--campus-subnets", type=_subnet_list, default=None)
    dissect.add_argument("--protocols", type=_protocol_list, default="zoom,rtp",
                         metavar="NAME[,NAME...]",
                         help="protocol plugins to classify with "
                              "(default: zoom,rtp)")
    dissect.add_argument("--protocol", action="append", default=None,
                         metavar="NAME",
                         help="only print packets claimed by this plugin; "
                              "may be repeated")
    dissect.set_defaults(func=_cmd_dissect)

    entropy = sub.add_parser("entropy", help="reverse-engineering sweep over a pcap")
    entropy.add_argument("input", type=Path)
    entropy.add_argument("--max-offset", type=int, default=48)
    entropy.set_defaults(func=_cmd_entropy)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
