"""Anomaly rules over a telemetry snapshot, with stdlib-``logging`` output.

Deployment-grade passive inference needs to know what the monitor silently
discarded (cf. Sharma et al. on app-header-free WebRTC QoE, and the paper's
own §6.2 operational notes).  These checks turn the raw counters into the
handful of warnings an operator actually acts on:

* media-class packets that failed Zoom decoding above a threshold share —
  a protocol change or a misclassifying detector;
* capture-level losses (truncated records, unparseable frames);
* pathological shard imbalance — one worker eating most of the trace means
  the flow hash is degenerate for this capture;
* a batch prefilter passing essentially every frame of a high-volume run —
  the compiled match-action rules are empty or wrong for this tap, so the
  fast path is silently filtering nothing;
* RTCP receiver reports — the paper observed Zoom never sends them (§4.2.1),
  so any appearing is a protocol-drift signal;
* meetings whose QoE state machine entered IMPAIRED or CRITICAL — sustained
  loss, jitter, or delivered-frame-rate collapse (§5) that a user would
  notice, surfaced from the ``qoe.transitions_to.*`` counters;
* live-monitor degradation — packets shed by the daemon's bounded queue
  (recoverable from the capture directory) or a crash-restarting ingest
  thread;
* kernel packet-ring drops in live-interface mode — frames lost before
  userspace ever saw them, which no batch re-run can recover;
* metrics-store recoveries — a torn frame truncated from an active segment
  (the writer was killed mid-append) or sealed segments adopted outside the
  manifest (a crash between seal and manifest write); both are handled
  automatically but tell the operator the previous run did not exit
  cleanly.

``log_anomalies`` emits each finding as a structured warning on the
``repro.telemetry`` logger (``extra={"telemetry_counter": ...}``) so existing
log pipelines pick them up without new plumbing.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.telemetry.registry import TelemetrySnapshot

LOGGER_NAME = "repro.telemetry"

#: Fraction of media-class packets that may fail Zoom decoding before the
#: run is flagged.  The paper's own traces carry ~10% undecodable *control*
#: remainder among media-class UDP packets, so that share is healthy; the
#: default sits well above it, and a stricter bound (e.g. 0.01 on a capture
#: known to be pre-filtered to pure media) can be passed per call.
UNDECODED_WARN_FRACTION = 0.25

#: A single shard carrying more than this share of all home packets is
#: considered pathologically imbalanced.  A share threshold (rather than a
#: peak-to-mean ratio) keeps the rule meaningful at small shard counts:
#: peak/mean is bounded by the shard count, so a ratio threshold of 4 could
#: never fire on the common 2- and 4-shard deployments.
SHARD_IMBALANCE_SHARE = 0.7

#: Minimum prefiltered frame volume before the pass-rate rule is considered
#: at all — on small captures a 100% pass rate is unremarkable (a pure-Zoom
#: test clip passes everything, correctly).
PREFILTER_MIN_FRAMES = 10_000

#: Batch-prefilter pass rate above which a border-tap deployment is flagged.
#: A tap that sees general traffic should always carry *some* provably
#: non-Zoom background; passing essentially everything usually means the
#: match-action rules were compiled from an empty or wrong subnet list, so
#: the fast path is silently doing no work.
PREFILTER_PASS_WARN_FRACTION = 0.999


@dataclass(frozen=True, slots=True)
class Anomaly:
    """One detected operational anomaly."""

    name: str
    message: str
    counter: str
    value: float


def detect_anomalies(
    snapshot: TelemetrySnapshot,
    *,
    undecoded_fraction: float = UNDECODED_WARN_FRACTION,
    shard_imbalance_share: float = SHARD_IMBALANCE_SHARE,
) -> list[Anomaly]:
    """Evaluate every rule against ``snapshot`` and return the findings."""
    anomalies: list[Anomaly] = []

    undecoded = snapshot.counter("demux.undecoded")
    demux_in = snapshot.counter("demux.media_class_packets")
    if demux_in and undecoded / demux_in > undecoded_fraction:
        anomalies.append(
            Anomaly(
                name="undecoded-media",
                message=(
                    f"{undecoded} of {demux_in} media-class packets "
                    f"({100.0 * undecoded / demux_in:.2f}%) failed Zoom decoding "
                    f"(threshold {100.0 * undecoded_fraction:.2f}%)"
                ),
                counter="demux.undecoded",
                value=undecoded,
            )
        )

    truncated = snapshot.counter("capture.truncated")
    if truncated:
        anomalies.append(
            Anomaly(
                name="truncated-capture",
                message=f"{truncated} truncated record(s) in the capture file",
                counter="capture.truncated",
                value=truncated,
            )
        )

    parse_failures = snapshot.counter("decode.parse_failures")
    if parse_failures:
        anomalies.append(
            Anomaly(
                name="frame-parse-failures",
                message=f"{parse_failures} frame(s) had no decodable Ethernet layer",
                counter="decode.parse_failures",
                value=parse_failures,
            )
        )

    shard_packets = [
        count
        for _, count in sorted(
            (int(k), v)
            for k, v in snapshot.counters_under("sharded.shard_packets.").items()
        )
    ]
    if len(shard_packets) >= 2:
        total = sum(shard_packets)
        peak = max(shard_packets)
        if total > 0 and peak / total > shard_imbalance_share:
            anomalies.append(
                Anomaly(
                    name="shard-imbalance",
                    message=(
                        f"busiest shard holds {peak} of {total} home packets "
                        f"({100.0 * peak / total:.1f}%; threshold "
                        f"{100.0 * shard_imbalance_share:.0f}%) — "
                        "degenerate flow hash?"
                    ),
                    counter="sharded.shard_packets",
                    value=peak,
                )
            )

    dropped = snapshot.counter("service.dropped")
    if dropped:
        anomalies.append(
            Anomaly(
                name="service-backpressure-drops",
                message=(
                    f"{dropped} packet(s) shed by the live monitor's bounded "
                    f"queue ({snapshot.counter('service.dropped_batches')} "
                    "batches) — analysis is not keeping up with ingest; "
                    "re-run the batch analyzer over the capture directory "
                    "to recover them"
                ),
                counter="service.dropped",
                value=dropped,
            )
        )

    kernel_drops = snapshot.counter("dataplane.kernel_drops")
    if kernel_drops:
        anomalies.append(
            Anomaly(
                name="dataplane-kernel-drops",
                message=(
                    f"{kernel_drops} frame(s) dropped in the kernel packet "
                    "ring before the analyzer could read them — the live "
                    "interface is overrunning userspace; unlike queue drops "
                    "these are NOT on disk and cannot be recovered by a "
                    "batch re-run"
                ),
                counter="dataplane.kernel_drops",
                value=kernel_drops,
            )
        )

    restarts = snapshot.counter("service.ingest_restarts")
    if restarts:
        anomalies.append(
            Anomaly(
                name="service-ingest-restarts",
                message=(
                    f"the live monitor's ingest thread crash-restarted "
                    f"{restarts} time(s) — check the capture directory for "
                    "corrupt or vanishing files"
                ),
                counter="service.ingest_restarts",
                value=restarts,
            )
        )

    torn = snapshot.counter("store.torn_frames")
    if torn:
        anomalies.append(
            Anomaly(
                name="store-torn-frames",
                message=(
                    f"{torn} torn frame(s) truncated from the metrics "
                    "store's active segment(s) on open — the previous "
                    "writer was killed mid-append; at most one record per "
                    "segment was lost"
                ),
                counter="store.torn_frames",
                value=torn,
            )
        )

    orphans = snapshot.counter("store.manifest_orphans")
    if orphans:
        anomalies.append(
            Anomaly(
                name="store-manifest-orphans",
                message=(
                    f"{orphans} sealed segment(s) were missing from the "
                    "store manifest and re-indexed from their footers — "
                    "the previous run stopped between sealing and the "
                    "manifest write"
                ),
                counter="store.manifest_orphans",
                value=orphans,
            )
        )

    passed = snapshot.counter("prefilter.passed")
    prefiltered = passed + snapshot.counter("prefilter.dropped")
    if (
        prefiltered >= PREFILTER_MIN_FRAMES
        and passed / prefiltered > PREFILTER_PASS_WARN_FRACTION
    ):
        anomalies.append(
            Anomaly(
                name="prefilter-pass-through",
                message=(
                    f"the batch prefilter passed {passed} of {prefiltered} "
                    f"raw frames ({100.0 * passed / prefiltered:.2f}%) — on "
                    "a border tap this usually means the Zoom subnet rules "
                    "were not loaded and the fast path is filtering nothing"
                ),
                counter="prefilter.passed",
                value=passed,
            )
        )

    impaired = snapshot.counter("qoe.transitions_to.impaired")
    critical = snapshot.counter("qoe.transitions_to.critical")
    if impaired or critical:
        total_alerts = impaired + critical
        anomalies.append(
            Anomaly(
                name="qoe-impairments",
                message=(
                    f"{total_alerts} meeting QoE alert(s) during the run "
                    f"({impaired} IMPAIRED, {critical} CRITICAL entries) — "
                    "sustained loss/jitter/frame-rate degradation; inspect "
                    "the per-meeting transition log"
                ),
                counter="qoe.alerts",
                value=total_alerts,
            )
        )

    receiver_reports = snapshot.counter("demux.rtcp_receiver_reports")
    if receiver_reports:
        anomalies.append(
            Anomaly(
                name="rtcp-receiver-reports",
                message=(
                    f"{receiver_reports} RTCP receiver report(s) observed — "
                    "the paper found Zoom never sends RRs (§4.2.1); "
                    "possible protocol drift"
                ),
                counter="demux.rtcp_receiver_reports",
                value=receiver_reports,
            )
        )

    return anomalies


def log_anomalies(
    snapshot: TelemetrySnapshot,
    logger: logging.Logger | None = None,
    **thresholds: float,
) -> list[Anomaly]:
    """Run :func:`detect_anomalies` and log each finding as a warning.

    Returns the findings so callers can also render them inline.
    """
    anomalies = detect_anomalies(snapshot, **thresholds)
    if anomalies:
        log = logger if logger is not None else logging.getLogger(LOGGER_NAME)
        for anomaly in anomalies:
            log.warning(
                "telemetry anomaly [%s]: %s",
                anomaly.name,
                anomaly.message,
                extra={"telemetry_counter": anomaly.counter},
            )
    return anomalies
