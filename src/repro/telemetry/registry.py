"""The telemetry registry: monotonic, mergeable counters, timers, and histograms.

A :class:`Telemetry` instance rides on every
:class:`~repro.core.pipeline.AnalysisResult` and is threaded through the
packet path — capture readers, pipeline stages, the sharded driver, and the
rolling analyzer all record into it.  Three design rules keep it deployable
on a hot path:

* **Monotonic** — every instrument only accumulates (counts, seconds,
  observations, maxima).  There is no reset mid-run, so a snapshot taken at
  any time is a consistent prefix of the run.
* **Mergeable** — shard-local registries combine by summation (counters,
  timers, histograms) or maximum (gauges), so
  :meth:`~repro.core.pipeline.AnalysisResult.merge` can fold per-shard
  telemetry into one registry whose additive totals equal a single-pass run.
* **Near-zero overhead when disabled** — every recording method bails on a
  single attribute check, and the hot call sites in the analyzer check
  ``telemetry.enabled`` once per packet and skip name construction entirely.

Instrument names are dotted paths (``"pipeline.stop.classify"``,
``"capture.frames"``); the conventions in use are documented in
DESIGN.md §"Observability".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Counter namespaces that are *not* additive across flow-affine shards and
#: therefore excluded when comparing a sharded run against a single pass:
#: ``sharded.*`` exists only on the merged result (partition accounting),
#: ``rolling.*`` exists only under the rolling wrapper, and meeting formation
#: is grouper-instance-local (a meeting whose streams land on two shards is
#: "formed" once per shard, then re-grouped at merge time).
SHARD_VARIANT_PREFIXES: tuple[str, ...] = (
    "sharded.",
    "rolling.",
    "assemble.meetings_formed",
    # Batch-execution bookkeeping: how many batches the input was chopped
    # into, and how many frames the prefilter short-circuited, depend on
    # the execution strategy (scalar vs batch, batch size, shard
    # partitioning) — never on what the traffic *was*.  The semantic
    # counters (classify.class.*, decode.*, pipeline.stop.*) stay
    # invariant and stay compared.
    "pipeline.batch.",
    "prefilter.",
    # Registry claim/conflict accounting: a shard that sees only a flow's
    # media (its STUN preamble replicated as a hint, not counted) resolves
    # claims against different tracker state than a single pass, and
    # conflict probing is skipped entirely for hint frames.
    "protocols.",
)


def shard_invariant_counters(snapshot: "TelemetrySnapshot") -> dict[str, int]:
    """The counters that must be identical between a single-pass run and the
    merged result of a flow-sharded run over the same capture."""
    return {
        name: value
        for name, value in snapshot.counters.items()
        if not name.startswith(SHARD_VARIANT_PREFIXES)
    }


class Histogram:
    """A power-of-two bucketed histogram of non-negative values.

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)`` (bucket 0 holds
    zeros and values below 1).  Coarse by design: the consumers are health
    tables and anomaly checks, not percentile SLOs.
    """

    __slots__ = ("buckets", "count", "total", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        bucket = 0 if value < 1 else int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable point-in-time copy of a :class:`Telemetry` registry.

    Attributes:
        counters: Monotonic event counts by dotted name.
        timer_seconds / timer_samples: Accumulated wall time and the number
            of timed samples per timer name.  Stage timers are *sampled*
            (one packet in :data:`Telemetry.TIMING_SAMPLE` is timed), so
            per-packet cost is ``seconds / samples``, not
            ``seconds / packets``.
        maxima: High-water gauges (``record_max``).
        histograms: Serialized :class:`Histogram` payloads.
    """

    counters: dict[str, int] = field(default_factory=dict)
    timer_seconds: dict[str, float] = field(default_factory=dict)
    timer_samples: dict[str, int] = field(default_factory=dict)
    maxima: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def counters_under(self, prefix: str) -> dict[str, int]:
        """All counters whose dotted name starts with ``prefix``, with the
        prefix stripped."""
        offset = len(prefix)
        return {
            name[offset:]: value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    def timer_mean_us(self, name: str) -> float:
        """Mean microseconds per timed sample, 0.0 when never sampled."""
        samples = self.timer_samples.get(name, 0)
        if not samples:
            return 0.0
        return 1e6 * self.timer_seconds.get(name, 0.0) / samples

    def to_dict(self) -> dict:
        """A JSON-serializable dump with deterministically ordered keys."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {
                    "seconds": self.timer_seconds[name],
                    "samples": self.timer_samples.get(name, 0),
                }
                for name in sorted(self.timer_seconds)
            },
            "maxima": dict(sorted(self.maxima.items())),
            "histograms": {
                name: self.histograms[name] for name in sorted(self.histograms)
            },
        }


class Telemetry:
    """The mutable registry the analyzer records into.

    Args:
        enabled: When ``False``, every recording method is a no-op behind a
            single attribute check and the analyzer skips instrumentation
            branches entirely — the registry stays empty.

    All instruments are created lazily on first use; reading an instrument
    that was never recorded is simply absent from the snapshot.
    """

    #: One packet in this many gets per-stage wall-time measurement.  A
    #: power of two so the hot path can use a bitmask (``seq & MASK == 0``).
    TIMING_SAMPLE = 16
    TIMING_MASK = TIMING_SAMPLE - 1

    __slots__ = ("enabled", "counters", "timer_seconds", "timer_samples",
                 "maxima", "histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, int] = {}
        self.timer_seconds: dict[str, float] = {}
        self.timer_samples: dict[str, int] = {}
        self.maxima: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ recording

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        if not self.enabled:
            return
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float, samples: int = 1) -> None:
        """Accumulate ``seconds`` of wall time (from ``samples`` timed
        observations) into timer ``name``."""
        if not self.enabled:
            return
        self.timer_seconds[name] = self.timer_seconds.get(name, 0.0) + seconds
        self.timer_samples[name] = self.timer_samples.get(name, 0) + samples

    def record_max(self, name: str, value: float) -> None:
        """Raise high-water gauge ``name`` to ``value`` if it is larger."""
        if not self.enabled:
            return
        if value > self.maxima.get(name, float("-inf")):
            self.maxima[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -------------------------------------------------------------- merging

    def merge_from(self, other: "Telemetry") -> None:
        """Fold another registry into this one (sums; maxima by max).

        An enabled input makes the merged registry enabled, so a merged
        result's telemetry reflects whatever its shards recorded.
        """
        if other.enabled:
            self.enabled = True
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, seconds in other.timer_seconds.items():
            self.timer_seconds[name] = self.timer_seconds.get(name, 0.0) + seconds
        for name, samples in other.timer_samples.items():
            self.timer_samples[name] = self.timer_samples.get(name, 0) + samples
        for name, value in other.maxima.items():
            if value > self.maxima.get(name, float("-inf")):
                self.maxima[name] = value
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge_from(histogram)

    @staticmethod
    def merged(registries: Iterable["Telemetry"]) -> "Telemetry":
        """A fresh registry holding the sum of ``registries``."""
        result = Telemetry(enabled=False)
        for registry in registries:
            result.merge_from(registry)
        return result

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> TelemetrySnapshot:
        """An immutable copy of the current state."""
        return TelemetrySnapshot(
            counters=dict(self.counters),
            timer_seconds=dict(self.timer_seconds),
            timer_samples=dict(self.timer_samples),
            maxima=dict(self.maxima),
            histograms={
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
        )

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)


def coerce_telemetry(value: "Telemetry | bool | None") -> Telemetry:
    """Normalize the ``telemetry=`` constructor argument used across the
    analyzers: a registry passes through, ``True``/``None`` build an enabled
    one, ``False`` builds a disabled one."""
    if isinstance(value, Telemetry):
        return value
    return Telemetry(enabled=bool(value) if value is not None else True)
