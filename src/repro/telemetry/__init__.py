"""Runtime telemetry for the staged analyzer.

The packet path records monotonic counters, sampled stage timers, high-water
gauges, and coarse histograms into a :class:`Telemetry` registry that rides
on every :class:`~repro.core.pipeline.AnalysisResult`, survives
:meth:`~repro.core.pipeline.AnalysisResult.merge`, and renders as the
``analyze --stats`` health report.  See DESIGN.md §"Observability" for the
counter naming conventions and overhead characteristics.
"""

from repro.telemetry.anomalies import Anomaly, detect_anomalies, log_anomalies
from repro.telemetry.registry import (
    SHARD_VARIANT_PREFIXES,
    Histogram,
    Telemetry,
    TelemetrySnapshot,
    coerce_telemetry,
    shard_invariant_counters,
)
from repro.telemetry.report import (
    PIPELINE_STAGE_ORDER,
    packets_entering,
    render_stats,
    stage_flow_rows,
)

__all__ = [
    "Anomaly",
    "Histogram",
    "PIPELINE_STAGE_ORDER",
    "SHARD_VARIANT_PREFIXES",
    "Telemetry",
    "TelemetrySnapshot",
    "coerce_telemetry",
    "detect_anomalies",
    "log_anomalies",
    "packets_entering",
    "render_stats",
    "shard_invariant_counters",
    "stage_flow_rows",
]
