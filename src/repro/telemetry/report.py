"""Human-readable rendering of a :class:`TelemetrySnapshot`.

:func:`render_stats` is what ``zoom-analysis analyze --stats`` prints: a
health report over the counters the packet path recorded — capture input,
per-stage packet flow and sampled wall time, classification outcomes, drop
reasons, stream/meeting lifecycle, and (when present) shard balance and
rolling-eviction accounting.
"""

from __future__ import annotations

from repro.telemetry.registry import TelemetrySnapshot

#: Pipeline stage names in execution order (must match the ``name``
#: attributes of the stages composed by :class:`~repro.core.pipeline.ZoomAnalyzer`).
PIPELINE_STAGE_ORDER: tuple[str, ...] = (
    "decode",
    "classify",
    "zoom-demux",
    "assemble",
    "metrics",
)


def packets_entering(snapshot: TelemetrySnapshot) -> int:
    """Total packets fed to the pipeline, reconstructed from the one
    stop-accounting counter each packet increments."""
    stops = sum(
        snapshot.counter(f"pipeline.stop.{stage}") for stage in PIPELINE_STAGE_ORDER
    )
    return stops + snapshot.counter("pipeline.completed")


def stage_flow_rows(snapshot: TelemetrySnapshot) -> list[tuple]:
    """(stage, packets in, stopped here, packets out, sampled µs/pkt) rows.

    ``in``/``out`` are derived: a packet that stopped at stage *i* entered
    every stage up to and including *i*, so per-stage throughput costs one
    counter increment per packet instead of ten.
    """
    rows = []
    entering = packets_entering(snapshot)
    for stage in PIPELINE_STAGE_ORDER:
        stopped = snapshot.counter(f"pipeline.stop.{stage}")
        out = entering - stopped
        rows.append(
            (stage, entering, stopped, out, snapshot.timer_mean_us(f"stage.time.{stage}"))
        )
        entering = out
    return rows


def render_stats(snapshot: TelemetrySnapshot) -> str:
    """The full multi-section health report for one analysis run."""
    # Imported here: repro.analysis pulls in the analyzer, which records
    # into this package — a module-level import would be circular.
    from repro.analysis.tables import format_table

    sections: list[str] = []

    capture = snapshot.counters_under("capture.")
    capture.update(snapshot.counters_under("ingest."))
    if capture:
        rows = [(name, count) for name, count in sorted(capture.items())]
        sections.append(
            "capture input:\n" + format_table(["counter", "count"], rows)
        )

    total = packets_entering(snapshot)
    if total:
        sections.append(
            "pipeline flow ({} packets):\n".format(total)
            + format_table(
                ["stage", "in", "stopped", "out", "us/pkt (sampled)"],
                stage_flow_rows(snapshot),
            )
        )

    classes = snapshot.counters_under("classify.class.")
    if classes:
        byte_counts = snapshot.counters_under("classify.bytes.")
        rows = [
            (name, count, byte_counts.get(name, 0))
            for name, count in sorted(classes.items(), key=lambda kv: -kv[1])
        ]
        sections.append(
            "classification outcomes:\n"
            + format_table(["class", "packets", "bytes"], rows)
        )

    drop_rows = [
        (name, snapshot.counter(name))
        for name in (
            "decode.parse_failures",
            "demux.undecoded",
            "demux.rtcp",
            "demux.rtcp_receiver_reports",
        )
        if snapshot.counter(name)
    ]
    if drop_rows:
        sections.append(
            "drops and side channels:\n" + format_table(["counter", "count"], drop_rows)
        )

    lifecycle_rows = [("streams opened", snapshot.counter("assemble.stream_opened"))]
    lifecycle_rows.append(
        ("meetings formed", snapshot.counter("assemble.meetings_formed"))
    )
    evictions = snapshot.counters_under("pipeline.evicted.")
    for reason, count in sorted(evictions.items()):
        lifecycle_rows.append((f"evicted ({reason})", count))
    if any(count for _, count in lifecycle_rows):
        sections.append(
            "stream lifecycle:\n" + format_table(["event", "count"], lifecycle_rows)
        )

    shard_packets = snapshot.counters_under("sharded.shard_packets.")
    if shard_packets:
        rows = [
            (f"shard {index}", count)
            for index, count in sorted(
                ((int(k), v) for k, v in shard_packets.items())
            )
        ]
        rows.append(("stun hints replicated", snapshot.counter("sharded.hints_replicated")))
        rows.append(("unhashable frames", snapshot.counter("sharded.unhashable_frames")))
        sections.append(
            "shard balance:\n" + format_table(["shard", "home packets"], rows)
        )

    rolling = snapshot.counters_under("rolling.")
    if rolling:
        rows = [(name, count) for name, count in sorted(rolling.items())]
        peak = snapshot.maxima.get("rolling.live_streams_peak")
        if peak is not None:
            rows.append(("live_streams_peak", int(peak)))
        sections.append(
            "rolling eviction:\n" + format_table(["counter", "count"], rows)
        )

    if not sections:
        return "telemetry: no data recorded (was telemetry disabled?)"
    return "\n\n".join(sections)
