"""Entropy-based header analysis (§4.2.1, Figures 3-5).

The methodology that *discovered* Zoom's header format, kept executable so
it can be re-run if Zoom changes the protocol: extract the value of every
8/16/32-bit block at every offset across the packets of a flow, then
classify each (offset, width) value sequence by its distribution:

* **random** — near-uniform over the value space: encrypted payload;
* **identifier** — a few heavily repeated values (horizontal lines in
  Figure 4): type fields, SSRCs, bitmasks;
* **counter** — predominantly small positive increments with wraparound
  (angled lines): sequence numbers, timestamps;
* **constant** — a single value throughout.

The classifier is deliberately simple and threshold-based — the point is to
automate what the paper did by eye over hundreds of plots.
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


class FieldClass(enum.Enum):
    """Classification of one (offset, width) value sequence."""

    CONSTANT = "constant"
    IDENTIFIER = "identifier"
    COUNTER = "counter"
    RANDOM = "random"
    MIXED = "mixed"


@dataclass(frozen=True, slots=True)
class SequenceStats:
    """Distribution statistics of one extracted value sequence.

    Attributes:
        samples: Number of values extracted.
        distinct: Number of distinct values.
        entropy: Shannon entropy of the empirical distribution, normalized
            to [0, 1] by the maximum achievable for this sample count and
            field width.
        increment_fraction: Fraction of consecutive pairs whose (modular)
            difference is a small positive step.
        top_share: Relative frequency of the most common value.
    """

    samples: int
    distinct: int
    entropy: float
    increment_fraction: float
    top_share: float


@dataclass(frozen=True, slots=True)
class FieldReport:
    """The classification of one candidate field."""

    offset: int
    width: int
    field_class: FieldClass
    stats: SequenceStats


def extract_values(payloads: Sequence[bytes], offset: int, width: int) -> list[int]:
    """Big-endian values of the ``width``-byte block at ``offset`` across
    all payloads long enough to contain it."""
    values = []
    end = offset + width
    for payload in payloads:
        if len(payload) >= end:
            values.append(int.from_bytes(payload[offset:end], "big"))
    return values


def sequence_stats(values: Sequence[int], width: int) -> SequenceStats:
    """Compute the distribution statistics used by the classifier."""
    n = len(values)
    if n == 0:
        return SequenceStats(0, 0, 0.0, 0.0, 0.0)
    counts = Counter(values)
    distinct = len(counts)
    entropy = 0.0
    for count in counts.values():
        p = count / n
        entropy -= p * math.log2(p)
    max_entropy = min(math.log2(n) if n > 1 else 1.0, 8.0 * width)
    normalized_entropy = entropy / max_entropy if max_entropy > 0 else 0.0
    modulus = 1 << (8 * width)
    small_step = max(modulus >> 6, 2)
    increments = 0
    moving_pairs = 0
    for previous, current in zip(values, values[1:]):
        difference = (current - previous) % modulus
        if difference == 0:
            # Repeats are common in counter fields too (all packets of a
            # frame share the RTP timestamp); they carry no signal either
            # way, so they are excluded from the increment statistic.
            continue
        moving_pairs += 1
        if difference <= small_step:
            increments += 1
    increment_fraction = increments / moving_pairs if moving_pairs else 0.0
    top_share = max(counts.values()) / n
    return SequenceStats(
        samples=n,
        distinct=distinct,
        entropy=normalized_entropy,
        increment_fraction=increment_fraction,
        top_share=top_share,
    )


def classify(stats: SequenceStats) -> FieldClass:
    """Map distribution statistics to a field class.

    Thresholds were tuned on flows with known ground truth (the emulator's
    own traffic); they are intentionally forgiving because real flows
    interleave packet types, so every sequence is somewhat of a mixture —
    exactly the "several overlapping lines" effect of §4.2.1.
    """
    if stats.samples == 0:
        return FieldClass.MIXED
    if stats.distinct == 1:
        return FieldClass.CONSTANT
    # A handful of heavily repeated values is an identifier even when the
    # values happen to be close together (e.g. media types 13/15/16, whose
    # pairwise differences would otherwise look like small increments).
    if stats.distinct <= max(4, stats.samples // 50):
        return FieldClass.IDENTIFIER
    if stats.increment_fraction >= 0.45:
        return FieldClass.COUNTER
    if stats.top_share >= 0.25:
        return FieldClass.IDENTIFIER
    if stats.entropy >= 0.85:
        return FieldClass.RANDOM
    return FieldClass.MIXED


def classify_field(payloads: Sequence[bytes], offset: int, width: int) -> FieldReport:
    """Extract and classify one (offset, width) field."""
    values = extract_values(payloads, offset, width)
    stats = sequence_stats(values, width)
    return FieldReport(offset=offset, width=width, field_class=classify(stats), stats=stats)


def analyze_flow(
    payloads: Sequence[bytes],
    *,
    widths: Iterable[int] = (1, 2, 4),
    max_offset: int = 48,
) -> list[FieldReport]:
    """The full §4.2.1 sweep: classify every (offset, width) block.

    Returns one report per candidate field, in (offset, width) order.  This
    is the programmatic equivalent of the "hundreds of plots" the authors
    inspected; downstream code (and Figure 5's bench) filters it for the
    counters and identifiers that reveal protocol structure.
    """
    reports = []
    for width in widths:
        for offset in range(0, max_offset - width + 1):
            report = classify_field(payloads, offset, width)
            if report.stats.samples:
                reports.append(report)
    reports.sort(key=lambda report: (report.offset, report.width))
    return reports


def fields_of_class(
    reports: Iterable[FieldReport], wanted: FieldClass
) -> list[FieldReport]:
    """Filter a sweep result by classification."""
    return [report for report in reports if report.field_class is wanted]


def find_rtp_signature(reports: Sequence[FieldReport]) -> list[int]:
    """Candidate RTP header offsets from a sweep result.

    The paper looked for RTP's most discernible pattern: a 2-byte counter
    (sequence number) at offset ``o+2``, a 4-byte counter (timestamp) at
    ``o+4``, and a 4-byte identifier (SSRC) at ``o+8`` (§4.2.1).  Returns
    every offset ``o`` exhibiting that structure.
    """
    by_key = {(report.offset, report.width): report.field_class for report in reports}
    candidates = []
    offsets = sorted({report.offset for report in reports})
    for offset in offsets:
        sequence_class = by_key.get((offset + 2, 2))
        timestamp_class = by_key.get((offset + 4, 4))
        ssrc_class = by_key.get((offset + 8, 4))
        if (
            sequence_class is FieldClass.COUNTER
            and timestamp_class is FieldClass.COUNTER
            and ssrc_class in (FieldClass.IDENTIFIER, FieldClass.CONSTANT)
        ):
            candidates.append(offset)
    return candidates
