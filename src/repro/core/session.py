"""The one-call front door: ``AnalysisSession(config).run(source)``.

Every ingestion kind (pcap file, pcapng file, capture directory, simulated
meeting, in-memory packets) and every execution strategy (single pass,
flow-sharded, rolling eviction) used to require knowing which driver class
to construct and how to thread telemetry between the reader and the
analyzer.  The session owns both decisions: the
:class:`~repro.core.config.AnalyzerConfig` selects the driver, and one
telemetry registry is wired through the source and the analysis so
``--stats`` style reports cover the whole path.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Union

from repro.core.config import AnalyzerConfig
from repro.core.pipeline import AnalysisResult, ZoomAnalyzer
from repro.core.rolling import RollingZoomAnalyzer
from repro.core.sharded import ShardedAnalyzer
from repro.net.packet import CapturedPacket, ParsedPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.source import PacketSource
    from repro.qoe.tracker import MeetingQoeTracker

SourceLike = Union[
    "PacketSource", str, Path, Iterable["CapturedPacket | ParsedPacket"]
]


class AnalysisSession:
    """Run one analysis pass described entirely by an :class:`AnalyzerConfig`.

    Driver selection: ``config.shards > 1`` partitions across a
    :class:`~repro.core.sharded.ShardedAnalyzer`; ``config.rolling`` wraps
    the pass in idle-stream eviction
    (:class:`~repro.core.rolling.RollingZoomAnalyzer`); otherwise a plain
    one-pass :class:`~repro.core.pipeline.ZoomAnalyzer` runs.  The two are
    mutually exclusive — a sharded run keeps whole-capture state by design.

    Usage::

        session = AnalysisSession(AnalyzerConfig(campus_subnets=("10.8.0.0/16",)))
        result = session.run("trace.pcap")                   # any capture file
        result = session.run(CaptureDirectorySource("caps/"))
        result = session.run(SimulationSource(meeting_config))
    """

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config if config is not None else AnalyzerConfig()
        if self.config.rolling and self.config.shards > 1:
            raise ValueError("rolling eviction and sharding are mutually exclusive")
        if (
            self.config.qoe is not None
            and self.config.qoe.enabled
            and self.config.shards > 1
        ):
            # Shards see disjoint flow partitions of a meeting, so no shard
            # holds the whole meeting's window — QoE needs the unsharded view.
            raise ValueError("QoE tracking and sharding are mutually exclusive")
        #: The meeting QoE tracker of the last :meth:`run`, when configured.
        self.qoe: "MeetingQoeTracker | None" = None

    def run(self, source: SourceLike) -> AnalysisResult:
        """Ingest ``source`` through the configured driver; returns the result.

        ``source`` may be a :class:`~repro.net.source.PacketSource`, a
        capture-file path (format sniffed from magic bytes), or an iterable
        of captured/parsed packets.  When the session opens the source
        itself, the run's telemetry registry is threaded into it so capture
        counters and pipeline counters land in one report.
        """
        from repro.net.source import coerce_source

        config = self.config
        registry = config.make_telemetry()
        source = coerce_source(
            source,
            telemetry=registry,
            tolerant=config.tolerant,
            batch_size=config.batch_size,
        )
        if config.shards > 1:
            result = ShardedAnalyzer(config).run(source)
            # Shards record into private registries; fold the ingest-side
            # counters in so the merged report covers the whole path.
            result.telemetry.merge_from(registry)
            return result
        run_config = config.replace(telemetry=registry)
        driver: RollingZoomAnalyzer | ZoomAnalyzer
        if config.rolling:
            driver = RollingZoomAnalyzer(run_config)
        else:
            driver = ZoomAnalyzer(run_config)
        if config.qoe is not None and config.qoe.enabled:
            from repro.qoe.tracker import MeetingQoeTracker

            self.qoe = MeetingQoeTracker(driver, config.qoe)
        result = driver.run(source)
        if self.qoe is not None:
            # Score the tail windows no later packet will ever watermark out.
            self.qoe.flush(final=True)
        return result
