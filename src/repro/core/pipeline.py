"""The end-to-end analyzer: captured packets in, measurements out.

:class:`ZoomAnalyzer` composes the stages of the paper's methodology
(Figure 6) from :mod:`repro.core.stages` — decode → classify (§4.1) →
Zoom demux (§4.2) → stream/meeting assembly (§4.3) → per-stream metrics
(§5) — and publishes lifecycle events on an
:class:`~repro.core.events.EventBus` that the 1-second binning (§6.2),
rolling eviction, ML export, and report-card layers subscribe to.
It runs fully streaming: one pass over the capture, bounded state per
stream.  Raw frame bytes are held only for the packet in flight — a
:class:`~repro.net.packet.ParsedPacket` keeps its frame while it moves
through the stages and is then released; nothing downstream retains it
(stream tables keep normalized records, and only when ``keep_records`` is
set).  On the batch fast path (:meth:`ZoomAnalyzer.feed_batch`) non-Zoom
frames are dropped by the prefilter before any per-packet object exists
at all.
"""

from __future__ import annotations

import copy
from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Iterable

from repro.core.config import _UNSET, AnalyzerConfig, resolve_config
from repro.core.detector import ZoomTrafficDetector
from repro.core.events import EventBus, StreamEvicted
from repro.core.meetings import Meeting, MeetingGrouper, group_streams
from repro.core.metrics.bitrate import BitrateMeter, BitrateSink
from repro.core.metrics.frame_delay import FrameDelayAnalyzer
from repro.core.metrics.framerate import FrameRateMethod1, FrameRateMethod2
from repro.core.metrics.frames import FrameAssembler
from repro.core.metrics.framesize import FrameSizeCollector
from repro.core.metrics.jitter import FrameJitterEstimator
from repro.core.metrics.latency import RTPLatencyMatcher, TCPRTTEstimator
from repro.core.metrics.loss import StreamLossTracker
from repro.core.metrics.stalls import StallEvent, detect_stalls
from repro.core.metrics.sync import SenderReportCollector, SyncSink
from repro.core.stages import (
    AssembleStage,
    BatchContext,
    ClassifyStage,
    DecodeStage,
    MetricsStage,
    PacketContext,
    Stage,
    ZoomDemuxStage,
)
from repro.core.streams import MediaStream, RTPPacketRecord, StreamKey, StreamTable
from repro.net.batch import FrameBatch
from repro.net.packet import CapturedPacket, ParsedPacket
from repro.protocols import ZoomPlugin, build_registry, protocol_counter_seeds
from repro.telemetry.registry import Telemetry, TelemetrySnapshot
from repro.zoom.constants import (
    AUDIO_SAMPLING_RATE,
    VIDEO_SAMPLING_RATE,
    EncapKey,
    ZoomMediaType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.source import PacketSource

#: Batch-path counters pre-seeded to zero on every telemetry-enabled run.
_BATCH_COUNTER_SEEDS = (
    "pipeline.batch.batches",
    "pipeline.batch.frames",
    "prefilter.passed",
    "prefilter.dropped",
)


@dataclass
class StreamMetrics:
    """The metric estimators attached to one media stream."""

    assembler: FrameAssembler
    framerate_delivered: FrameRateMethod1
    framerate_encoder: FrameRateMethod2
    framesize: FrameSizeCollector
    jitter: FrameJitterEstimator
    loss: StreamLossTracker
    frame_delay: FrameDelayAnalyzer

    @classmethod
    def for_media_type(cls, media_type: int) -> "StreamMetrics":
        sampling = (
            AUDIO_SAMPLING_RATE
            if media_type == ZoomMediaType.AUDIO
            else VIDEO_SAMPLING_RATE
        )
        return cls(
            assembler=FrameAssembler(),
            framerate_delivered=FrameRateMethod1(),
            framerate_encoder=FrameRateMethod2(sampling),
            framesize=FrameSizeCollector(),
            jitter=FrameJitterEstimator(sampling),
            loss=StreamLossTracker(),
            frame_delay=FrameDelayAnalyzer(sampling),
        )

    def observe(self, record: RTPPacketRecord) -> None:
        """Route one packet record through every estimator."""
        self.loss.observe(record)
        self.jitter.observe(record)
        frame = self.assembler.observe(record)
        if frame is not None:
            self.framerate_delivered.observe(frame)
            self.framerate_encoder.observe(frame)
            self.framesize.observe(frame)
            self.frame_delay.observe(frame)

    def stall_events(self, *, buffer_depth: float = 0.200) -> list[StallEvent]:
        """Predicted playback stalls for this stream (§5.5 future work)."""
        return detect_stalls(self.frame_delay.samples, buffer_depth=buffer_depth)


@dataclass
class AnalysisResult:
    """Everything one analyzer pass produces.

    Attributes:
        packets_total / packets_zoom: Input and Zoom-classified counts.
        detector: The (stateful) detector with its per-class counters.
        streams: The assembled stream table.
        grouper: The meeting grouper (query meetings via ``meetings``).
        stream_metrics: Estimators per stream key.
        bitrate: Flow/stream/media-type binned byte counters.
        rtp_latency: Method-1 latency matcher with all samples.
        tcp_rtt: Method-2 estimators, keyed by (client IP, server IP).
        encap_packets / encap_bytes: Zoom media-encapsulation type counters
            over UDP media-classified packets — the data behind Table 2.
            Keys are media-type values or :data:`~repro.zoom.constants.ENCAP_OTHER`.
        payload_type_packets / payload_type_bytes: (media type, RTP payload
            type) counters — the data behind Table 3.
        rtcp_sender_reports / rtcp_sdes_empty / rtcp_receiver_reports:
            RTCP observations (§4.2.1: no RRs ever appear).
        undecoded_packets: Media-class packets that did not parse as Zoom
            media or RTCP (the ~10% control remainder).
        telemetry: The runtime telemetry registry the packet path records
            into (see :mod:`repro.telemetry`); merged across shards by
            :meth:`merge`, snapshotted via :meth:`telemetry_snapshot`.
    """

    packets_total: int = 0
    packets_zoom: int = 0
    bytes_total: int = 0
    detector: ZoomTrafficDetector | None = None
    streams: StreamTable = field(default_factory=StreamTable)
    grouper: MeetingGrouper = field(default_factory=MeetingGrouper)
    stream_metrics: dict[StreamKey, StreamMetrics] = field(default_factory=dict)
    bitrate: BitrateMeter = field(default_factory=BitrateMeter)
    rtp_latency: RTPLatencyMatcher = field(default_factory=RTPLatencyMatcher)
    tcp_rtt: dict[tuple[str, str], TCPRTTEstimator] = field(default_factory=dict)
    sync: SenderReportCollector = field(default_factory=SenderReportCollector)
    encap_packets: Counter[EncapKey] = field(default_factory=Counter)
    encap_bytes: Counter[EncapKey] = field(default_factory=Counter)
    payload_type_packets: Counter[tuple[int, int]] = field(default_factory=Counter)
    payload_type_bytes: Counter[tuple[int, int]] = field(default_factory=Counter)
    rtcp_sender_reports: int = 0
    rtcp_sdes_empty: int = 0
    rtcp_receiver_reports: int = 0
    undecoded_packets: int = 0
    stun_packets: int = 0
    telemetry: Telemetry = field(default_factory=Telemetry)

    @property
    def meetings(self) -> list[Meeting]:
        return self.grouper.meetings()

    def telemetry_snapshot(self) -> TelemetrySnapshot:
        """An immutable copy of the run's telemetry (see :mod:`repro.telemetry`)."""
        return self.telemetry.snapshot()

    def media_streams(self) -> list[MediaStream]:
        return self.streams.streams()

    def metrics_for(self, key: StreamKey) -> StreamMetrics | None:
        return self.stream_metrics.get(key)

    def encap_share_table(self) -> list[tuple[EncapKey, float, float]]:
        """Rows of (type value, % packets, % bytes) over media-class UDP
        packets — directly comparable to Table 2."""
        total_packets = sum(self.encap_packets.values())
        total_bytes = sum(self.encap_bytes.values())
        rows = []
        for value, count in self.encap_packets.most_common():
            rows.append(
                (
                    value,
                    100.0 * count / total_packets if total_packets else 0.0,
                    100.0 * self.encap_bytes[value] / total_bytes if total_bytes else 0.0,
                )
            )
        return rows

    def payload_type_table(self) -> list[tuple[int, int, float, float]]:
        """Rows of (media type, payload type, % packets, % bytes) over
        decoded media packets — directly comparable to Table 3."""
        total_packets = sum(self.payload_type_packets.values())
        total_bytes = sum(self.payload_type_bytes.values())
        rows = []
        for (media_type, payload_type), count in self.payload_type_packets.most_common():
            rows.append(
                (
                    media_type,
                    payload_type,
                    100.0 * count / total_packets if total_packets else 0.0,
                    100.0 * self.payload_type_bytes[(media_type, payload_type)] / total_bytes
                    if total_bytes
                    else 0.0,
                )
            )
        return rows

    # ------------------------------------------------------------------ merge

    def merge(self, *others: "AnalysisResult") -> "AnalysisResult":
        """Combine this result with shard-local results into a new one.

        Counters and totals sum; streams, metrics, and binned series union
        (shard keys are disjoint under flow-affine partitioning, and
        colliding TCP-RTT estimators for the same (client, server) pair
        have their samples interleaved); meetings are re-grouped over the
        merged stream table with the batch §4.3 heuristic, since unique
        stream ids and meeting ids are only meaningful within one analyzer.

        The merged result *shares* stream and estimator objects with its
        inputs rather than copying them — treat the inputs as consumed.
        """
        return AnalysisResult.merge_all([self, *others])

    @staticmethod
    def merge_all(results: Iterable["AnalysisResult"]) -> "AnalysisResult":
        """Merge any number of shard results (see :meth:`merge`)."""
        results = list(results)
        if not results:
            return AnalysisResult()
        merged = AnalysisResult()
        merged.telemetry = Telemetry(enabled=False)  # enabled if any input is
        first = results[0]
        if first.detector is not None:
            merged.detector = copy.deepcopy(first.detector)
            for other in results[1:]:
                if other.detector is not None:
                    merged.detector.merge_from(other.detector)
        merged.streams = StreamTable(keep_records=first.streams.keep_records)
        merged.bitrate = BitrateMeter(bin_width=first.bitrate.bin_width)
        for result in results:
            merged.packets_total += result.packets_total
            merged.packets_zoom += result.packets_zoom
            merged.bytes_total += result.bytes_total
            merged.rtcp_sender_reports += result.rtcp_sender_reports
            merged.rtcp_sdes_empty += result.rtcp_sdes_empty
            merged.rtcp_receiver_reports += result.rtcp_receiver_reports
            merged.undecoded_packets += result.undecoded_packets
            merged.stun_packets += result.stun_packets
            merged.telemetry.merge_from(result.telemetry)
            merged.encap_packets.update(result.encap_packets)
            merged.encap_bytes.update(result.encap_bytes)
            merged.payload_type_packets.update(result.payload_type_packets)
            merged.payload_type_bytes.update(result.payload_type_bytes)
            for stream in result.streams.streams():
                merged.streams.adopt(stream)
            merged.stream_metrics.update(result.stream_metrics)
            merged.bitrate.merge_from(result.bitrate)
            merged.rtp_latency.merge_from(result.rtp_latency)
            merged.sync.merge_from(result.sync)
            for key, estimator in result.tcp_rtt.items():
                mine = merged.tcp_rtt.get(key)
                if mine is None:
                    mine = merged.tcp_rtt[key] = TCPRTTEstimator(
                        estimator.client_ip, estimator.server_ip
                    )
                mine.merge_from(estimator)
        merged.grouper, _ = group_streams(merged.streams.streams(), merged.streams)
        return merged


class ZoomAnalyzer:
    """One-pass passive Zoom analyzer — a thin composition of pipeline stages.

    Args:
        config: An :class:`~repro.core.config.AnalyzerConfig` carrying every
            option (subnets, STUN timeout, record retention, telemetry
            wiring).  Defaults apply when omitted.
        bus: Optional pre-wired :class:`~repro.core.events.EventBus`; one is
            created (with the default bitrate-binning and RTCP-sync sinks)
            when omitted.
        **deprecated: The historical per-option kwargs (``zoom_subnets``,
            ``campus_subnets``, ``stun_timeout``, ``keep_records``,
            ``telemetry``) still work — including ``zoom_subnets`` passed
            positionally — but warn; they are shims over the config.

    Usage::

        analyzer = ZoomAnalyzer(AnalyzerConfig(campus_subnets=("10.8.0.0/16",)))
        result = analyzer.analyze(captured_packets)     # in-memory frames
        result = analyzer.run(PcapFileSource("a.pcap")) # streaming source

    Subscribers (see :mod:`repro.core.events`) attach via ``analyzer.bus``.
    """

    def __init__(
        self,
        config: AnalyzerConfig | Iterable[str] | None = None,
        *,
        bus: EventBus | None = None,
        zoom_subnets: Iterable[str] | object = _UNSET,
        campus_subnets: Iterable[str] | None | object = _UNSET,
        stun_timeout: float | object = _UNSET,
        keep_records: bool | object = _UNSET,
        telemetry: Telemetry | bool | object = _UNSET,
    ) -> None:
        self.config = resolve_config(
            config,
            "ZoomAnalyzer",
            zoom_subnets=zoom_subnets,
            campus_subnets=campus_subnets,
            stun_timeout=stun_timeout,
            keep_records=keep_records,
            telemetry=telemetry,
        )
        config = self.config
        self.bus = bus if bus is not None else EventBus()
        self.result = AnalysisResult()
        self.result.telemetry = config.make_telemetry()
        self._telemetry = self.result.telemetry
        # The protocol registry (DESIGN §14).  The Zoom plugin's detector is
        # also exposed as ``result.detector`` so shard merges and the report
        # layers keep working unchanged; a registry without Zoom still gets
        # a (detached, never-fed) detector there for those layers.
        self.plugins = build_registry(config)
        zoom_plugin = next(
            (plugin for plugin in self.plugins if isinstance(plugin, ZoomPlugin)), None
        )
        if zoom_plugin is not None:
            self.result.detector = zoom_plugin.detector
        else:
            self.result.detector = ZoomTrafficDetector(
                config.zoom_subnets,
                campus_subnets=config.campus_subnets,
                stun_timeout=config.stun_timeout,
            )
        self.result.streams = StreamTable(keep_records=config.keep_records)
        self._assemble = AssembleStage(self.result, self.bus)
        self._decode_stage = DecodeStage(self.result, self.bus)
        self._classify_stage = ClassifyStage(self.result, self.bus, self.plugins)
        self.stages: tuple[Stage, ...] = (
            self._decode_stage,
            self._classify_stage,
            ZoomDemuxStage(self.result, self.bus, self.plugins),
            self._assemble,
            MetricsStage(self.result, self.bus),
        )
        # Instrument names resolved once — the per-packet path must not
        # build strings.
        self._instrumented_stages: tuple[tuple[Stage, str, str], ...] = tuple(
            (stage, f"pipeline.stop.{stage.name}", f"stage.time.{stage.name}")
            for stage in self.stages
        )
        self._packet_seq = 0
        self.bus.register(BitrateSink(self.result.bitrate))
        self.bus.register(SyncSink(self.result.sync))
        # Pre-seed the batch-path counters so `--stats` and the Prometheus
        # exporter always expose them, even on runs that never see a batch
        # (and so their absence can never be mistaken for "prefilter ran
        # and dropped nothing" — see repro.telemetry.anomalies).
        if self._telemetry.enabled:
            for name in _BATCH_COUNTER_SEEDS:
                self._telemetry.count(name, 0)
            # Per-protocol claim/media counters appear as zeros before the
            # first packet (same pattern as qoe.*) so fleet dashboards show
            # idle protocols instead of gaps.
            for name in protocol_counter_seeds(
                [plugin.name for plugin in self.plugins]
            ):
                self._telemetry.count(name, 0)

    def analyze(self, packets: Iterable[CapturedPacket]) -> AnalysisResult:
        """Feed a whole in-memory capture and return the result."""
        for packet in packets:
            self.feed(packet)
        return self.result

    def run(self, source: "PacketSource") -> AnalysisResult:
        """Drain a :class:`~repro.net.source.PacketSource` and return the result.

        The streaming twin of :meth:`analyze`: memory stays bounded by one
        batch regardless of capture size.  Also accepts a file path or a
        plain packet iterable (coerced to a source).  Sources exposing
        ``frame_batches()`` — every built-in one does — go through the
        batch fast path (:meth:`feed_batch`); file-backed sources deliver
        raw contiguous buffers there, so non-Zoom frames are prefiltered
        before any per-packet object is allocated.
        """
        from repro.net.source import coerce_source

        coerced = coerce_source(source, telemetry=self._telemetry)
        frame_batches = getattr(coerced, "frame_batches", None)
        if frame_batches is not None:
            for batch in frame_batches():
                self.feed_batch(batch)
            return self.result
        for batch in coerced.batches():
            for parsed in batch:
                self.feed_parsed(parsed)
        return self.result

    def feed(self, captured: CapturedPacket) -> None:
        """Feed one captured frame."""
        self._run(PacketContext(captured=captured))

    def feed_parsed(self, parsed: ParsedPacket) -> None:
        """Feed one already-parsed frame."""
        self._run(PacketContext(parsed=parsed))

    def feed_batch(self, batch: FrameBatch) -> None:
        """Feed one :class:`~repro.net.batch.FrameBatch`.

        Raw batches take the vectorized path: columnar header decode, the
        compiled prefilter, then lazy materialization of survivors through
        the unchanged scalar stages — every counter, stream, and metric is
        bit-identical to feeding the same frames one by one.  Prepared
        batches (the scalar-source shim) feed their packets through
        unchanged.  Hint frames (sharding) reach :meth:`hint_stun` in
        capture order, interleaved with the survivors around them.
        """
        tel = self._telemetry
        prepared = batch.prepared
        if prepared is not None:
            if tel.enabled:
                tel.count("pipeline.batch.batches")
                tel.count("pipeline.batch.frames", len(prepared))
            hints = batch.hints
            if hints is not None:
                for i, parsed in enumerate(prepared):
                    if hints[i]:
                        self.hint_stun(parsed)
                    else:
                        self._run(PacketContext(parsed=parsed))
            else:
                for parsed in prepared:
                    self._run(PacketContext(parsed=parsed))
            return
        bctx = BatchContext(batch)
        self._decode_stage.process_batch(bctx)
        verdict = self._classify_stage.process_batch(bctx)
        self._decode_stage.account_dropped(verdict)
        if tel.enabled:
            tel.count("pipeline.batch.batches")
            tel.count("pipeline.batch.frames", len(batch))
            tel.count("prefilter.passed", verdict.passed)
            tel.count("prefilter.dropped", verdict.dropped)
            if verdict.dropped:
                # Scalar equivalence: every dropped frame would have
                # stopped at the classify stage.
                tel.count("pipeline.stop.classify", verdict.dropped)
        materialize = batch.materialize
        hints = verdict.hint_indexes
        if hints:
            position = 0
            limit = len(hints)
            for index in verdict.survivors:
                while position < limit and hints[position] < index:
                    self.hint_stun(materialize(hints[position]))
                    position += 1
                self._run(PacketContext(parsed=materialize(index)))
            while position < limit:
                self.hint_stun(materialize(hints[position]))
                position += 1
        else:
            for index in verdict.survivors:
                self._run(PacketContext(parsed=materialize(index)))

    def evict_stream(self, key: StreamKey, *, reason: str = "idle") -> MediaStream | None:
        """Finalize and release one stream from the live analyzer state.

        Removes the stream from the table, detaches its metric estimators,
        and publishes :class:`~repro.core.events.StreamEvicted` carrying
        both, so subscribers (rolling eviction, report cards, ML export)
        can emit closing summaries.  Returns the evicted stream, or ``None``
        if the key is unknown.  A later packet with the same key reopens the
        stream from scratch.
        """
        stream = self.result.streams.evict(key)
        if stream is None:
            return None
        tel = self._telemetry
        if tel.enabled:
            tel.count(f"pipeline.evicted.{reason}")
            tel.observe("pipeline.evicted_stream_packets", stream.packets)
        metrics = self.result.stream_metrics.pop(key, None)
        self._assemble.forget(key)
        self.bus.emit(
            StreamEvicted(
                timestamp=stream.last_time, stream=stream, metrics=metrics, reason=reason
            )
        )
        return stream

    def hint_stun(self, parsed: ParsedPacket) -> bool:
        """Teach every plugin a STUN exchange without counting the packet.

        Used by the sharded driver to replicate P2P-endpoint learning to
        shards that will see the P2P flow but not its STUN preamble.
        """
        learned = False
        for plugin in self.plugins:
            learned = plugin.observe_stun(parsed) or learned
        return learned

    # ------------------------------------------------------------- internals

    def _run(self, ctx: PacketContext) -> None:
        tel = self._telemetry
        if not tel.enabled:
            for stage in self.stages:
                if not stage.process(ctx):
                    return
            return
        # One counter increment per packet records where it stopped; per-stage
        # in/out throughput is derived from those at report time.  Wall time
        # is sampled (1 in Telemetry.TIMING_SAMPLE packets) so instrumentation
        # stays within the <=5% overhead budget.
        self._packet_seq += 1
        if self._packet_seq & Telemetry.TIMING_MASK:
            for stage, stop_name, _ in self._instrumented_stages:
                if not stage.process(ctx):
                    tel.count(stop_name)
                    return
        else:
            for stage, stop_name, time_name in self._instrumented_stages:
                start = perf_counter()
                advanced = stage.process(ctx)
                tel.add_time(time_name, perf_counter() - start)
                if not advanced:
                    tel.count(stop_name)
                    return
        tel.count("pipeline.completed")
