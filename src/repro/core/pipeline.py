"""The end-to-end analyzer: captured packets in, measurements out.

:class:`ZoomAnalyzer` chains every stage of the paper's methodology
(Figure 6): detection (§4.1) → Zoom/RTP decoding (§4.2) → stream assembly →
meeting grouping (§4.3) → per-stream metrics (§5) → 1-second binning (§6.2).
It runs fully streaming: one pass over the capture, bounded state per
stream, no retained raw bytes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.detector import ZoomClass, ZoomTrafficDetector
from repro.core.meetings import Meeting, MeetingGrouper
from repro.core.metrics.bitrate import BitrateMeter
from repro.core.metrics.frame_delay import FrameDelayAnalyzer
from repro.core.metrics.framerate import FrameRateMethod1, FrameRateMethod2
from repro.core.metrics.frames import FrameAssembler
from repro.core.metrics.framesize import FrameSizeCollector
from repro.core.metrics.jitter import FrameJitterEstimator
from repro.core.metrics.latency import RTPLatencyMatcher, TCPRTTEstimator
from repro.core.metrics.loss import StreamLossTracker
from repro.core.metrics.stalls import StallEvent, detect_stalls
from repro.core.metrics.sync import SenderReportCollector
from repro.core.streams import MediaStream, RTPPacketRecord, StreamKey, StreamTable
from repro.net.packet import CapturedPacket, ParsedPacket, parse_frame
from repro.zoom.constants import (
    AUDIO_SAMPLING_RATE,
    SERVER_MEDIA_PORT,
    VIDEO_SAMPLING_RATE,
    ZOOM_SERVER_SUBNETS,
    ZoomMediaType,
)
from repro.zoom.packets import parse_zoom_payload
from repro.zoom.sfu_encap import Direction


@dataclass
class StreamMetrics:
    """The metric estimators attached to one media stream."""

    assembler: FrameAssembler
    framerate_delivered: FrameRateMethod1
    framerate_encoder: FrameRateMethod2
    framesize: FrameSizeCollector
    jitter: FrameJitterEstimator
    loss: StreamLossTracker
    frame_delay: FrameDelayAnalyzer

    @classmethod
    def for_media_type(cls, media_type: int) -> "StreamMetrics":
        sampling = (
            AUDIO_SAMPLING_RATE
            if media_type == ZoomMediaType.AUDIO
            else VIDEO_SAMPLING_RATE
        )
        return cls(
            assembler=FrameAssembler(),
            framerate_delivered=FrameRateMethod1(),
            framerate_encoder=FrameRateMethod2(sampling),
            framesize=FrameSizeCollector(),
            jitter=FrameJitterEstimator(sampling),
            loss=StreamLossTracker(),
            frame_delay=FrameDelayAnalyzer(sampling),
        )

    def observe(self, record: RTPPacketRecord) -> None:
        """Route one packet record through every estimator."""
        self.loss.observe(record)
        self.jitter.observe(record)
        frame = self.assembler.observe(record)
        if frame is not None:
            self.framerate_delivered.observe(frame)
            self.framerate_encoder.observe(frame)
            self.framesize.observe(frame)
            self.frame_delay.observe(frame)

    def stall_events(self, *, buffer_depth: float = 0.200) -> list[StallEvent]:
        """Predicted playback stalls for this stream (§5.5 future work)."""
        return detect_stalls(self.frame_delay.samples, buffer_depth=buffer_depth)


@dataclass
class AnalysisResult:
    """Everything one analyzer pass produces.

    Attributes:
        packets_total / packets_zoom: Input and Zoom-classified counts.
        detector: The (stateful) detector with its per-class counters.
        streams: The assembled stream table.
        grouper: The meeting grouper (query meetings via ``meetings``).
        stream_metrics: Estimators per stream key.
        bitrate: Flow/stream/media-type binned byte counters.
        rtp_latency: Method-1 latency matcher with all samples.
        tcp_rtt: Method-2 estimators, keyed by (client IP, server IP).
        encap_packets / encap_bytes: Zoom media-encapsulation type counters
            over UDP media-classified packets — the data behind Table 2.
        payload_type_packets / payload_type_bytes: (media type, RTP payload
            type) counters — the data behind Table 3.
        rtcp_sender_reports / rtcp_sdes_empty / rtcp_receiver_reports:
            RTCP observations (§4.2.1: no RRs ever appear).
        undecoded_packets: Media-class packets that did not parse as Zoom
            media or RTCP (the ~10% control remainder).
    """

    packets_total: int = 0
    packets_zoom: int = 0
    bytes_total: int = 0
    detector: ZoomTrafficDetector | None = None
    streams: StreamTable = field(default_factory=StreamTable)
    grouper: MeetingGrouper = field(default_factory=MeetingGrouper)
    stream_metrics: dict[StreamKey, StreamMetrics] = field(default_factory=dict)
    bitrate: BitrateMeter = field(default_factory=BitrateMeter)
    rtp_latency: RTPLatencyMatcher = field(default_factory=RTPLatencyMatcher)
    tcp_rtt: dict[tuple[str, str], TCPRTTEstimator] = field(default_factory=dict)
    sync: SenderReportCollector = field(default_factory=SenderReportCollector)
    encap_packets: Counter = field(default_factory=Counter)
    encap_bytes: Counter = field(default_factory=Counter)
    payload_type_packets: Counter = field(default_factory=Counter)
    payload_type_bytes: Counter = field(default_factory=Counter)
    rtcp_sender_reports: int = 0
    rtcp_sdes_empty: int = 0
    rtcp_receiver_reports: int = 0
    undecoded_packets: int = 0
    stun_packets: int = 0

    @property
    def meetings(self) -> list[Meeting]:
        return self.grouper.meetings()

    def media_streams(self) -> list[MediaStream]:
        return self.streams.streams()

    def metrics_for(self, key: StreamKey) -> StreamMetrics | None:
        return self.stream_metrics.get(key)

    def encap_share_table(self) -> list[tuple[int, float, float]]:
        """Rows of (type value, % packets, % bytes) over media-class UDP
        packets — directly comparable to Table 2."""
        total_packets = sum(self.encap_packets.values())
        total_bytes = sum(self.encap_bytes.values())
        rows = []
        for value, count in self.encap_packets.most_common():
            rows.append(
                (
                    value,
                    100.0 * count / total_packets if total_packets else 0.0,
                    100.0 * self.encap_bytes[value] / total_bytes if total_bytes else 0.0,
                )
            )
        return rows

    def payload_type_table(self) -> list[tuple[int, int, float, float]]:
        """Rows of (media type, payload type, % packets, % bytes) over
        decoded media packets — directly comparable to Table 3."""
        total_packets = sum(self.payload_type_packets.values())
        total_bytes = sum(self.payload_type_bytes.values())
        rows = []
        for (media_type, payload_type), count in self.payload_type_packets.most_common():
            rows.append(
                (
                    media_type,
                    payload_type,
                    100.0 * count / total_packets if total_packets else 0.0,
                    100.0 * self.payload_type_bytes[(media_type, payload_type)] / total_bytes
                    if total_bytes
                    else 0.0,
                )
            )
        return rows


class ZoomAnalyzer:
    """One-pass passive Zoom analyzer.

    Args:
        zoom_subnets: Zoom's published prefixes (defaults to the emulator's
            synthetic directory prefixes).
        campus_subnets: Optional campus prefixes to scope P2P detection.
        stun_timeout: P2P endpoint memory (§4.1).
        keep_records: Retain per-packet records on streams (memory-heavy;
            only needed for offline re-analysis).

    Usage::

        analyzer = ZoomAnalyzer()
        result = analyzer.analyze(captured_packets)
    """

    def __init__(
        self,
        zoom_subnets: Iterable[str] = ZOOM_SERVER_SUBNETS,
        *,
        campus_subnets: Iterable[str] | None = None,
        stun_timeout: float = 120.0,
        keep_records: bool = False,
    ) -> None:
        self.result = AnalysisResult()
        self.result.detector = ZoomTrafficDetector(
            zoom_subnets, campus_subnets=campus_subnets, stun_timeout=stun_timeout
        )
        self.result.streams = StreamTable(keep_records=keep_records)
        self._known_streams: set[StreamKey] = set()

    def analyze(self, packets: Iterable[CapturedPacket]) -> AnalysisResult:
        """Feed a whole capture and return the result."""
        for packet in packets:
            self.feed(packet)
        return self.result

    def feed(self, captured: CapturedPacket) -> None:
        """Feed one captured frame."""
        parsed = parse_frame(captured.data, captured.timestamp)
        self.feed_parsed(parsed)

    def feed_parsed(self, parsed: ParsedPacket) -> None:
        """Feed one already-parsed frame."""
        result = self.result
        result.packets_total += 1
        result.bytes_total += len(parsed.raw)
        assert result.detector is not None
        klass = result.detector.classify(parsed)
        if not klass.is_zoom:
            return
        result.packets_zoom += 1
        if klass is ZoomClass.SERVER_TLS:
            self._feed_tcp(parsed)
            return
        if klass is ZoomClass.SERVER_STUN:
            result.stun_packets += 1
            return
        if not klass.is_media or not parsed.is_udp:
            return
        five_tuple = parsed.five_tuple
        if five_tuple is None:
            return
        result.bitrate.observe_flow_bytes(
            five_tuple, parsed.timestamp, len(parsed.payload)
        )
        from_server = klass is ZoomClass.SERVER_MEDIA
        zoom = parse_zoom_payload(parsed.payload, from_server=from_server)
        if zoom.media is None:
            result.undecoded_packets += 1
            result.encap_packets["other"] += 1
            result.encap_bytes["other"] += len(parsed.payload)
            return
        media_type = zoom.media.media_type
        if zoom.is_media or zoom.is_rtcp:
            result.encap_packets[media_type] += 1
            result.encap_bytes[media_type] += len(parsed.payload)
        else:
            result.undecoded_packets += 1
            result.encap_packets["other"] += 1
            result.encap_bytes["other"] += len(parsed.payload)
            return
        if zoom.is_rtcp:
            self._feed_rtcp(zoom)
            return
        assert zoom.rtp is not None
        to_server: bool | None
        if zoom.is_p2p:
            to_server = None
        elif zoom.sfu is not None and zoom.sfu.direction == Direction.FROM_SFU:
            to_server = False
        elif zoom.sfu is not None and zoom.sfu.direction == Direction.TO_SFU:
            to_server = True
        else:
            # Fall back on the well-known server port.
            to_server = parsed.dst_port == SERVER_MEDIA_PORT
        record = RTPPacketRecord(
            timestamp=parsed.timestamp,
            five_tuple=five_tuple,
            ssrc=zoom.rtp.ssrc,
            payload_type=zoom.rtp.payload_type,
            sequence=zoom.rtp.sequence,
            rtp_timestamp=zoom.rtp.timestamp,
            marker=zoom.rtp.marker,
            media_type=media_type,
            payload_len=len(zoom.rtp_payload),
            udp_payload_len=len(parsed.payload),
            frame_sequence=zoom.media.frame_sequence,
            packets_in_frame=zoom.media.packets_in_frame,
            is_p2p=zoom.is_p2p,
            to_server=to_server,
        )
        result.payload_type_packets[(media_type, record.payload_type)] += 1
        result.payload_type_bytes[(media_type, record.payload_type)] += record.payload_len
        self._feed_media_record(record)

    # ------------------------------------------------------------- internals

    def _feed_media_record(self, record: RTPPacketRecord) -> None:
        result = self.result
        stream = result.streams.observe(record)
        key = record.stream_key
        if key not in self._known_streams:
            self._known_streams.add(key)
            result.grouper.observe_new_stream(stream, result.streams)
            result.stream_metrics[key] = StreamMetrics.for_media_type(record.media_type)
        else:
            result.grouper.observe_stream_update(stream)
        result.bitrate.observe_media(record)
        result.stream_metrics[key].observe(record)
        result.rtp_latency.observe(record)

    def _feed_rtcp(self, zoom) -> None:
        from repro.rtp.rtcp import RTCPReceiverReport, RTCPSdes, RTCPSenderReport

        for report in zoom.rtcp:
            if isinstance(report, RTCPSenderReport):
                self.result.rtcp_sender_reports += 1
                self.result.sync.observe(report)
            elif isinstance(report, RTCPSdes):
                if report.is_empty:
                    self.result.rtcp_sdes_empty += 1
            elif isinstance(report, RTCPReceiverReport):
                self.result.rtcp_receiver_reports += 1

    def _feed_tcp(self, parsed: ParsedPacket) -> None:
        assert self.result.detector is not None
        src_is_zoom = self.result.detector.matcher.matches(parsed.src_ip)
        if src_is_zoom:
            client_ip, server_ip = parsed.dst_ip, parsed.src_ip
        else:
            client_ip, server_ip = parsed.src_ip, parsed.dst_ip
        if client_ip is None or server_ip is None:
            return
        key = (client_ip, server_ip)
        estimator = self.result.tcp_rtt.get(key)
        if estimator is None:
            estimator = self.result.tcp_rtt[key] = TCPRTTEstimator(client_ip, server_ip)
        estimator.observe(parsed)
