"""Zoom traffic detection, including deterministic P2P detection (§4.1).

Server-based traffic is matched statelessly against Zoom's published IP
prefixes.  P2P flows use ephemeral ports at both ends and client-owned
addresses, so no stateless rule can catch them; the paper's key observation
is that every P2P flow is *preceded* by a cleartext STUN binding exchange
with a Zoom zone controller on UDP 3478, sent **from the very ephemeral port
the media flow will use**.  :class:`StunTracker` remembers those
(client IP, client port) endpoints for a configurable timeout and
:class:`ZoomTrafficDetector` classifies later UDP traffic against them.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Iterable

from repro.net.ip import IPProtocol
from repro.net.packet import ParsedPacket
from repro.rtp.stun import STUN_PORT, is_stun
from repro.zoom.constants import SERVER_MEDIA_PORT, SERVER_TLS_PORT, ZOOM_SERVER_SUBNETS


class ZoomClass(enum.Enum):
    """Classification of one packet by the detector."""

    SERVER_MEDIA = "server_media"  # UDP to/from a Zoom server, port 8801
    SERVER_STUN = "server_stun"  # STUN with a Zoom zone controller
    SERVER_TLS = "server_tls"  # TCP 443 control connection to a Zoom server
    SERVER_OTHER = "server_other"  # other traffic with Zoom server addresses
    P2P_MEDIA = "p2p_media"  # STUN-predicted direct peer flow
    NOT_ZOOM = "not_zoom"

    @property
    def is_zoom(self) -> bool:
        return self is not ZoomClass.NOT_ZOOM

    @property
    def claimed(self) -> bool:
        """The protocol-registry claim contract (alias of :attr:`is_zoom`)."""
        return self is not ZoomClass.NOT_ZOOM

    @property
    def is_media(self) -> bool:
        return self in (ZoomClass.SERVER_MEDIA, ZoomClass.P2P_MEDIA)


class ZoomSubnetMatcher:
    """Membership test against Zoom's published IP prefix list.

    Prefixes are pre-split by the first address octet so per-packet matching
    stays O(prefixes with that octet) — the same trick a TCAM would make
    unnecessary in the Tofino version (§6.1).
    """

    def __init__(self, subnets: Iterable[str] = ZOOM_SERVER_SUBNETS) -> None:
        self._networks: dict[int, list[ipaddress.IPv4Network | ipaddress.IPv6Network]]
        self._networks = {}
        for subnet in subnets:
            network = ipaddress.ip_network(subnet)
            first_octet = int(str(network.network_address).split(".")[0]) if network.version == 4 else -1
            self._networks.setdefault(first_octet, []).append(network)

    def __contains__(self, ip: str) -> bool:
        try:
            address = ipaddress.ip_address(ip)
        except ValueError:
            return False
        key = int(ip.split(".", 1)[0]) if address.version == 4 else -1
        return any(address in network for network in self._networks.get(key, ()))

    def matches(self, ip: str | None) -> bool:
        return ip is not None and ip in self

    @property
    def networks(self) -> list[ipaddress.IPv4Network | ipaddress.IPv6Network]:
        """The compiled prefix list (the batch prefilter recompiles from it)."""
        return [network for bucket in self._networks.values() for network in bucket]


@dataclass(frozen=True, slots=True)
class StunBinding:
    """One learned P2P endpoint: the client side of a STUN exchange."""

    client_ip: str
    client_port: int
    learned_at: float


@dataclass
class StunTracker:
    """Remembers client endpoints seen in STUN exchanges with Zoom servers.

    When the same (client IP, client port) later talks UDP to *any other*
    address, that flow is classified as Zoom P2P media (§4.1).  Entries
    expire after ``timeout`` seconds; port reuse beyond the timeout is the
    false-positive source the paper discusses, and false positives are
    filtered downstream by checking the Zoom packet format.
    """

    timeout: float = 120.0
    _bindings: dict[tuple[str, int], float] = field(default_factory=dict)
    bindings_learned: int = 0

    def learn(self, client_ip: str, client_port: int, now: float) -> None:
        """Record a client endpoint observed in a Zoom STUN exchange."""
        self._bindings[(client_ip, client_port)] = now
        self.bindings_learned += 1

    def lookup(self, ip: str, port: int, now: float, *, refresh: bool = False) -> bool:
        """Whether (ip, port) was STUN-registered within the timeout.

        With ``refresh=True`` a successful lookup re-arms the binding at
        ``now``: the caller has just confirmed the endpoint is carrying live
        Zoom P2P media, which is at least as strong an aliveness signal as
        the STUN exchange that created the binding.  Without it, a P2P flow
        outliving the timeout is silently cut mid-stream — the media keeps
        flowing but stops being classified — while server streams (matched
        statelessly by subnet) can never go stale this way.
        """
        learned = self._bindings.get((ip, port))
        if learned is None:
            return False
        if now - learned > self.timeout:
            del self._bindings[(ip, port)]
            return False
        if refresh and now > learned:
            self._bindings[(ip, port)] = now
        return True

    def peek(self, ip: str, port: int, now: float) -> bool:
        """:meth:`lookup` without side effects: no expiry delete, no refresh.

        Used by the registry's conflict probe (``would_claim``), which must
        not perturb tracker state when re-evaluating a packet another plugin
        already claimed.
        """
        learned = self._bindings.get((ip, port))
        return learned is not None and now - learned <= self.timeout

    def purge(self, now: float) -> int:
        """Drop every binding older than the timeout; returns the count.

        Expiry is otherwise lazy — a binding is only deleted when *its own*
        endpoint is looked up again — so endpoints that STUN'd but never sent
        media would accumulate forever in continuous operation.  The rolling
        analyzer calls this from its eviction sweep.
        """
        stale = [
            endpoint
            for endpoint, learned in self._bindings.items()
            if now - learned > self.timeout
        ]
        for endpoint in stale:
            del self._bindings[endpoint]
        return len(stale)

    def active_bindings(self, now: float) -> list[StunBinding]:
        """Unexpired endpoints (for inspection/diagnostics)."""
        return [
            StunBinding(ip, port, learned)
            for (ip, port), learned in self._bindings.items()
            if now - learned <= self.timeout
        ]

    def __len__(self) -> int:
        return len(self._bindings)

    def endpoints(self) -> list[tuple[str, int]]:
        """Every currently-tracked (ip, port) key, expiry ignored.

        The batch prefilter folds these into its never-expiring pass-set;
        lazily-expired keys are deliberately included, since a frame whose
        endpoint is *about* to expire must still reach the detector so the
        expiry happens on the scalar path, not silently in the prefilter.
        """
        return list(self._bindings)

    def merge_from(self, other: "StunTracker") -> None:
        """Union another tracker's bindings, keeping the freshest learn time."""
        for endpoint, learned in other._bindings.items():
            if learned > self._bindings.get(endpoint, float("-inf")):
                self._bindings[endpoint] = learned
        self.bindings_learned += other.bindings_learned


@dataclass
class DetectorCounters:
    """Per-class packet counters (the detector's own telemetry)."""

    by_class: dict[ZoomClass, int] = field(default_factory=dict)

    def bump(self, klass: ZoomClass) -> None:
        self.by_class[klass] = self.by_class.get(klass, 0) + 1

    def add(self, klass: ZoomClass, count: int) -> None:
        """Bulk bump — the batch prefilter accounts dropped frames at once."""
        if count:
            self.by_class[klass] = self.by_class.get(klass, 0) + count

    def merge_from(self, other: "DetectorCounters") -> None:
        for klass, count in other.by_class.items():
            self.by_class[klass] = self.by_class.get(klass, 0) + count

    def total(self) -> int:
        return sum(self.by_class.values())

    def zoom_total(self) -> int:
        return sum(n for k, n in self.by_class.items() if k.is_zoom)


class ZoomTrafficDetector:
    """Stateful per-packet Zoom classifier (§4.1 + prior-work rules of §3).

    The order of checks mirrors the P4 pipeline of Figure 13:

    1. Zoom-subnet match on either address → server traffic (media on UDP
       8801, STUN on 3478, TLS control on TCP 443, anything else "other").
       STUN packets additionally *teach* the P2P tracker the client's
       endpoint.
    2. Otherwise, a UDP packet whose source or destination endpoint was
       STUN-registered within the timeout → P2P media.
    3. Everything else is not Zoom.
    """

    def __init__(
        self,
        subnets: Iterable[str] = ZOOM_SERVER_SUBNETS,
        *,
        campus_subnets: Iterable[str] | None = None,
        stun_timeout: float = 120.0,
    ) -> None:
        self.matcher = ZoomSubnetMatcher(subnets)
        self.campus_matcher = (
            ZoomSubnetMatcher(campus_subnets) if campus_subnets is not None else None
        )
        self.stun = StunTracker(timeout=stun_timeout)
        self.counters = DetectorCounters()

    def classify(self, packet: ParsedPacket) -> ZoomClass:
        """Classify one parsed packet and update detector state."""
        result = self._classify(packet)
        self.counters.bump(result)
        return result

    def _classify(self, packet: ParsedPacket) -> ZoomClass:
        src_ip, dst_ip = packet.src_ip, packet.dst_ip
        if src_ip is None:
            return ZoomClass.NOT_ZOOM
        src_is_zoom = self.matcher.matches(src_ip)
        dst_is_zoom = self.matcher.matches(dst_ip)
        if src_is_zoom or dst_is_zoom:
            if packet.is_udp:
                if STUN_PORT in (packet.src_port, packet.dst_port) and is_stun(
                    packet.payload
                ):
                    self._learn_stun(packet, src_is_zoom)
                    return ZoomClass.SERVER_STUN
                if SERVER_MEDIA_PORT in (packet.src_port, packet.dst_port):
                    return ZoomClass.SERVER_MEDIA
                return ZoomClass.SERVER_OTHER
            if packet.is_tcp and SERVER_TLS_PORT in (packet.src_port, packet.dst_port):
                return ZoomClass.SERVER_TLS
            return ZoomClass.SERVER_OTHER
        if packet.is_udp:
            # A hit refreshes the binding: an active P2P flow must stay
            # classified for as long as it is actually sending, so the only
            # timeout that ends it is the *idle* timeout — consistent with
            # how server streams are handled.
            now = packet.timestamp
            if self._endpoint_is_campus(src_ip) is not False and self.stun.lookup(
                src_ip, packet.src_port or 0, now, refresh=True
            ):
                return ZoomClass.P2P_MEDIA
            if self._endpoint_is_campus(dst_ip) is not False and self.stun.lookup(
                dst_ip, packet.dst_port or 0, now, refresh=True
            ):
                return ZoomClass.P2P_MEDIA
        return ZoomClass.NOT_ZOOM

    def observe_stun(self, packet: ParsedPacket) -> bool:
        """Learn a STUN binding *without* counting the packet.

        The sharded driver replicates STUN exchanges to every shard so each
        shard-local detector can recognize the P2P flow that follows, but
        only the packet's home shard counts it; this is the side-effect-only
        entry point the replicas use.  Returns whether a binding was learned.
        """
        src_is_zoom = self.matcher.matches(packet.src_ip)
        dst_is_zoom = self.matcher.matches(packet.dst_ip)
        if not (src_is_zoom or dst_is_zoom) or not packet.is_udp:
            return False
        if STUN_PORT not in (packet.src_port, packet.dst_port):
            return False
        if not is_stun(packet.payload):
            return False
        self._learn_stun(packet, src_is_zoom)
        return True

    def merge_from(self, other: "ZoomTrafficDetector") -> None:
        """Fold another detector's telemetry and learned state into this one
        (sharded-result merge)."""
        self.counters.merge_from(other.counters)
        self.stun.merge_from(other.stun)

    def _learn_stun(self, packet: ParsedPacket, src_is_zoom: bool) -> None:
        """Record the client endpoint of a STUN exchange.

        For a request, the client is the source; for a response, the
        destination.  Either direction suffices to learn the binding.
        """
        if src_is_zoom:
            client_ip, client_port = packet.dst_ip, packet.dst_port
        else:
            client_ip, client_port = packet.src_ip, packet.src_port
        if client_ip is not None and client_port is not None:
            self.stun.learn(client_ip, client_port, packet.timestamp)

    def _endpoint_is_campus(self, ip: str | None) -> bool | None:
        """Campus membership, or ``None`` when no campus list was given."""
        if self.campus_matcher is None:
            return None
        return self.campus_matcher.matches(ip)
