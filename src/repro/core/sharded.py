"""Flow-sharded parallel analysis: N analyzers, one merged result.

A border tap serving a large campus produces far more packets than one
Python analyzer core can chew through.  :class:`ShardedAnalyzer` partitions
the capture by a *bidirectional flow hash* — both directions of a 5-tuple,
and therefore every packet of every stream, land on the same shard — runs
one full :class:`~repro.core.pipeline.ZoomAnalyzer` per shard, and merges
the shard results with :meth:`~repro.core.pipeline.AnalysisResult.merge`.

Two cross-flow effects need care:

* **P2P detection** (§4.1) learns endpoints from a STUN exchange on a
  *different* flow than the P2P media that follows.  STUN packets are
  therefore replicated to every shard: counted only on their home shard,
  side-effect-only (:meth:`ZoomAnalyzer.hint_stun`) everywhere else.
* **Method-1 latency** matches the egress copy of a stream (sender → SFU)
  against its ingress copies (SFU → each receiver) — by construction two
  *different* clients' flows, so flow-affine sharding splits essentially
  every matchable pair.  Expect few or no §5.3 RTP-latency samples from a
  sharded run; use a single pass (or the TCP-RTT proxy, which is per-flow
  and survives sharding) when latency matters.  Stream, meeting, and
  Table-2/3 accounting are unaffected.

Backends: ``"serial"`` (debugging/baseline), ``"thread"`` (shared-memory;
bounded by the GIL for pure-Python decode), ``"process"``
(``multiprocessing``; true parallelism).  Work crosses the process
boundary as :class:`~repro.net.batch.FrameBatch` buffers — one contiguous
``bytes`` plus three flat arrays per ~2048 frames — so pickling cost is a
handful of buffer copies per batch instead of one ``CapturedPacket``
object per packet, and each shard runs the batch fast path
(:meth:`ZoomAnalyzer.feed_batch`) end to end.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.config import _UNSET, AnalyzerConfig, resolve_config
from repro.core.pipeline import AnalysisResult, ZoomAnalyzer
from repro.net.batch import FrameBatch, FrameBatchBuilder
from repro.net.packet import CapturedPacket, parse_frame
from repro.rtp.stun import STUN_PORT
from repro.telemetry.registry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.source import PacketSource

_ETHERTYPE_VLAN = 0x8100
_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_IPV6 = 0x86DD
_STUN_MAGIC = b"\x21\x12\xa4\x42"

#: Frames per shard-bound :class:`FrameBatch` built by the partitioner.
_SHARD_BATCH_FRAMES = 2048


def flow_shard_info(data) -> tuple[int, bool] | None:
    """(bidirectional flow hash, looks-like-Zoom-STUN) for one raw frame.

    Reads the handful of header bytes it needs directly — this runs once per
    packet in the partitioning loop, before any shard does a full decode.
    ``data`` may be ``bytes`` or a ``memoryview`` into a batch buffer (the
    hash is over header *values*, so both spell the same shard).  Returns
    ``None`` for frames without an IPv4/IPv6 + TCP/UDP flow key (ARP,
    truncated frames, other protocols); those carry no per-flow state and
    may go to any shard.
    """
    if len(data) < 34:
        return None
    ethertype = (data[12] << 8) | data[13]
    offset = 14
    if ethertype == _ETHERTYPE_VLAN:
        if len(data) < 38:
            return None
        ethertype = (data[16] << 8) | data[17]
        offset = 18
    if ethertype == _ETHERTYPE_IPV4:
        ihl = (data[offset] & 0x0F) * 4
        if ihl < 20 or len(data) < offset + ihl + 4:
            return None
        proto = data[offset + 9]
        src = bytes(data[offset + 12 : offset + 16])
        dst = bytes(data[offset + 16 : offset + 20])
        l4 = offset + ihl
    elif ethertype == _ETHERTYPE_IPV6:
        if len(data) < offset + 44:
            return None
        proto = data[offset + 6]
        src = bytes(data[offset + 8 : offset + 24])
        dst = bytes(data[offset + 24 : offset + 40])
        l4 = offset + 40
    else:
        return None
    if proto not in (6, 17) or len(data) < l4 + 4:
        return None
    sport = (data[l4] << 8) | data[l4 + 1]
    dport = (data[l4 + 2] << 8) | data[l4 + 3]
    endpoint_a = src + bytes((sport >> 8, sport & 0xFF))
    endpoint_b = dst + bytes((dport >> 8, dport & 0xFF))
    if endpoint_b < endpoint_a:
        endpoint_a, endpoint_b = endpoint_b, endpoint_a
    flow_hash = zlib.crc32(endpoint_a + endpoint_b + bytes((proto,)))
    is_stun = (
        proto == 17
        and STUN_PORT in (sport, dport)
        and len(data) >= l4 + 8 + 8
        and data[l4 + 12 : l4 + 16] == _STUN_MAGIC
    )
    return flow_hash, is_stun


@dataclass
class PartitionStats:
    """Accounting from one :meth:`ShardedAnalyzer.partition` call."""

    shard_packets: list[int] = field(default_factory=list)
    hints_replicated: int = 0
    unhashable_frames: int = 0


def _analyze_shard(args: tuple) -> AnalysisResult:
    """Worker: run one shard's packet sequence through a fresh analyzer.

    ``work`` is a capture-time-ordered list of (packet, is_hint) pairs;
    hints are replicated STUN packets that teach the detector without being
    counted.  Module-level so the process backend can pickle it; the config
    is the picklable per-shard variant (:meth:`AnalyzerConfig.shard_config`).
    """
    config, work = args
    analyzer = ZoomAnalyzer(config)
    for packet, is_hint in work:
        if is_hint:
            analyzer.hint_stun(parse_frame(packet.data, packet.timestamp))
        else:
            analyzer.feed(packet)
    return analyzer.result


def _analyze_shard_batches(args: tuple) -> AnalysisResult:
    """Worker: run one shard's :class:`FrameBatch` list through a fresh
    analyzer's batch fast path.

    Hint frames (replicated STUN) travel inside the batches via the
    ``hints`` column; :meth:`ZoomAnalyzer.feed_batch` routes them to
    :meth:`~ZoomAnalyzer.hint_stun` in capture order without counting them.
    Module-level so the process backend can pickle it.
    """
    config, batches = args
    analyzer = ZoomAnalyzer(config)
    for batch in batches:
        analyzer.feed_batch(batch)
    return analyzer.result


class ShardedAnalyzer:
    """Partition a capture across N flow-affine analyzers and merge.

    Args:
        config: An :class:`~repro.core.config.AnalyzerConfig`; ``shards``
            and ``shard_backend`` select the partitioning, and every
            per-analyzer option (subnets, STUN timeout, record retention)
            is forwarded to each shard's :class:`ZoomAnalyzer`.  Per-shard
            telemetry registries are merged into the combined result, whose
            additive counters then equal a single-pass run; the driver adds
            its own ``sharded.*`` partition accounting (per-shard packet
            balance, STUN hint replication) on top.  A shared
            :class:`~repro.telemetry.Telemetry` *instance* in the config
            cannot be written from concurrent shards, so it degrades to its
            enabled flag; pass a factory for custom per-shard registries.
        **deprecated: The historical kwargs (``shards``, ``zoom_subnets``,
            ``campus_subnets``, ``stun_timeout``, ``keep_records``,
            ``backend``, ``telemetry``) still work but warn; they are shims
            over the config.

    Usage::

        result = ShardedAnalyzer(AnalyzerConfig(shards=4)).analyze(packets)
    """

    def __init__(
        self,
        config: AnalyzerConfig | None = None,
        *,
        shards: int | object = _UNSET,
        zoom_subnets: Iterable[str] | object = _UNSET,
        campus_subnets: Iterable[str] | None | object = _UNSET,
        stun_timeout: float | object = _UNSET,
        keep_records: bool | object = _UNSET,
        backend: str | object = _UNSET,
        telemetry: Telemetry | bool | object = _UNSET,
    ) -> None:
        self.config = resolve_config(
            config,
            "ShardedAnalyzer",
            shards=shards,
            zoom_subnets=zoom_subnets,
            campus_subnets=campus_subnets,
            stun_timeout=stun_timeout,
            keep_records=keep_records,
            backend=backend,
            telemetry=telemetry,
        )
        # Legacy default: ShardedAnalyzer() historically meant 4 shards,
        # while AnalyzerConfig defaults to a single pass.
        if self.config.shards == 1 and config is None and shards is _UNSET:
            self.config = self.config.replace(shards=4)
        self.shards = self.config.shards
        self.backend = self.config.shard_backend
        self.partition_stats = PartitionStats()

    def partition(
        self, packets: Iterable[CapturedPacket]
    ) -> list[list[tuple[CapturedPacket, bool]]]:
        """Split a capture into per-shard work lists, preserving order.

        Each packet lands on exactly one home shard (flow-affine, both
        directions together); STUN packets are additionally replicated to
        every other shard as detector hints.  Partition accounting for the
        most recent call is kept on :attr:`partition_stats`.
        """
        buckets: list[list[tuple[CapturedPacket, bool]]] = [
            [] for _ in range(self.shards)
        ]
        stats = PartitionStats(shard_packets=[0] * self.shards)
        for packet in packets:
            info = flow_shard_info(packet.data)
            if info is None:
                home = zlib.crc32(packet.data) % self.shards
                buckets[home].append((packet, False))
                stats.shard_packets[home] += 1
                stats.unhashable_frames += 1
                continue
            flow_hash, is_stun = info
            home = flow_hash % self.shards
            buckets[home].append((packet, False))
            stats.shard_packets[home] += 1
            if is_stun:
                for index in range(self.shards):
                    if index != home:
                        buckets[index].append((packet, True))
                        stats.hints_replicated += 1
        self.partition_stats = stats
        return buckets

    def partition_frames(
        self, frames: Iterable[tuple]
    ) -> list[list[FrameBatch]]:
        """Split a raw-frame stream into per-shard :class:`FrameBatch` lists.

        ``frames`` yields ``(data, timestamp)`` pairs (``data`` may be a
        ``memoryview`` into a reader batch; the builder copies it into the
        shard's own contiguous buffer).  Same flow-affine placement and
        STUN-hint replication as :meth:`partition`, but the output is what
        the process backend actually wants to pickle: one buffer + three
        flat arrays per ~:data:`_SHARD_BATCH_FRAMES` frames, not one object
        per packet.  Partition accounting lands on :attr:`partition_stats`.
        """
        shards = self.shards
        builders = [FrameBatchBuilder() for _ in range(shards)]
        work: list[list[FrameBatch]] = [[] for _ in range(shards)]
        stats = PartitionStats(shard_packets=[0] * shards)
        crc32 = zlib.crc32
        for data, timestamp in frames:
            info = flow_shard_info(data)
            if info is None:
                home = crc32(data) % shards
                stats.unhashable_frames += 1
                is_stun = False
            else:
                flow_hash, is_stun = info
                home = flow_hash % shards
            builder = builders[home]
            builder.append(data, timestamp)
            stats.shard_packets[home] += 1
            if len(builder) >= _SHARD_BATCH_FRAMES:
                work[home].append(builder.build())
            if is_stun:
                for index in range(shards):
                    if index == home:
                        continue
                    other = builders[index]
                    other.append(data, timestamp, hint=True)
                    stats.hints_replicated += 1
                    if len(other) >= _SHARD_BATCH_FRAMES:
                        work[index].append(other.build())
        for index, builder in enumerate(builders):
            if len(builder):
                work[index].append(builder.build())
        self.partition_stats = stats
        return work

    def analyze(self, packets: Iterable[CapturedPacket]) -> AnalysisResult:
        """Partition, run every shard, and return the merged result.

        The merged result's telemetry holds the per-shard registries summed
        (so additive counters match a single-pass run) plus the driver's own
        ``sharded.*`` partition accounting.
        """
        return self._analyze_frames(
            (packet.data, packet.timestamp) for packet in packets
        )

    def run(self, source: "PacketSource") -> AnalysisResult:
        """Drain a :class:`~repro.net.source.PacketSource` across the shards.

        Batch-capable sources stream :class:`FrameBatch` buffers straight
        into the partitioner (no per-packet objects on the ingest side
        either); scalar-only sources fall back to rewrapping parsed packets
        as raw frames.  Also accepts a file path or plain packet iterable.
        """
        from repro.net.source import coerce_source

        # Shard registries can't be shared with the reader, so ingest-side
        # counters accumulate separately and fold into the merged result.
        ingest = Telemetry(enabled=self.config.telemetry_enabled)
        source = coerce_source(source, telemetry=ingest, tolerant=self.config.tolerant)
        frame_batches = getattr(source, "frame_batches", None)
        if frame_batches is not None:
            frames = (
                frame
                for batch in frame_batches()
                for frame in batch.iter_frames()
            )
        else:
            frames = (
                (parsed.raw, parsed.timestamp)
                for batch in source.batches()
                for parsed in batch
            )
        result = self._analyze_frames(frames)
        result.telemetry.merge_from(ingest)
        return result

    # ------------------------------------------------------------- internals

    def _analyze_frames(self, frames: Iterable[tuple]) -> AnalysisResult:
        work = self.partition_frames(frames)
        shard_config = self.config.shard_config()
        shard_args = [(shard_config, batches) for batches in work]
        results = self._run_shards(shard_args, worker=_analyze_shard_batches)
        merged = AnalysisResult.merge_all(results)
        tel = merged.telemetry
        if tel.enabled:
            stats = self.partition_stats
            for index, count in enumerate(stats.shard_packets):
                tel.count(f"sharded.shard_packets.{index}", count)
            tel.count("sharded.hints_replicated", stats.hints_replicated)
            tel.count("sharded.unhashable_frames", stats.unhashable_frames)
            tel.record_max("sharded.shards", self.shards)
        return merged

    def _run_shards(
        self, shard_args: Sequence[tuple], worker=_analyze_shard
    ) -> list[AnalysisResult]:
        if self.backend == "serial" or self.shards == 1:
            return [worker(args) for args in shard_args]
        if self.backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.shards) as pool:
                return list(pool.map(worker, shard_args))
        import multiprocessing

        with multiprocessing.Pool(processes=self.shards) as pool:
            return pool.map(worker, shard_args)
