"""Discovering where RTP/RTCP headers start in Zoom packets (§4.2.2).

Given a flow's payloads and no knowledge of Zoom's encapsulation, this
module reproduces the paper's recipe:

1. Scan every packet for plausible RTP headers (version bits, structural
   fit) at every offset — encrypted bytes produce false positives, so
   candidates are validated *flow-wide*: a true offset yields a small set of
   heavily repeated SSRC values; false offsets yield noise.
2. Group packets by their validated RTP offset and compare the bytes
   *before* the header across groups.  A byte position that is constant
   within every group but differs between groups is a packet-type field —
   this is how the paper found the media-encapsulation type byte and that
   the type determines the header offset.
3. Search the packets with no RTP header for the SSRC values learned in
   step 1; an embedded known SSRC preceded by a valid RTCP common header
   reveals the RTCP offset (how the paper found Zoom's sender reports).
"""

from __future__ import annotations

import struct
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from repro.rtp.rtp import looks_like_rtp

RTCP_PACKET_TYPES = range(200, 205)


@dataclass
class OffsetDiscovery:
    """Result of the §4.2.2 analysis over one flow.

    Attributes:
        rtp_offsets: Validated RTP header offsets with packet counts.
        ssrcs: SSRC values accepted as genuine.
        assignments: Per-packet index → chosen RTP offset (packets without
            a validated RTP header are absent).
        type_field_positions: Byte positions (before the earliest RTP
            offset) that discriminate the offset groups — the discovered
            type field(s).
        offset_by_type_value: For the best type-field position: observed
            mapping of type value → RTP offset (the discovered Table 2).
        rtcp_offsets: Validated RTCP header offsets with packet counts.
    """

    rtp_offsets: Counter = field(default_factory=Counter)
    ssrcs: set[int] = field(default_factory=set)
    assignments: dict[int, int] = field(default_factory=dict)
    type_field_positions: list[int] = field(default_factory=list)
    offset_by_type_value: dict[int, int] = field(default_factory=dict)
    rtcp_offsets: Counter = field(default_factory=Counter)


def candidate_rtp_offsets(payload: bytes, *, max_offset: int = 48) -> list[int]:
    """Offsets where ``payload`` could structurally hold an RTP header."""
    return [
        offset
        for offset in range(0, min(max_offset, max(len(payload) - 12, 0)) + 1)
        if looks_like_rtp(payload[offset:])
    ]


def discover_offsets(
    payloads: Sequence[bytes],
    *,
    max_offset: int = 48,
    min_ssrc_count: int = 8,
) -> OffsetDiscovery:
    """Run the full offset/type-field discovery over one flow's payloads."""
    discovery = OffsetDiscovery()
    # Pass 1: tally SSRC candidates per (offset, ssrc).
    per_packet_candidates: list[list[int]] = []
    ssrc_votes: Counter = Counter()
    seq_values: dict[tuple[int, int], set[int]] = defaultdict(set)
    for payload in payloads:
        candidates = candidate_rtp_offsets(payload, max_offset=max_offset)
        per_packet_candidates.append(candidates)
        for offset in candidates:
            if len(payload) >= offset + 12:
                (ssrc,) = struct.unpack_from("!I", payload, offset + 8)
                ssrc_votes[(offset, ssrc)] += 1
                (sequence,) = struct.unpack_from("!H", payload, offset + 2)
                seq_values[(offset, ssrc)].add(sequence)
    # Accept (offset, SSRC) pairs that recur often enough AND whose sequence
    # field actually behaves like a sequence: misaligned candidates landing
    # on constant header bytes repeat heavily but show almost no distinct
    # "sequence" values, which is how we reject them — the automated version
    # of the paper's structural validation against the RTP spec.
    accepted = set()
    for (offset, ssrc), count in ssrc_votes.items():
        if count < min_ssrc_count:
            continue
        distinct_fraction = len(seq_values[(offset, ssrc)]) / count
        if distinct_fraction >= 0.25:
            accepted.add((offset, ssrc))
    # Pass 2: assign each packet the candidate offset whose SSRC was accepted
    # (preferring the most popular (offset, ssrc) pair on ties).
    for index, candidates in enumerate(per_packet_candidates):
        best: tuple[int, int] | None = None
        for offset in candidates:
            payload = payloads[index]
            (ssrc,) = struct.unpack_from("!I", payload, offset + 8)
            if (offset, ssrc) in accepted:
                votes = ssrc_votes[(offset, ssrc)]
                if best is None or votes > best[0]:
                    best = (votes, offset)
        if best is not None:
            discovery.assignments[index] = best[1]
            discovery.rtp_offsets[best[1]] += 1
    # Report only the SSRCs of packets that actually got an offset assigned:
    # accepted-but-outvoted (offset, SSRC) pairs are misalignment artifacts.
    for index, offset in discovery.assignments.items():
        (ssrc,) = struct.unpack_from("!I", payloads[index], offset + 8)
        discovery.ssrcs.add(ssrc)
    _discover_type_field(payloads, discovery)
    _discover_rtcp(payloads, discovery)
    return discovery


def _discover_type_field(payloads: Sequence[bytes], discovery: OffsetDiscovery) -> None:
    """Step 2: bytes constant within an offset group, differing across."""
    if not discovery.rtp_offsets:
        return
    groups: dict[int, list[bytes]] = defaultdict(list)
    for index, offset in discovery.assignments.items():
        groups[offset].append(payloads[index])
    # Tiny groups are almost always residual false positives; keeping them
    # would shrink the pre-header byte range (and break the comparison) for
    # no information gain.
    total_assigned = sum(len(members) for members in groups.values())
    minimum_group = max(8, total_assigned // 100)
    groups = {
        offset: members
        for offset, members in groups.items()
        if len(members) >= minimum_group
    }
    if not groups:
        return
    min_offset = min(groups)
    if len(groups) < 2:
        # A single offset group: every pre-header byte is trivially
        # "constant within group"; report none rather than everything.
        return
    positions: list[int] = []
    for position in range(min_offset):
        values_per_group: list[set[int]] = []
        for offset, members in groups.items():
            values = {payload[position] for payload in members if len(payload) > position}
            values_per_group.append(values)
        if all(len(values) == 1 for values in values_per_group):
            distinct = {next(iter(values)) for values in values_per_group}
            if len(distinct) > 1:
                positions.append(position)
    discovery.type_field_positions = positions
    if positions:
        best = positions[0]
        for offset, members in groups.items():
            for payload in members:
                if len(payload) > best:
                    discovery.offset_by_type_value[payload[best]] = offset
                    break


def _discover_rtcp(payloads: Sequence[bytes], discovery: OffsetDiscovery) -> None:
    """Step 3: find known SSRCs inside the non-RTP packets (§4.2.1)."""
    if not discovery.ssrcs:
        return
    assigned = set(discovery.assignments)
    for index, payload in enumerate(payloads):
        if index in assigned:
            continue
        for offset in range(0, max(len(payload) - 8, 0)):
            if payload[offset] >> 6 != 2:  # RTCP shares RTP's version bits
                continue
            packet_type = payload[offset + 1]
            if packet_type not in RTCP_PACKET_TYPES:
                continue
            if len(payload) < offset + 8:
                continue
            (ssrc,) = struct.unpack_from("!I", payload, offset + 4)
            if ssrc in discovery.ssrcs:
                discovery.rtcp_offsets[offset] += 1
                break
