"""Bounded-memory continuous analysis for 24/7 operation.

The one-pass :class:`~repro.core.pipeline.ZoomAnalyzer` retains every stream
and meeting it ever saw — fine for a trace file, unbounded for a permanent
border tap.  :class:`RollingZoomAnalyzer` wraps it with time-based eviction:
streams idle longer than the rolling window are finalized through the public
:meth:`~repro.core.pipeline.ZoomAnalyzer.evict_stream` API, which publishes
a :class:`~repro.core.events.StreamEvicted` event this wrapper (and any
other sink — report cards, ML export) subscribes to.  Meetings whose last
stream is gone follow, and long-lived shared state (the latency matcher's
pending table, the STUN tracker) is already bounded by design.

This addresses the operational gap between the paper's 12-hour offline study
and a deployment that never stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.core.config import _UNSET, AnalyzerConfig, resolve_config
from repro.core.events import StreamEvicted
from repro.core.pipeline import AnalysisResult, ZoomAnalyzer
from repro.core.streams import MediaStream, StreamKey
from repro.net.packet import CapturedPacket, ParsedPacket
from repro.telemetry.registry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.batch import FrameBatch
    from repro.net.source import PacketSource


@dataclass(frozen=True, slots=True)
class FinalizedStream:
    """Everything retained about a stream at eviction time."""

    key: StreamKey
    ssrc: int
    media_type: int
    first_time: float
    last_time: float
    packets: int
    bytes: int
    frames_completed: int
    mean_fps: float
    jitter_ms: float
    duplicates: int
    lost: int
    stall_count: int
    protocol: str = "zoom"


class RollingZoomAnalyzer:
    """A :class:`ZoomAnalyzer` with idle-stream eviction.

    Args:
        config: An :class:`~repro.core.config.AnalyzerConfig`; the rolling
            window comes from ``rolling_idle_timeout`` (seconds of
            inactivity before a stream is finalized) and
            ``rolling_sweep_interval`` (how often, in capture time, to scan
            for idle streams).  The wrapper adds its own ``rolling.*``
            counters (sweeps, retained-state size) and eviction reasons land
            under ``pipeline.evicted.*`` via the shared eviction path.
        on_stream_finalized: Optional callback receiving each
            :class:`FinalizedStream` (e.g. to write a database row).
        **deprecated: The historical kwargs (``idle_timeout``,
            ``sweep_interval``, ``zoom_subnets``, ``campus_subnets``,
            ``stun_timeout``, ``keep_records``, ``telemetry``) still work
            but warn; they are shims over the config.
    """

    def __init__(
        self,
        config: AnalyzerConfig | None = None,
        *,
        on_stream_finalized: Optional[Callable[[FinalizedStream], None]] = None,
        idle_timeout: float | object = _UNSET,
        sweep_interval: float | object = _UNSET,
        zoom_subnets: Iterable[str] | object = _UNSET,
        campus_subnets: Iterable[str] | None | object = _UNSET,
        stun_timeout: float | object = _UNSET,
        keep_records: bool | object = _UNSET,
        telemetry: Telemetry | bool | object = _UNSET,
    ) -> None:
        self.config = resolve_config(
            config,
            "RollingZoomAnalyzer",
            idle_timeout=idle_timeout,
            sweep_interval=sweep_interval,
            zoom_subnets=zoom_subnets,
            campus_subnets=campus_subnets,
            stun_timeout=stun_timeout,
            keep_records=keep_records,
            telemetry=telemetry,
        )
        self.idle_timeout = self.config.rolling_idle_timeout
        self.sweep_interval = self.config.rolling_sweep_interval
        self.on_stream_finalized = on_stream_finalized
        self.finalized: list[FinalizedStream] = []
        self.streams_evicted = 0
        self._last_sweep = float("-inf")
        self._analyzer = ZoomAnalyzer(self.config)
        self._analyzer.bus.subscribe(StreamEvicted, self._on_stream_evicted)

    @property
    def result(self) -> AnalysisResult:
        """The live (post-eviction) analysis state."""
        return self._analyzer.result

    @property
    def analyzer(self) -> ZoomAnalyzer:
        """The wrapped analyzer (e.g. to register further event sinks)."""
        return self._analyzer

    def feed(self, packet: CapturedPacket) -> None:
        """Feed one captured frame; may trigger an eviction sweep."""
        self._analyzer.feed(packet)
        if packet.timestamp - self._last_sweep >= self.sweep_interval:
            self.sweep(packet.timestamp)

    def feed_parsed(self, parsed: ParsedPacket) -> None:
        """Feed one already-parsed frame; may trigger an eviction sweep."""
        self._analyzer.feed_parsed(parsed)
        if parsed.timestamp - self._last_sweep >= self.sweep_interval:
            self.sweep(parsed.timestamp)

    def feed_batch(self, batch: "FrameBatch") -> None:
        """Feed one :class:`~repro.net.batch.FrameBatch`; may trigger a sweep.

        Sweep timing is checked once per batch (against the batch's last
        timestamp) instead of per packet.  Capture timestamps are
        monotone-enough in practice that this only ever *delays* a sweep by
        at most one batch of capture time — eviction idle timeouts dwarf
        that — and it keeps the sweep check off the per-frame fast path.
        """
        if not len(batch):
            return
        self._analyzer.feed_batch(batch)
        now = batch.last_timestamp
        if now - self._last_sweep >= self.sweep_interval:
            self.sweep(now)

    def analyze(self, packets: Iterable[CapturedPacket]) -> AnalysisResult:
        for packet in packets:
            self.feed(packet)
        return self.result

    def run(self, source: "PacketSource") -> AnalysisResult:
        """Drain a :class:`~repro.net.source.PacketSource` with eviction.

        The streaming twin of :meth:`analyze`; combined with a streaming
        source this is the shape of a live deployment — bounded reader
        memory in, bounded analyzer state throughout.  Batch-capable
        sources stream :class:`~repro.net.batch.FrameBatch` buffers through
        the vectorized fast path.
        """
        from repro.net.source import coerce_source

        source = coerce_source(
            source,
            telemetry=self._analyzer.result.telemetry,
            tolerant=self.config.tolerant,
        )
        frame_batches = getattr(source, "frame_batches", None)
        if frame_batches is not None:
            for frame_batch in frame_batches():
                self.feed_batch(frame_batch)
            return self.result
        for batch in source.batches():
            for parsed in batch:
                self.feed_parsed(parsed)
        return self.result

    def sweep(self, now: float) -> int:
        """Finalize and evict streams idle since ``now - idle_timeout``.

        Applies uniformly to server-relayed and P2P streams — a P2P stream
        stays live for exactly as long as its packets keep being classified
        (active flows refresh their STUN binding in the detector), so idle
        eviction is the one timeout that ends it.  The sweep also purges
        expired STUN bindings: expiry is otherwise lazy per endpoint, and
        endpoints that never sent media would accumulate forever in a 24/7
        deployment.  Returns the number of streams evicted.
        """
        self._last_sweep = now
        live = self._analyzer.result.streams.streams()
        stale = [
            stream for stream in live if now - stream.last_time > self.idle_timeout
        ]
        # Every plugin's endpoint state ages out here (the Zoom plugin's
        # purge is the detector's STUN tracker; the generic RTP plugin has
        # its own tracker).
        purged = sum(plugin.purge(now) for plugin in self._analyzer.plugins)
        tel = self._analyzer.result.telemetry
        if tel.enabled:
            tel.count("rolling.sweeps")
            tel.record_max("rolling.live_streams_peak", len(live))
            tel.observe("rolling.live_streams", len(live))
            if purged:
                tel.count("rolling.stun_purged", purged)
        for stream in stale:
            self._analyzer.evict_stream(stream.key, reason="idle")
        return len(stale)

    def live_stream_count(self) -> int:
        return len(self._analyzer.result.streams)

    def live_stream_snapshots(self) -> list[FinalizedStream]:
        """Point-in-time summaries of every still-open stream.

        The same shape eviction produces, but without finalizing anything —
        the windowed aggregator uses these to report on streams that span an
        open window, and a dashboard can poll them for a live table.
        """
        result = self._analyzer.result
        return [
            self._summarize(stream, result.stream_metrics.get(stream.key))
            for stream in result.streams.streams()
        ]

    # ------------------------------------------------------------- internals

    def _summarize(
        self,
        stream: "MediaStream",
        metrics: object,
        *,
        finalize: bool = False,
    ) -> FinalizedStream:
        """One :class:`FinalizedStream` record from a stream + its estimators.

        ``finalize=True`` closes out the loss trackers (eviction path);
        ``finalize=False`` reads them non-destructively (live snapshots).
        """
        frames = metrics.assembler.completed_count if metrics else 0
        fps_samples = metrics.framerate_delivered.samples if metrics else []
        loss = metrics.loss.report(finalize=finalize) if metrics else None
        return FinalizedStream(
            key=stream.key,
            ssrc=stream.ssrc,
            media_type=stream.media_type,
            first_time=stream.first_time,
            last_time=stream.last_time,
            packets=stream.packets,
            bytes=stream.bytes,
            frames_completed=frames,
            mean_fps=(
                sum(s.fps for s in fps_samples) / len(fps_samples)
                if fps_samples
                else float("nan")
            ),
            jitter_ms=(metrics.jitter.jitter * 1000 if metrics else float("nan")),
            duplicates=loss.duplicates if loss else 0,
            lost=loss.lost if loss else 0,
            stall_count=len(metrics.stall_events()) if metrics else 0,
            protocol=stream.protocol,
        )

    def _on_stream_evicted(self, event: StreamEvicted) -> None:
        """Summarize an evicted stream from the event payload alone."""
        record = self._summarize(event.stream, event.metrics, finalize=True)
        self.finalized.append(record)
        self.streams_evicted += 1
        if self.on_stream_finalized is not None:
            self.on_stream_finalized(record)
