"""RTP stream assembly: from decoded packets to per-stream state.

A *media stream* is identified by IP 5-tuple plus SSRC (§4.3.2 step 1); a
stream contains up to three *substreams* identified by RTP payload type
(§4.2.3), each with its own sequence space.  The analyzer keeps one
:class:`MediaStream` per key and feeds each arriving
:class:`RTPPacketRecord` to the metric estimators attached to it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

from repro.net.packet import FiveTuple
from repro.zoom.constants import ZoomMediaType

StreamKey = tuple[FiveTuple, int]
"""(five-tuple, SSRC) — the stream identity used throughout the analyzer."""


@dataclass(frozen=True, slots=True)
class RTPPacketRecord:
    """The normalized record the analyzer keeps per decoded media packet.

    This is the paper's "RTP packet record" (§4.3.2): everything later
    stages need, and nothing else — the raw bytes are dropped after decode.

    Attributes:
        timestamp: Monitor capture time (s).
        five_tuple: (src_ip, src_port, dst_ip, dst_port, proto).
        ssrc / payload_type / sequence / rtp_timestamp / marker: RTP fields.
        media_type: Zoom media-encapsulation type (13/15/16).
        payload_len: RTP payload bytes (the encrypted media).
        udp_payload_len: Total UDP payload bytes (for flow-level rates).
        frame_sequence: Zoom frame counter (video/screen share, else 0).
        packets_in_frame: Zoom packets-per-frame field (video/screen share).
        is_p2p: Whether the packet carried no SFU encapsulation.
        to_server: True for client→SFU packets (direction byte 0x00), False
            for SFU→client (0x04), None for P2P.
        protocol: Registry name of the plugin that decoded the packet.
    """

    timestamp: float
    five_tuple: FiveTuple
    ssrc: int
    payload_type: int
    sequence: int
    rtp_timestamp: int
    marker: bool
    media_type: int
    payload_len: int
    udp_payload_len: int
    frame_sequence: int = 0
    packets_in_frame: int = 0
    is_p2p: bool = False
    to_server: bool | None = None
    protocol: str = "zoom"

    @property
    def stream_key(self) -> StreamKey:
        return (self.five_tuple, self.ssrc)

    @property
    def src(self) -> tuple[str, int]:
        return (self.five_tuple[0], self.five_tuple[1])

    @property
    def dst(self) -> tuple[str, int]:
        return (self.five_tuple[2], self.five_tuple[3])


@dataclass
class SubStreamState:
    """Per-payload-type sequence tracking within a stream."""

    payload_type: int
    packets: int = 0
    bytes: int = 0
    highest_sequence: int | None = None
    first_sequence: int | None = None

    def observe(self, record: RTPPacketRecord) -> None:
        self.packets += 1
        self.bytes += record.payload_len
        if self.first_sequence is None:
            self.first_sequence = record.sequence
        if self.highest_sequence is None or _seq_newer(
            record.sequence, self.highest_sequence
        ):
            self.highest_sequence = record.sequence


@dataclass
class MediaStream:
    """One RTP media stream as seen from the monitor.

    Accumulates identity, bounds, per-substream counters, and the packet
    records themselves (callers that only need counters can disable record
    retention via ``StreamTable(keep_records=False)``).
    """

    key: StreamKey
    media_type: int
    is_p2p: bool
    to_server: bool | None
    first_time: float = 0.0
    last_time: float = 0.0
    first_rtp_timestamp: int = 0
    last_rtp_timestamp: int = 0
    packets: int = 0
    bytes: int = 0
    substreams: dict[int, SubStreamState] = field(default_factory=dict)
    records: list[RTPPacketRecord] = field(default_factory=list)
    keep_records: bool = True
    protocol: str = "zoom"

    @property
    def ssrc(self) -> int:
        return self.key[1]

    @property
    def five_tuple(self) -> FiveTuple:
        return self.key[0]

    @property
    def duration(self) -> float:
        return max(self.last_time - self.first_time, 0.0)

    @property
    def media_type_name(self) -> str:
        try:
            return ZoomMediaType(self.media_type).name
        except ValueError:
            return f"TYPE_{self.media_type}"

    def observe(self, record: RTPPacketRecord) -> None:
        """Fold one packet into the stream state."""
        if self.packets == 0:
            self.first_time = record.timestamp
            self.first_rtp_timestamp = record.rtp_timestamp
        self.packets += 1
        self.bytes += record.payload_len
        self.last_time = max(self.last_time, record.timestamp)
        self.last_rtp_timestamp = record.rtp_timestamp
        sub = self.substreams.get(record.payload_type)
        if sub is None:
            sub = self.substreams[record.payload_type] = SubStreamState(
                record.payload_type
            )
        sub.observe(record)
        if self.keep_records:
            self.records.append(record)

    def main_substream(self) -> SubStreamState | None:
        """The substream carrying the most packets (the non-FEC one)."""
        if not self.substreams:
            return None
        return max(self.substreams.values(), key=lambda sub: sub.packets)


class StreamTable:
    """Assembles packet records into :class:`MediaStream` objects.

    Also maintains the SSRC index that step 1 of the grouping heuristic
    needs: all streams carrying a given SSRC, so that a new 5-tuple with a
    known SSRC can be checked for RTP-timestamp continuity (§4.3.2).
    """

    def __init__(self, *, keep_records: bool = True) -> None:
        self._streams: dict[StreamKey, MediaStream] = {}
        self._by_ssrc: dict[int, list[MediaStream]] = defaultdict(list)
        self._keep_records = keep_records

    @property
    def keep_records(self) -> bool:
        """Whether streams created by this table retain per-packet records."""
        return self._keep_records

    def observe(self, record: RTPPacketRecord) -> MediaStream:
        """Route one record to its stream, creating the stream if new."""
        stream = self._streams.get(record.stream_key)
        if stream is None:
            stream = MediaStream(
                key=record.stream_key,
                media_type=record.media_type,
                is_p2p=record.is_p2p,
                to_server=record.to_server,
                keep_records=self._keep_records,
                protocol=record.protocol,
            )
            self._streams[record.stream_key] = stream
            self._by_ssrc[record.ssrc].append(stream)
        stream.observe(record)
        return stream

    def __len__(self) -> int:
        return len(self._streams)

    def __iter__(self) -> Iterator[MediaStream]:
        return iter(self._streams.values())

    def get(self, key: StreamKey) -> MediaStream | None:
        return self._streams.get(key)

    def with_ssrc(self, ssrc: int) -> list[MediaStream]:
        """All streams carrying ``ssrc`` (stream copies land here together)."""
        return list(self._by_ssrc.get(ssrc, ()))

    def adopt(self, stream: MediaStream) -> None:
        """Insert an already-assembled stream (sharded-result merge).

        Flow-affine partitioning makes shard stream keys disjoint, so a key
        collision means the caller merged overlapping captures — refuse
        rather than silently conflate two streams' state.
        """
        if stream.key in self._streams:
            raise ValueError(f"stream {stream.key!r} already present in table")
        self._streams[stream.key] = stream
        self._by_ssrc[stream.ssrc].append(stream)

    def evict(self, key: StreamKey) -> MediaStream | None:
        """Remove one stream from the table (continuous-operation cleanup);
        returns it, or ``None`` if unknown."""
        stream = self._streams.pop(key, None)
        if stream is None:
            return None
        remaining = [s for s in self._by_ssrc.get(stream.ssrc, ()) if s.key != key]
        if remaining:
            self._by_ssrc[stream.ssrc] = remaining
        else:
            self._by_ssrc.pop(stream.ssrc, None)
        return stream

    def streams(self) -> list[MediaStream]:
        return list(self._streams.values())


def _seq_newer(candidate: int, reference: int) -> bool:
    """RFC 1982 style serial comparison for 16-bit RTP sequence numbers."""
    return 0 < ((candidate - reference) & 0xFFFF) < 0x8000
