"""A Wireshark-plugin-equivalent dissector for Zoom packets (Appendix C).

Produces the same information as the paper's Wireshark plugin (Figure 18):
a tree of named fields with offsets, raw values, and display strings, for
any Zoom UDP payload — SFU encapsulation, media encapsulation, RTP with
extensions, RTCP compound packets, and the H.264 FU indicator on video.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtp.rtcp import RTCPReceiverReport, RTCPSdes, RTCPSenderReport
from repro.zoom.constants import RTPPayloadType, ZoomMediaType
from repro.zoom.packets import ZoomPacket, parse_zoom_payload
from repro.zoom.sfu_encap import Direction, SfuEncap


@dataclass
class DissectedField:
    """One node of the dissection tree.

    Attributes:
        name: Field name, dotted Wireshark style (``zoom.media.type``).
        offset / length: Byte range within the UDP payload.
        value: The decoded Python value.
        display: Human-readable rendering.
        children: Sub-fields.
    """

    name: str
    offset: int
    length: int
    value: object
    display: str
    children: list["DissectedField"] = field(default_factory=list)

    def add(self, child: "DissectedField") -> "DissectedField":
        self.children.append(child)
        return child

    def render(self, indent: int = 0) -> str:
        """Wireshark-packet-details-style text rendering."""
        pad = "    " * indent
        lines = [f"{pad}{self.name}: {self.display}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def find(self, name: str) -> "DissectedField | None":
        """Depth-first lookup by exact field name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


def _media_type_name(value: int) -> str:
    try:
        return ZoomMediaType(value).name
    except ValueError:
        return "UNKNOWN/CONTROL"


def _payload_type_name(value: int, media_type: int) -> str:
    if value == RTPPayloadType.VIDEO_MAIN:
        return "video (main)"
    if value == RTPPayloadType.FEC:
        return "FEC"
    if value == RTPPayloadType.AUDIO_SPEAKING:
        return "audio (speaking mode)"
    if value == RTPPayloadType.AUDIO_UNKNOWN:
        return "audio (mode unknown)"
    if value == RTPPayloadType.MULTIPLEX_99:
        if media_type == ZoomMediaType.AUDIO:
            return "audio (silent mode)"
        return "screen share (main)"
    return "unknown"


def dissect(payload: bytes, *, from_server: bool | None = None) -> DissectedField:
    """Dissect one Zoom UDP payload into a field tree.

    Args:
        payload: Raw UDP payload bytes.
        from_server: Force SFU-encapsulation (True), P2P (False), or
            auto-detect (None) — same semantics as
            :func:`repro.zoom.packets.parse_zoom_payload`.
    """
    packet = parse_zoom_payload(payload, from_server=from_server)
    root = DissectedField(
        name="zoom",
        offset=0,
        length=len(payload),
        value=None,
        display=packet.describe(),
    )
    cursor = 0
    if packet.sfu is not None:
        cursor = _dissect_sfu(root, packet.sfu)
    if packet.media is not None:
        media_node = DissectedField(
            name="zoom.media",
            offset=cursor,
            length=packet.media.header_len,
            value=None,
            display=f"Zoom Media Encapsulation ({_media_type_name(packet.media.media_type)})",
        )
        root.add(media_node)
        media_node.add(
            DissectedField(
                "zoom.media.type",
                cursor,
                1,
                packet.media.media_type,
                f"{packet.media.media_type} ({_media_type_name(packet.media.media_type)})",
            )
        )
        if packet.media.is_rtp:
            media_node.add(
                DissectedField(
                    "zoom.media.seq", cursor + 9, 2, packet.media.sequence,
                    str(packet.media.sequence),
                )
            )
            media_node.add(
                DissectedField(
                    "zoom.media.timestamp", cursor + 11, 4, packet.media.timestamp,
                    str(packet.media.timestamp),
                )
            )
        if packet.media.has_frame_fields:
            media_node.add(
                DissectedField(
                    "zoom.media.frame_seq", cursor + 21, 2,
                    packet.media.frame_sequence, str(packet.media.frame_sequence),
                )
            )
            media_node.add(
                DissectedField(
                    "zoom.media.pkts_in_frame", cursor + 23, 1,
                    packet.media.packets_in_frame, str(packet.media.packets_in_frame),
                )
            )
        cursor += packet.media.header_len
    if packet.rtp is not None:
        cursor = _dissect_rtp(root, packet, cursor)
    if packet.rtcp:
        _dissect_rtcp(root, packet, cursor)
    return root


def _dissect_sfu(root: DissectedField, sfu: SfuEncap) -> int:
    node = DissectedField(
        name="zoom.sfu",
        offset=0,
        length=SfuEncap.HEADER_LEN,
        value=None,
        display="Zoom SFU Encapsulation",
    )
    root.add(node)
    node.add(
        DissectedField(
            "zoom.sfu.type", 0, 1, sfu.sfu_type,
            f"{sfu.sfu_type}" + (" (media follows)" if sfu.carries_media else ""),
        )
    )
    node.add(DissectedField("zoom.sfu.seq", 1, 2, sfu.sequence, str(sfu.sequence)))
    direction_name = (
        "to SFU (0x00)" if sfu.direction == Direction.TO_SFU else
        "from SFU (0x04)" if sfu.direction == Direction.FROM_SFU else
        f"{sfu.direction:#04x}"
    )
    node.add(DissectedField("zoom.sfu.direction", 7, 1, sfu.direction, direction_name))
    return SfuEncap.HEADER_LEN


def _dissect_rtp(root: DissectedField, packet: ZoomPacket, cursor: int) -> int:
    rtp = packet.rtp
    assert rtp is not None and packet.media is not None
    node = DissectedField(
        name="rtp",
        offset=cursor,
        length=rtp.header_len,
        value=None,
        display="Real-Time Transport Protocol",
    )
    root.add(node)
    node.add(DissectedField("rtp.version", cursor, 1, 2, "RFC 1889 version (2)"))
    node.add(DissectedField("rtp.marker", cursor + 1, 1, rtp.marker, str(rtp.marker)))
    node.add(
        DissectedField(
            "rtp.p_type", cursor + 1, 1, rtp.payload_type,
            f"{rtp.payload_type} ({_payload_type_name(rtp.payload_type, packet.media.media_type)})",
        )
    )
    node.add(DissectedField("rtp.seq", cursor + 2, 2, rtp.sequence, str(rtp.sequence)))
    node.add(
        DissectedField("rtp.timestamp", cursor + 4, 4, rtp.timestamp, str(rtp.timestamp))
    )
    node.add(
        DissectedField("rtp.ssrc", cursor + 8, 4, rtp.ssrc, f"{rtp.ssrc:#010x}")
    )
    if rtp.extension_profile is not None:
        node.add(
            DissectedField(
                "rtp.ext.profile",
                cursor + 12 + 4 * len(rtp.csrcs),
                2,
                rtp.extension_profile,
                f"{rtp.extension_profile:#06x}",
            )
        )
    cursor += rtp.header_len
    if (
        packet.media.media_type in (ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE)
        and len(packet.rtp_payload) >= 2
    ):
        fu = DissectedField(
            name="h264.fu",
            offset=cursor,
            length=2,
            value=packet.rtp_payload[:2],
            display="H.264 fragmentation unit (NAL) header",
        )
        root.add(fu)
        fu.add(
            DissectedField(
                "h264.fu.start", cursor + 1, 1,
                bool(packet.rtp_payload[1] & 0x80),
                str(bool(packet.rtp_payload[1] & 0x80)),
            )
        )
        fu.add(
            DissectedField(
                "h264.fu.end", cursor + 1, 1,
                bool(packet.rtp_payload[1] & 0x40),
                str(bool(packet.rtp_payload[1] & 0x40)),
            )
        )
    root.add(
        DissectedField(
            "zoom.payload",
            cursor,
            len(packet.rtp_payload),
            None,
            f"encrypted media payload ({len(packet.rtp_payload)} bytes)",
        )
    )
    return cursor


def _dissect_rtcp(root: DissectedField, packet: ZoomPacket, cursor: int) -> None:
    for report in packet.rtcp:
        if isinstance(report, RTCPSenderReport):
            node = DissectedField(
                "rtcp.sr", cursor, 28, None, "RTCP Sender Report"
            )
            node.add(DissectedField("rtcp.ssrc", cursor + 4, 4, report.ssrc, f"{report.ssrc:#010x}"))
            node.add(
                DissectedField(
                    "rtcp.ntp", cursor + 8, 8,
                    (report.ntp_seconds, report.ntp_fraction),
                    f"{report.ntp_unix_time:.6f} (unix)",
                )
            )
            node.add(
                DissectedField(
                    "rtcp.rtp_ts", cursor + 16, 4, report.rtp_timestamp,
                    str(report.rtp_timestamp),
                )
            )
            node.add(
                DissectedField(
                    "rtcp.pkt_count", cursor + 20, 4, report.packet_count,
                    str(report.packet_count),
                )
            )
            root.add(node)
            cursor += 28 + 24 * len(report.report_blocks)
        elif isinstance(report, RTCPSdes):
            display = "RTCP Source Description" + (" (empty)" if report.is_empty else "")
            node = DissectedField("rtcp.sdes", cursor, 12, None, display)
            node.add(DissectedField("rtcp.sdes.ssrc", cursor + 4, 4, report.ssrc, f"{report.ssrc:#010x}"))
            root.add(node)
            cursor += 12
        elif isinstance(report, RTCPReceiverReport):
            node = DissectedField("rtcp.rr", cursor, 8, None, "RTCP Receiver Report")
            root.add(node)
            cursor += 8 + 24 * len(report.report_blocks)


def dissect_text(payload: bytes, *, from_server: bool | None = None) -> str:
    """One-call convenience: dissect and render as text."""
    return dissect(payload, from_server=from_server).render()
