"""Classify stage: protocol-registry claim dispatch and non-media exits.

Asks each enabled :class:`~repro.protocols.base.ProtocolPlugin`, in
deterministic ``(priority, name)`` order, to classify the parsed packet;
the first *claiming* verdict wins, and the claimant's
:meth:`~repro.protocols.base.ProtocolPlugin.on_claimed` runs the protocol's
non-media side channels (TLS RTT folding, STUN endpoint accounting) and
decides whether the packet continues into demux.  With the default
Zoom-only registry this is bit-identical to the pre-registry Zoom decision
tree (proven by the unregenerated golden snapshots).

When several plugins are enabled, lower-priority plugins are additionally
probed side-effect-free (:meth:`would_claim`) after a claim so overlapping
detection rules surface as a ``protocols.conflicts`` counter instead of
silently disappearing into precedence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.detector import ZoomClass
from repro.core.stages.base import BatchContext, PacketContext
from repro.net.batch import BatchPrefilter, PrefilterVerdict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult
    from repro.protocols.base import ProtocolPlugin


class ClassifyStage:
    """Registry claim dispatch plus the per-protocol early exits."""

    name = "classify"

    def __init__(
        self,
        result: "AnalysisResult",
        bus: "EventBus",
        plugins: Sequence["ProtocolPlugin"] | None = None,
    ) -> None:
        self._result = result
        self._telemetry = result.telemetry
        self._prefilter: BatchPrefilter | None = None
        if plugins is None:
            # Back-compat: a stage built without a registry wraps the
            # result's detector in the Zoom plugin (original behaviour).
            from repro.protocols.zoom import ZoomPlugin

            assert result.detector is not None
            plugins = (ZoomPlugin(result.detector),)
        self._plugins: tuple["ProtocolPlugin", ...] = tuple(
            sorted(plugins, key=lambda plugin: (plugin.priority, plugin.name))
        )
        # Per-class (packet counter, byte counter) names and per-plugin
        # claim counters, resolved once — the per-packet path must not
        # build strings.
        self._class_counters = {
            klass: (f"classify.class.{klass.value}", f"classify.bytes.{klass.value}")
            for plugin in self._plugins
            for klass in plugin.classes
        }
        self._class_counters.setdefault(
            ZoomClass.NOT_ZOOM,
            ("classify.class.not_zoom", "classify.bytes.not_zoom"),
        )
        self._claim_counters = {
            plugin.name: f"protocols.claimed.{plugin.name}" for plugin in self._plugins
        }
        self._multi = len(self._plugins) > 1

    @property
    def plugins(self) -> tuple["ProtocolPlugin", ...]:
        return self._plugins

    def process(self, ctx: PacketContext) -> bool:
        result = self._result
        parsed = ctx.parsed
        assert parsed is not None
        claimant = None
        claim_index = 0
        klass = None
        for index, plugin in enumerate(self._plugins):
            verdict = plugin.classify(parsed)
            if verdict is None:
                continue
            if verdict.claimed:
                claimant, claim_index, klass = plugin, index, verdict
                break
            if klass is None:
                # Remember the first explicit non-claiming verdict (Zoom's
                # NOT_ZOOM) so its telemetry class counter keeps ticking.
                klass = verdict
        if klass is None:
            klass = ZoomClass.NOT_ZOOM
        ctx.klass = klass
        tel = self._telemetry
        if tel.enabled:
            packet_counter, byte_counter = self._class_counters[klass]
            tel.count(packet_counter)
            tel.count(byte_counter, len(parsed.raw))
        if claimant is None:
            return False
        ctx.plugin = claimant
        ctx.protocol = claimant.name
        result.packets_zoom += 1
        if tel.enabled:
            tel.count(self._claim_counters[claimant.name])
            if self._multi:
                for other in self._plugins[claim_index + 1 :]:
                    if other.would_claim(parsed):
                        tel.count("protocols.conflicts")
        return claimant.on_claimed(ctx, result)

    # ------------------------------------------------------------ batch path

    def process_batch(self, bctx: BatchContext) -> PrefilterVerdict:
        """Run the compiled prefilter over one batch's header columns.

        The prefilter compiles the **union** of the enabled plugins'
        match-action rules, so dropped frames are provably unclaimed by
        every plugin on the scalar decision tree and provably touch no
        plugin state (see ``repro.net.batch``); their per-plugin and
        classify accounting is applied in bulk here with exactly the
        values the scalar path would have produced.  Survivors and hint
        frames come back as index lists for lazy materialization.
        """
        result = self._result
        assert bctx.columns is not None
        prefilter = self._prefilter
        if prefilter is None:
            prefilter = self._prefilter = BatchPrefilter.from_plugins(self._plugins)
        # Fold in endpoints learned outside the prefilter's own sniffing
        # (scalar-path feeds interleaved between batches, shard merges).
        for plugin in self._plugins:
            for tracker in plugin.stun_trackers:
                prefilter.sync_stun(tracker)
        verdict = prefilter.apply(bctx.batch, bctx.columns)
        if verdict.dropped:
            for plugin in self._plugins:
                plugin.account_unclaimed_batch(verdict.dropped)
            tel = self._telemetry
            if tel.enabled:
                packet_counter, byte_counter = self._class_counters[ZoomClass.NOT_ZOOM]
                tel.count(packet_counter, verdict.dropped)
                tel.count(byte_counter, verdict.dropped_bytes)
        return verdict
