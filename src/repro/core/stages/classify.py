"""Classify stage: Zoom traffic detection and non-media side channels.

Runs the §4.1 detector over every parsed packet and terminates the pipeline
for everything that is not a decodable media-class UDP packet: non-Zoom
traffic, the TCP 443 control connection (folded into the Method-2 RTT
estimators here), and STUN exchanges (which the detector itself uses to
learn P2P endpoints).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.detector import ZoomClass
from repro.core.metrics.latency import TCPRTTEstimator
from repro.core.stages.base import BatchContext, PacketContext
from repro.net.batch import BatchPrefilter, PrefilterVerdict
from repro.net.packet import ParsedPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult


# Per-class (packet counter, byte counter) names, resolved once — the
# per-packet path must not build strings.
_CLASS_COUNTERS = {
    klass: (f"classify.class.{klass.value}", f"classify.bytes.{klass.value}")
    for klass in ZoomClass
}


class ClassifyStage:
    """Detector classification plus the TLS/STUN early exits."""

    name = "classify"

    def __init__(self, result: "AnalysisResult", bus: "EventBus") -> None:
        self._result = result
        self._telemetry = result.telemetry
        self._prefilter: BatchPrefilter | None = None

    def process(self, ctx: PacketContext) -> bool:
        result = self._result
        parsed = ctx.parsed
        assert parsed is not None and result.detector is not None
        klass = result.detector.classify(parsed)
        ctx.klass = klass
        tel = self._telemetry
        if tel.enabled:
            packet_counter, byte_counter = _CLASS_COUNTERS[klass]
            tel.count(packet_counter)
            tel.count(byte_counter, len(parsed.raw))
        if not klass.is_zoom:
            return False
        result.packets_zoom += 1
        if klass is ZoomClass.SERVER_TLS:
            self._observe_tcp(parsed)
            return False
        if klass is ZoomClass.SERVER_STUN:
            result.stun_packets += 1
            return False
        if not klass.is_media or not parsed.is_udp:
            return False
        ctx.five_tuple = parsed.five_tuple
        return ctx.five_tuple is not None

    # ------------------------------------------------------------ batch path

    def process_batch(self, bctx: BatchContext) -> PrefilterVerdict:
        """Run the compiled prefilter over one batch's header columns.

        Dropped frames are provably NOT_ZOOM on the scalar decision tree
        and provably touch no detector state (see ``repro.net.batch``), so
        their detector/classify accounting is applied in bulk here with
        exactly the values the scalar path would have produced; survivors
        and hint frames come back as index lists for lazy materialization.
        """
        result = self._result
        detector = result.detector
        assert detector is not None and bctx.columns is not None
        prefilter = self._prefilter
        if prefilter is None:
            prefilter = self._prefilter = BatchPrefilter.from_matcher(detector.matcher)
        # Fold in endpoints learned outside the prefilter's own sniffing
        # (scalar-path feeds interleaved between batches, shard merges).
        prefilter.sync_stun(detector.stun)
        verdict = prefilter.apply(bctx.batch, bctx.columns)
        if verdict.dropped:
            detector.counters.add(ZoomClass.NOT_ZOOM, verdict.dropped)
            tel = self._telemetry
            if tel.enabled:
                packet_counter, byte_counter = _CLASS_COUNTERS[ZoomClass.NOT_ZOOM]
                tel.count(packet_counter, verdict.dropped)
                tel.count(byte_counter, verdict.dropped_bytes)
        return verdict

    def _observe_tcp(self, parsed: ParsedPacket) -> None:
        result = self._result
        assert result.detector is not None
        src_is_zoom = result.detector.matcher.matches(parsed.src_ip)
        if src_is_zoom:
            client_ip, server_ip = parsed.dst_ip, parsed.src_ip
        else:
            client_ip, server_ip = parsed.src_ip, parsed.dst_ip
        if client_ip is None or server_ip is None:
            return
        key = (client_ip, server_ip)
        estimator = result.tcp_rtt.get(key)
        if estimator is None:
            estimator = result.tcp_rtt[key] = TCPRTTEstimator(client_ip, server_ip)
        estimator.observe(parsed)
