"""Demux stage: claimed media payloads → normalized RTP records.

Dispatches each media-class packet to the plugin that claimed it in the
classify stage; the plugin's :meth:`~repro.protocols.base.ProtocolPlugin.
dissect` decodes the payload (Zoom's proprietary SFU/media encapsulations
of §4.2, or plain RFC 3550 RTP/RTCP for the generic plugin), maintains the
Table-2/Table-3 counters, routes RTCP reports to the bus, and emits the
:class:`~repro.core.streams.RTPPacketRecord` the assembly and metrics
stages consume.

The class keeps its historical name and ``"zoom-demux"`` stage name: the
``pipeline.stop.zoom-demux`` counter is pinned by the golden snapshots, and
with the default registry the dispatch *is* the Zoom demux.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.events import FlowBytesObserved
from repro.core.stages.base import PacketContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult
    from repro.protocols.base import ProtocolPlugin


class ZoomDemuxStage:
    """From claimed media-class UDP payloads to decoded RTP packet records."""

    name = "zoom-demux"

    def __init__(
        self,
        result: "AnalysisResult",
        bus: "EventBus",
        plugins: Sequence["ProtocolPlugin"] = (),
    ) -> None:
        self._result = result
        self._bus = bus
        self._telemetry = result.telemetry
        self._media_counters = {
            plugin.name: f"protocols.media.{plugin.name}" for plugin in plugins
        }

    def process(self, ctx: PacketContext) -> bool:
        parsed = ctx.parsed
        plugin = ctx.plugin
        assert parsed is not None and ctx.five_tuple is not None
        assert plugin is not None
        tel = self._telemetry
        if tel.enabled:
            tel.count("demux.media_class_packets")
        self._bus.emit(
            FlowBytesObserved(
                timestamp=parsed.timestamp,
                five_tuple=ctx.five_tuple,
                payload_len=len(parsed.payload),
            )
        )
        advanced = plugin.dissect(ctx, self._result, self._bus, tel)
        if advanced and tel.enabled:
            counter = self._media_counters.get(plugin.name)
            if counter is None:
                counter = self._media_counters[plugin.name] = (
                    f"protocols.media.{plugin.name}"
                )
            tel.count(counter)
        return advanced
