"""Zoom demux stage: proprietary payload decode → normalized RTP records.

Decodes the Zoom SFU/media encapsulations (§4.2), maintains the Table-2 and
Table-3 counters, routes RTCP reports to the bus, resolves the packet's
direction relative to the SFU, and emits the :class:`RTPPacketRecord` that
the assembly and metrics stages consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.detector import ZoomClass
from repro.core.events import FlowBytesObserved, RTCPObserved
from repro.core.stages.base import PacketContext
from repro.core.streams import RTPPacketRecord
from repro.zoom.constants import ENCAP_OTHER, SERVER_MEDIA_PORT
from repro.zoom.packets import parse_zoom_payload
from repro.zoom.sfu_encap import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult


class ZoomDemuxStage:
    """From media-class UDP payloads to decoded RTP packet records."""

    name = "zoom-demux"

    def __init__(self, result: "AnalysisResult", bus: "EventBus") -> None:
        self._result = result
        self._bus = bus
        self._telemetry = result.telemetry

    def process(self, ctx: PacketContext) -> bool:
        result = self._result
        parsed = ctx.parsed
        assert parsed is not None and ctx.five_tuple is not None
        tel = self._telemetry
        if tel.enabled:
            tel.count("demux.media_class_packets")
        self._bus.emit(
            FlowBytesObserved(
                timestamp=parsed.timestamp,
                five_tuple=ctx.five_tuple,
                payload_len=len(parsed.payload),
            )
        )
        from_server = ctx.klass is ZoomClass.SERVER_MEDIA
        zoom = parse_zoom_payload(parsed.payload, from_server=from_server)
        ctx.zoom = zoom
        if zoom.media is None or not (zoom.is_media or zoom.is_rtcp):
            result.undecoded_packets += 1
            result.encap_packets[ENCAP_OTHER] += 1
            result.encap_bytes[ENCAP_OTHER] += len(parsed.payload)
            tel.count("demux.undecoded")
            return False
        media_type = zoom.media.media_type
        result.encap_packets[media_type] += 1
        result.encap_bytes[media_type] += len(parsed.payload)
        if zoom.is_rtcp:
            tel.count("demux.rtcp")
            self._observe_rtcp(zoom, parsed.timestamp)
            return False
        assert zoom.rtp is not None
        to_server: bool | None
        if zoom.is_p2p:
            to_server = None
        elif zoom.sfu is not None and zoom.sfu.direction == Direction.FROM_SFU:
            to_server = False
        elif zoom.sfu is not None and zoom.sfu.direction == Direction.TO_SFU:
            to_server = True
        else:
            # Fall back on the well-known server port.
            to_server = parsed.dst_port == SERVER_MEDIA_PORT
        record = RTPPacketRecord(
            timestamp=parsed.timestamp,
            five_tuple=ctx.five_tuple,
            ssrc=zoom.rtp.ssrc,
            payload_type=zoom.rtp.payload_type,
            sequence=zoom.rtp.sequence,
            rtp_timestamp=zoom.rtp.timestamp,
            marker=zoom.rtp.marker,
            media_type=media_type,
            payload_len=len(zoom.rtp_payload),
            udp_payload_len=len(parsed.payload),
            frame_sequence=zoom.media.frame_sequence,
            packets_in_frame=zoom.media.packets_in_frame,
            is_p2p=zoom.is_p2p,
            to_server=to_server,
        )
        result.payload_type_packets[(media_type, record.payload_type)] += 1
        result.payload_type_bytes[(media_type, record.payload_type)] += record.payload_len
        ctx.record = record
        return True

    def _observe_rtcp(self, zoom, timestamp: float) -> None:
        from repro.rtp.rtcp import RTCPReceiverReport, RTCPSdes, RTCPSenderReport

        result = self._result
        for report in zoom.rtcp:
            if isinstance(report, RTCPSenderReport):
                result.rtcp_sender_reports += 1
            elif isinstance(report, RTCPSdes):
                if report.is_empty:
                    result.rtcp_sdes_empty += 1
            elif isinstance(report, RTCPReceiverReport):
                result.rtcp_receiver_reports += 1
                self._telemetry.count("demux.rtcp_receiver_reports")
            self._bus.emit(RTCPObserved(timestamp=timestamp, report=report))
