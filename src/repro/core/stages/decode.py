"""Decode stage: raw frame bytes → :class:`ParsedPacket`, plus input totals."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stages.base import BatchContext, PacketContext
from repro.net.batch import decode_columns
from repro.net.packet import parse_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult
    from repro.net.batch import PrefilterVerdict


class DecodeStage:
    """Parse the Ethernet/IP/transport layers and count every input packet.

    Packets that entered the pipeline already parsed (``feed_parsed``) skip
    the frame decode but are still counted here, so ``packets_total`` and
    ``bytes_total`` mean the same thing on either entry point.
    """

    name = "decode"

    def __init__(self, result: "AnalysisResult", bus: "EventBus") -> None:
        self._result = result
        self._telemetry = result.telemetry

    def process(self, ctx: PacketContext) -> bool:
        if ctx.parsed is None:
            assert ctx.captured is not None, "decode needs a raw or parsed frame"
            ctx.parsed = parse_frame(ctx.captured.data, ctx.captured.timestamp)
        self._result.packets_total += 1
        self._result.bytes_total += len(ctx.parsed.raw)
        tel = self._telemetry
        if tel.enabled and ctx.parsed.ethernet is None:
            tel.count("decode.parse_failures")
        return True

    # ------------------------------------------------------------ batch path

    def process_batch(self, bctx: BatchContext) -> None:
        """Columnar header slicing for a whole batch; no per-frame objects."""
        bctx.columns = decode_columns(bctx.batch)

    def account_dropped(self, verdict: "PrefilterVerdict") -> None:
        """Bulk accounting for prefilter-dropped frames.

        Surviving frames are materialized and run through :meth:`process`
        individually, so only the dropped ones need their ``packets_total``
        / ``bytes_total`` / parse-failure contributions added here — with
        exactly the values the scalar path would have recorded.  (Every
        frame the columnar decoder marks Ethernet-less is dropped by the
        prefilter, so the parse-failure count needs no survivor half.)
        """
        self._result.packets_total += verdict.dropped
        self._result.bytes_total += verdict.dropped_bytes
        if verdict.parse_failures:
            tel = self._telemetry
            if tel.enabled:
                tel.count("decode.parse_failures", verdict.parse_failures)
