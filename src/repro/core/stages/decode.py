"""Decode stage: raw frame bytes → :class:`ParsedPacket`, plus input totals."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stages.base import PacketContext
from repro.net.packet import parse_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult


class DecodeStage:
    """Parse the Ethernet/IP/transport layers and count every input packet.

    Packets that entered the pipeline already parsed (``feed_parsed``) skip
    the frame decode but are still counted here, so ``packets_total`` and
    ``bytes_total`` mean the same thing on either entry point.
    """

    name = "decode"

    def __init__(self, result: "AnalysisResult", bus: "EventBus") -> None:
        self._result = result
        self._telemetry = result.telemetry

    def process(self, ctx: PacketContext) -> bool:
        if ctx.parsed is None:
            assert ctx.captured is not None, "decode needs a raw or parsed frame"
            ctx.parsed = parse_frame(ctx.captured.data, ctx.captured.timestamp)
        self._result.packets_total += 1
        self._result.bytes_total += len(ctx.parsed.raw)
        tel = self._telemetry
        if tel.enabled and ctx.parsed.ethernet is None:
            tel.count("decode.parse_failures")
        return True
