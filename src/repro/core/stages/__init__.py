"""The staged analyzer pipeline (the paper's Figure 6, one stage per box).

:class:`~repro.core.pipeline.ZoomAnalyzer` composes these stages in order:

1. :class:`DecodeStage` — raw frame → :class:`ParsedPacket`, input totals;
2. :class:`ClassifyStage` — §4.1 Zoom detection, TLS-RTT and STUN side exits;
3. :class:`ZoomDemuxStage` — §4.2 proprietary decode, Table-2/3 counters,
   RTCP routing, direction resolution → :class:`RTPPacketRecord`;
4. :class:`AssembleStage` — stream table + §4.3 meeting grouping, lifecycle
   events;
5. :class:`MetricsStage` — §5 per-stream estimators and latency matching.

Each stage implements the tiny :class:`Stage` protocol over a shared
:class:`PacketContext`; custom pipelines can insert, replace, or remove
stages without touching the others.
"""

from repro.core.stages.assemble import AssembleStage
from repro.core.stages.base import BatchContext, PacketContext, Stage
from repro.core.stages.classify import ClassifyStage
from repro.core.stages.decode import DecodeStage
from repro.core.stages.demux import ZoomDemuxStage
from repro.core.stages.metrics import MetricsStage

__all__ = [
    "AssembleStage",
    "BatchContext",
    "ClassifyStage",
    "DecodeStage",
    "MetricsStage",
    "PacketContext",
    "Stage",
    "ZoomDemuxStage",
]
