"""Metrics stage: per-stream §5 estimators and cross-stream latency matching.

Creates the :class:`~repro.core.pipeline.StreamMetrics` bundle lazily per
stream key (so an evicted stream that resumes gets a fresh bundle) and
routes every record through it plus the Method-1 latency matcher.  The
1-second bitrate binning is *not* here: it subscribes to the event bus as
:class:`~repro.core.metrics.bitrate.BitrateSink`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stages.base import PacketContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult


class MetricsStage:
    """Per-stream metric estimation (§5)."""

    name = "metrics"

    def __init__(self, result: "AnalysisResult", bus: "EventBus") -> None:
        self._result = result
        # Deferred import: repro.core.pipeline imports this module at its top.
        from repro.core.pipeline import StreamMetrics

        self._metrics_factory = StreamMetrics.for_media_type

    def process(self, ctx: PacketContext) -> bool:
        result = self._result
        record = ctx.record
        assert record is not None
        key = record.stream_key
        metrics = result.stream_metrics.get(key)
        if metrics is None:
            metrics = result.stream_metrics[key] = self._metrics_factory(
                record.media_type
            )
        metrics.observe(record)
        result.rtp_latency.observe(record)
        return True
