"""The stage protocol and the per-packet context that flows through it.

One :class:`PacketContext` is created per captured frame and handed to each
stage in order.  A stage reads the fields earlier stages filled in, adds its
own, and returns ``True`` to pass the packet on or ``False`` to stop the
pipeline for this packet (not-Zoom traffic, control packets, undecodable
payloads — every early exit of the old monolithic ``feed_parsed``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.net.packet import CapturedPacket, FiveTuple, ParsedPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.streams import MediaStream, RTPPacketRecord
    from repro.net.batch import FrameBatch, HeaderColumns
    from repro.protocols.base import ProtocolClass, ProtocolPlugin
    from repro.zoom.packets import ZoomPacket


@dataclass
class PacketContext:
    """Mutable per-packet state shared by the stages.

    Attributes (filled in as the packet advances):
        captured: The raw frame, when the packet entered via ``feed``.
        parsed: L2–L4 decode (decode stage).
        klass: Protocol classification — a member of the claiming plugin's
            class enum, e.g. ``ZoomClass`` or ``RtpClass`` (classify stage).
        plugin: The plugin that claimed the packet (classify stage).
        protocol: The claimant's registry name (classify stage).
        five_tuple: Flow key of a media-class UDP packet (classify stage).
        zoom: Decoded Zoom payload (demux stage, Zoom plugin only).
        record: Normalized RTP packet record (demux stage).
        stream: The media stream the record belongs to (assembly stage).
        stream_is_new: Whether assembly created the stream for this packet.
    """

    captured: CapturedPacket | None = None
    parsed: ParsedPacket | None = None
    klass: "ProtocolClass | None" = None
    plugin: "ProtocolPlugin | None" = None
    protocol: str | None = None
    five_tuple: FiveTuple | None = None
    zoom: "ZoomPacket | None" = None
    record: "RTPPacketRecord | None" = None
    stream: "MediaStream | None" = None
    stream_is_new: bool = False


@dataclass
class BatchContext:
    """Per-batch state for the vectorized fast path.

    One is created per :class:`~repro.net.batch.FrameBatch`; the decode
    stage fills in the columnar header slices, the classify stage runs the
    compiled prefilter over them.  Only the indices surviving the prefilter
    are materialized into :class:`PacketContext`s and fed through the
    ordinary scalar stages.
    """

    batch: "FrameBatch"
    columns: "HeaderColumns | None" = None


@runtime_checkable
class Stage(Protocol):
    """One step of the analyzer pipeline.

    Stages are constructed with references to the shared
    :class:`~repro.core.pipeline.AnalysisResult` and
    :class:`~repro.core.events.EventBus` and keep whatever per-run state
    they need (the assembly stage's known-stream set, for example).
    """

    name: str

    def process(self, ctx: PacketContext) -> bool:
        """Advance one packet; ``False`` stops the pipeline for it."""
        ...
