"""Assembly stage: packet records → streams and meetings, with lifecycle events.

Routes each record into the stream table, runs the §4.3 grouping heuristic
at stream-open time, and publishes :class:`StreamOpened`,
:class:`StreamUpdated`, and :class:`MeetingFormed` events.  The known-stream
set lives here — eviction goes through
:meth:`repro.core.pipeline.ZoomAnalyzer.evict_stream`, never by poking this
state from outside.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.events import MeetingFormed, StreamOpened, StreamUpdated
from repro.core.stages.base import PacketContext
from repro.core.streams import StreamKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus
    from repro.core.pipeline import AnalysisResult


class AssembleStage:
    """Stream-table and meeting-grouper maintenance."""

    name = "assemble"

    def __init__(self, result: "AnalysisResult", bus: "EventBus") -> None:
        self._result = result
        self._bus = bus
        self._telemetry = result.telemetry
        self._known_streams: set[StreamKey] = set()
        self._known_meetings: set[int] = set()

    def process(self, ctx: PacketContext) -> bool:
        result = self._result
        record = ctx.record
        assert record is not None
        stream = result.streams.observe(record)
        ctx.stream = stream
        key = record.stream_key
        if key not in self._known_streams:
            self._known_streams.add(key)
            ctx.stream_is_new = True
            self._telemetry.count("assemble.stream_opened")
            meeting_id = result.grouper.observe_new_stream(stream, result.streams)
            if meeting_id not in self._known_meetings:
                self._known_meetings.add(meeting_id)
                self._telemetry.count("assemble.meetings_formed")
                meeting = result.grouper.meeting_of(key)
                if meeting is not None:
                    self._bus.emit(
                        MeetingFormed(timestamp=record.timestamp, meeting=meeting)
                    )
            self._bus.emit(
                StreamOpened(timestamp=record.timestamp, stream=stream, record=record)
            )
        else:
            result.grouper.observe_stream_update(stream)
            self._bus.emit(
                StreamUpdated(timestamp=record.timestamp, stream=stream, record=record)
            )
        return True

    def forget(self, key: StreamKey) -> bool:
        """Drop a stream from the known set (eviction support); returns
        whether it was known.  The next packet with this key reopens the
        stream as new."""
        if key in self._known_streams:
            self._known_streams.discard(key)
            return True
        return False

    def known_stream_count(self) -> int:
        return len(self._known_streams)
