"""Performance-metric estimators (§5, Table 4).

Each estimator consumes :class:`repro.core.streams.RTPPacketRecord` objects
in capture order and produces time series:

========================  =====================================  =========
Metric                    Module                                 Paper
========================  =====================================  =========
flow / media bit rate     :mod:`repro.core.metrics.bitrate`      §5.1
frame assembly            :mod:`repro.core.metrics.frames`       §5.2
frame rate (2 methods)    :mod:`repro.core.metrics.framerate`    §5.2
frame size                :mod:`repro.core.metrics.framesize`    §5.2
latency (RTP + TCP)       :mod:`repro.core.metrics.latency`      §5.3
frame-level jitter        :mod:`repro.core.metrics.jitter`       §5.4
loss / retransmissions    :mod:`repro.core.metrics.loss`         §5.5
frame delay               :mod:`repro.core.metrics.frame_delay`  §5.5
stall detection           :mod:`repro.core.metrics.stalls`       §5.5 (future work)
RTCP clock sync / A-V skew :mod:`repro.core.metrics.sync`        §4.2.3
1-second binning          :mod:`repro.core.metrics.binning`      §6.2
========================  =====================================  =========
"""

from repro.core.metrics.binning import TimeBinner
from repro.core.metrics.bitrate import BitrateMeter
from repro.core.metrics.frame_delay import FrameDelayAnalyzer
from repro.core.metrics.framerate import FrameRateMethod1, FrameRateMethod2
from repro.core.metrics.frames import CompletedFrame, FrameAssembler
from repro.core.metrics.framesize import FrameSizeCollector
from repro.core.metrics.jitter import FrameJitterEstimator
from repro.core.metrics.latency import RTPLatencyMatcher, TCPRTTEstimator
from repro.core.metrics.loss import SequenceTracker
from repro.core.metrics.stalls import StallDetector, StallEvent, detect_stalls
from repro.core.metrics.sync import ClockMapping, SenderReportCollector

__all__ = [
    "ClockMapping",
    "SenderReportCollector",
    "StallDetector",
    "StallEvent",
    "detect_stalls",
    "BitrateMeter",
    "CompletedFrame",
    "FrameAssembler",
    "FrameDelayAnalyzer",
    "FrameJitterEstimator",
    "FrameRateMethod1",
    "FrameRateMethod2",
    "FrameSizeCollector",
    "RTPLatencyMatcher",
    "SequenceTracker",
    "TCPRTTEstimator",
    "TimeBinner",
]
