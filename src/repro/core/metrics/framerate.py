"""Frame-rate estimation, both methods of §5.2.

**Method 1 — delivered rate.**  Keep the frames *completely delivered*
within the trailing one second in a circular buffer; the buffer occupancy is
the current frame rate.  This measures what actually crossed the network.

**Method 2 — encoder rate.**  The RTP timestamp increment between
consecutive frames, divided into the stream's sampling rate (90 kHz for
Zoom video), is the rate the *encoder* is currently producing.  Under
congestion the two diverge until the encoder adapts, which the paper uses as
a network-problem indicator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.metrics.frames import CompletedFrame
from repro.zoom.constants import VIDEO_SAMPLING_RATE

RTP_TIMESTAMP_MODULUS = 1 << 32


@dataclass(frozen=True, slots=True)
class FrameRateSample:
    """One frame-rate observation.

    Attributes:
        time: When the observation was made (completion of a frame).
        fps: The estimated frame rate.
    """

    time: float
    fps: float


class FrameRateMethod1:
    """Delivered frame rate via a one-second circular buffer of completions.

    Feed every :class:`CompletedFrame`; read the current rate at any time
    with :meth:`rate_at`, or collect the per-completion sample series.
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._completions: deque[float] = deque()
        self.samples: list[FrameRateSample] = []

    def observe(self, frame: CompletedFrame) -> FrameRateSample:
        """Fold in one completed frame; returns the updated rate sample."""
        now = frame.completed_time
        self._completions.append(now)
        self._expire(now)
        sample = FrameRateSample(time=now, fps=len(self._completions) / self.window)
        self.samples.append(sample)
        return sample

    def rate_at(self, now: float) -> float:
        """The delivered frame rate at an arbitrary instant."""
        self._expire(now)
        return len(self._completions) / self.window

    def _expire(self, now: float) -> None:
        while self._completions and self._completions[0] < now - self.window:
            self._completions.popleft()


class FrameRateMethod2:
    """Encoder frame rate from RTP-timestamp increments.

    ``fps = sampling_rate / ΔRTP`` between consecutive frames; the
    packetization time is its reciprocal (§5.2).  Frames must be fed in
    media order (frame completion order is fine for Zoom streams because
    retransmission preserves frame ordering at completion granularity).
    """

    def __init__(self, sampling_rate: int = VIDEO_SAMPLING_RATE) -> None:
        if sampling_rate <= 0:
            raise ValueError("sampling rate must be positive")
        self.sampling_rate = sampling_rate
        self._last_timestamp: int | None = None
        self.samples: list[FrameRateSample] = []

    def observe(self, frame: CompletedFrame) -> FrameRateSample | None:
        """Fold in one frame; returns an encoder-rate sample from the second
        frame onward."""
        timestamp = frame.rtp_timestamp
        if self._last_timestamp is None:
            self._last_timestamp = timestamp
            return None
        increment = (timestamp - self._last_timestamp) % RTP_TIMESTAMP_MODULUS
        self._last_timestamp = timestamp
        if increment == 0 or increment >= RTP_TIMESTAMP_MODULUS // 2:
            # Duplicate or out-of-order frame timestamp; not a rate sample.
            return None
        sample = FrameRateSample(
            time=frame.completed_time, fps=self.sampling_rate / increment
        )
        self.samples.append(sample)
        return sample

    def packetization_time(self) -> float | None:
        """The most recent packetization interval in seconds (1/fps)."""
        if not self.samples:
            return None
        return 1.0 / self.samples[-1].fps


def infer_sampling_rate(
    rtp_increments: list[int],
    frame_intervals: list[float],
    candidates: tuple[int, ...] = (8_000, 16_000, 48_000, 90_000),
) -> int | None:
    """The parameter sweep the paper used to find Zoom's 90 kHz video clock.

    Given matched lists of RTP-timestamp increments and wall-clock frame
    intervals, pick the candidate rate whose implied intervals best match
    the observed ones (§5.2, Method 2).
    """
    if len(rtp_increments) != len(frame_intervals) or not rtp_increments:
        return None
    best_rate: int | None = None
    best_error = float("inf")
    for rate in candidates:
        error = 0.0
        for increment, interval in zip(rtp_increments, frame_intervals):
            if interval <= 0:
                continue
            error += abs(increment / rate - interval)
        if error < best_error:
            best_error = error
            best_rate = rate
    return best_rate
