"""Frame assembly: reconstructing media frames from their packets (§5.2).

Zoom's media encapsulation tells us, for every video/screen-share packet,
how many packets the current frame consists of (the ``packets_in_frame``
field, Table 1).  A frame is *complete* once that many **distinct** RTP
sequence numbers with the same RTP timestamp have been seen on the main
substream — duplicates from retransmissions do not count twice, FEC packets
(payload type 110) are excluded because they share timestamps but live in
their own sequence space (§4.2.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.streams import RTPPacketRecord
from repro.zoom.constants import RTPPayloadType


@dataclass(frozen=True, slots=True)
class CompletedFrame:
    """One fully delivered media frame.

    Attributes:
        rtp_timestamp: The frame's RTP timestamp.
        frame_sequence: Zoom's per-stream frame counter.
        expected_packets: The ``packets_in_frame`` header field.
        first_time / completed_time: Capture times of the first and last
            packet of the frame; their difference is the *frame delay*.
        payload_bytes: Sum of the packets' RTP payload sizes — the exact
            frame size of §5.2.
        duplicates: Packets seen more than once while assembling (a
            retransmission indicator).
    """

    rtp_timestamp: int
    frame_sequence: int
    expected_packets: int
    first_time: float
    completed_time: float
    payload_bytes: int
    duplicates: int = 0

    @property
    def delay(self) -> float:
        """Delivery time from first to last packet of the frame (§5.5)."""
        return self.completed_time - self.first_time


@dataclass
class _PendingFrame:
    expected: int
    first_time: float
    frame_sequence: int
    sequences: set[int] = field(default_factory=set)
    payload_bytes: int = 0
    duplicates: int = 0


class FrameAssembler:
    """Per-stream frame reconstruction from main-substream packets.

    Feed packets with :meth:`observe`; completed frames come back as
    :class:`CompletedFrame` records, in completion order.  Frames that never
    complete (tail loss) remain pending and can be drained for inspection
    with :meth:`pending`.

    Args:
        fec_payload_type: The payload type to exclude from assembly.
        max_pending: Abandon the oldest pending frames beyond this count
            (protects memory on lossy streams).
    """

    def __init__(
        self,
        *,
        fec_payload_type: int = int(RTPPayloadType.FEC),
        max_pending: int = 64,
    ) -> None:
        self._fec_payload_type = fec_payload_type
        self._max_pending = max_pending
        self._pending: dict[int, _PendingFrame] = {}
        self._recently_completed: OrderedDict[int, None] = OrderedDict()
        self.completed_count = 0
        self.abandoned_count = 0
        self.late_duplicates = 0

    def observe(self, record: RTPPacketRecord) -> CompletedFrame | None:
        """Fold one packet in; returns the frame it completed, if any."""
        if record.payload_type == self._fec_payload_type:
            return None
        if record.packets_in_frame <= 0:
            return None
        if record.rtp_timestamp in self._recently_completed:
            # A retransmitted copy arriving after its frame completed must
            # not re-open (and re-count) the frame.
            self.late_duplicates += 1
            return None
        pending = self._pending.get(record.rtp_timestamp)
        if pending is None:
            pending = self._pending[record.rtp_timestamp] = _PendingFrame(
                expected=record.packets_in_frame,
                first_time=record.timestamp,
                frame_sequence=record.frame_sequence,
            )
            self._evict_if_needed()
        if record.sequence in pending.sequences:
            pending.duplicates += 1
            return None
        pending.sequences.add(record.sequence)
        pending.payload_bytes += record.payload_len
        if len(pending.sequences) < pending.expected:
            return None
        del self._pending[record.rtp_timestamp]
        self._recently_completed[record.rtp_timestamp] = None
        while len(self._recently_completed) > 256:
            self._recently_completed.popitem(last=False)
        self.completed_count += 1
        return CompletedFrame(
            rtp_timestamp=record.rtp_timestamp,
            frame_sequence=pending.frame_sequence,
            expected_packets=pending.expected,
            first_time=pending.first_time,
            completed_time=record.timestamp,
            payload_bytes=pending.payload_bytes,
            duplicates=pending.duplicates,
        )

    def pending(self) -> list[tuple[int, int, int]]:
        """(rtp_timestamp, packets seen, packets expected) per open frame."""
        return [
            (timestamp, len(frame.sequences), frame.expected)
            for timestamp, frame in self._pending.items()
        ]

    def _evict_if_needed(self) -> None:
        while len(self._pending) > self._max_pending:
            oldest = min(self._pending, key=lambda ts: self._pending[ts].first_time)
            del self._pending[oldest]
            self.abandoned_count += 1
