"""Fixed-width time binning used by the §6.2 campus analysis.

The paper computes every per-stream metric in one-second bins (≈33 million
data points over the 12-hour trace).  :class:`TimeBinner` is the shared
accumulator: feed (time, value) points, read back per-bin sums, counts, or
means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class _Bin:
    total: float = 0.0
    count: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class TimeBinner:
    """Accumulates scalar samples into fixed-width time bins.

    Bins are indexed by ``floor(time / width)``; they are created lazily so
    sparse traces stay cheap.
    """

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError("bin width must be positive")
        self.width = width
        self._bins: dict[int, _Bin] = {}

    def add(self, time: float, value: float = 1.0) -> None:
        """Add one sample at ``time``."""
        slot = self._bins.setdefault(int(time // self.width), _Bin())
        slot.total += value
        slot.count += 1

    def __len__(self) -> int:
        return len(self._bins)

    @property
    def span(self) -> tuple[int, int] | None:
        """(first, last) occupied bin index, or ``None`` when empty."""
        if not self._bins:
            return None
        return min(self._bins), max(self._bins)

    def sums(self, *, fill_gaps: bool = True) -> list[tuple[float, float]]:
        """Per-bin (bin start time, sum) in time order.

        With ``fill_gaps`` empty bins between the first and last occupied
        bin are reported as zero — a stream that sent nothing for a second
        really had zero throughput that second.
        """
        return self._series(lambda b: b.total, 0.0, fill_gaps)

    def counts(self, *, fill_gaps: bool = True) -> list[tuple[float, int]]:
        """Per-bin (bin start time, sample count)."""
        return self._series(lambda b: b.count, 0, fill_gaps)

    def means(self, *, fill_gaps: bool = False) -> list[tuple[float, float]]:
        """Per-bin (bin start time, mean value); gap bins are NaN if filled."""
        return self._series(lambda b: b.mean, math.nan, fill_gaps)

    def rates(self, *, fill_gaps: bool = True) -> list[tuple[float, float]]:
        """Per-bin (bin start time, sum / width) — e.g. bytes/s from bytes."""
        return [
            (time, total / self.width) for time, total in self.sums(fill_gaps=fill_gaps)
        ]

    def _series(self, extract, empty_value, fill_gaps: bool) -> list:
        if not self._bins:
            return []
        if not fill_gaps:
            return [
                (index * self.width, extract(self._bins[index]))
                for index in sorted(self._bins)
            ]
        first, last = self.span  # type: ignore[misc]
        out = []
        for index in range(first, last + 1):
            slot = self._bins.get(index)
            out.append(
                (index * self.width, extract(slot) if slot is not None else empty_value)
            )
        return out

    def values(self) -> list[float]:
        """All per-bin sums, unordered by need (for CDFs)."""
        return [slot.total for slot in self._bins.values()]

    def merge_from(self, other: "TimeBinner") -> None:
        """Fold another binner's bins into this one (sharded-result merge).

        Bin widths must match — shard analyzers are constructed identically,
        so a mismatch means the caller mixed unrelated binners.
        """
        if other.width != self.width:
            raise ValueError(
                f"cannot merge binners of width {other.width} into {self.width}"
            )
        for index, slot in other._bins.items():
            mine = self._bins.setdefault(index, _Bin())
            mine.total += slot.total
            mine.count += slot.count
