"""Frame delay and stall-risk analysis (§5.5).

*Frame delay* is the time from a frame's first packet to its completion.
Because a frame's packets leave the sender back-to-back, elevated frame
delay (≈ RTT + Zoom's ~100 ms retransmission timeout) is a strong signal
that a retransmission was needed to complete the frame — even when the
original loss happened upstream of the monitor and left no duplicate.

Comparing frame delay against the *packetization time* (the media time the
frame covers) indicates jitter-buffer drain: when delivery persistently
takes longer than playback consumes, the receiver's buffer empties and the
video stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics.frames import CompletedFrame
from repro.zoom.constants import RETRANSMIT_TIMEOUT, VIDEO_SAMPLING_RATE

RTP_TIMESTAMP_MODULUS = 1 << 32


@dataclass(frozen=True, slots=True)
class FrameDelaySample:
    """One frame-delay observation.

    Attributes:
        time: Frame completion time.
        delay: First-packet-to-completion time (s).
        packetization_time: Media time this frame covers (s), NaN for the
            first frame of a stream.
        retransmission_suspected: Delay exceeded the retransmission-timeout
            threshold (§5.5's heuristic).
        buffer_debt: Running sum of (delay − packetization_time); growth
            over consecutive frames predicts a stall.
    """

    time: float
    delay: float
    packetization_time: float
    retransmission_suspected: bool
    buffer_debt: float


class FrameDelayAnalyzer:
    """Per-stream frame-delay and stall-risk tracking.

    Args:
        sampling_rate: RTP clock of the stream (90 kHz for Zoom video).
        rtt_hint: Current RTT estimate used in the retransmission heuristic;
            callers may update :attr:`rtt_hint` as latency samples arrive.
    """

    def __init__(
        self, sampling_rate: int = VIDEO_SAMPLING_RATE, *, rtt_hint: float = 0.03
    ) -> None:
        self.sampling_rate = sampling_rate
        self.rtt_hint = rtt_hint
        self.samples: list[FrameDelaySample] = []
        self._last_timestamp: int | None = None
        self._buffer_debt = 0.0
        self.suspected_retransmissions = 0

    def observe(self, frame: CompletedFrame) -> FrameDelaySample:
        """Fold in one completed frame."""
        if self._last_timestamp is None:
            packetization = float("nan")
        else:
            increment = (frame.rtp_timestamp - self._last_timestamp) % RTP_TIMESTAMP_MODULUS
            if increment >= RTP_TIMESTAMP_MODULUS // 2:
                packetization = float("nan")
            else:
                packetization = increment / self.sampling_rate
        self._last_timestamp = frame.rtp_timestamp
        threshold = self.rtt_hint + RETRANSMIT_TIMEOUT * 0.8
        suspected = frame.delay > threshold or frame.duplicates > 0
        if suspected:
            self.suspected_retransmissions += 1
        if packetization == packetization:  # not NaN
            self._buffer_debt = max(0.0, self._buffer_debt + frame.delay - packetization)
        sample = FrameDelaySample(
            time=frame.completed_time,
            delay=frame.delay,
            packetization_time=packetization,
            retransmission_suspected=suspected,
            buffer_debt=self._buffer_debt,
        )
        self.samples.append(sample)
        return sample

    @property
    def stall_risk(self) -> bool:
        """True when accumulated delivery debt exceeds a typical jitter
        buffer (~200 ms): the stream is about to stall (§5.5)."""
        return self._buffer_debt > 0.2
