"""Stall detection from frame delay vs packetization time (§5.5).

The paper observes that "if the delay is larger than the packetization time
over the course of several frames, the jitter buffer gets drained and the
video will eventually stall", and leaves "the detection and deeper analysis
of audio and video stalls ... for future work".  This module is that future
work: a receiver-jitter-buffer model driven purely by monitor-side frame
timings, producing discrete stall events with start, duration, and cause.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.metrics.frame_delay import FrameDelaySample


@dataclass(frozen=True, slots=True)
class StallEvent:
    """One predicted playback stall.

    Attributes:
        start: When the modeled jitter buffer ran dry (capture clock).
        duration: How long playback starved before the buffer refilled.
        frames_late: Frames delivered while the buffer was dry.
        max_debt: Peak delivery debt (s) during the event.
    """

    start: float
    duration: float
    frames_late: int
    max_debt: float


@dataclass
class StallDetector:
    """Jitter-buffer simulation over a stream's frame-delay samples.

    The receiver is modeled with a playout buffer of ``buffer_depth``
    seconds: each frame adds its packetization time of playable media and
    consumes real time equal to its delivery delay.  When cumulative
    delivery debt exceeds the buffer depth, playback stalls until the debt
    drains below ``refill_fraction`` of the depth.

    Attributes:
        buffer_depth: Playout buffer in seconds (Zoom-like default 200 ms).
        refill_fraction: Hysteresis: the stall ends once debt falls below
            this fraction of the buffer.
    """

    buffer_depth: float = 0.200
    refill_fraction: float = 0.5
    events: list[StallEvent] = field(default_factory=list)
    _debt: float = 0.0
    _stalled_since: float | None = None
    _frames_late: int = 0
    _max_debt: float = 0.0

    def observe(self, sample: FrameDelaySample) -> StallEvent | None:
        """Fold in one frame-delay sample; returns a completed stall event
        at the moment the buffer refills."""
        if math.isnan(sample.packetization_time):
            return None
        self._debt = max(0.0, self._debt + sample.delay - sample.packetization_time)
        self._max_debt = max(self._max_debt, self._debt)
        if self._stalled_since is None:
            if self._debt > self.buffer_depth:
                self._stalled_since = sample.time
                self._frames_late = 0
                self._max_debt = self._debt
            return None
        self._frames_late += 1
        if self._debt <= self.buffer_depth * self.refill_fraction:
            event = StallEvent(
                start=self._stalled_since,
                duration=sample.time - self._stalled_since,
                frames_late=self._frames_late,
                max_debt=self._max_debt,
            )
            self.events.append(event)
            self._stalled_since = None
            self._max_debt = self._debt
            return event
        return None

    def finalize(self, now: float) -> StallEvent | None:
        """Close an open stall at end of stream."""
        if self._stalled_since is None:
            return None
        event = StallEvent(
            start=self._stalled_since,
            duration=max(now - self._stalled_since, 0.0),
            frames_late=self._frames_late,
            max_debt=self._max_debt,
        )
        self.events.append(event)
        self._stalled_since = None
        return event

    @property
    def currently_stalled(self) -> bool:
        return self._stalled_since is not None

    @property
    def total_stall_time(self) -> float:
        return sum(event.duration for event in self.events)


def detect_stalls(
    samples: list[FrameDelaySample], *, buffer_depth: float = 0.200
) -> list[StallEvent]:
    """Batch convenience: run the detector over a finished stream."""
    detector = StallDetector(buffer_depth=buffer_depth)
    for sample in samples:
        detector.observe(sample)
    if samples:
        detector.finalize(samples[-1].time)
    return detector.events
