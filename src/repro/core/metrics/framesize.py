"""Exact frame-size measurement (§5.2).

Knowing which packets belong to a frame, how many are expected, and where
the RTP payload starts lets the analyzer compute frame sizes in bytes
exactly — something flow-level bit rates cannot do.  Together with frame
rate this gives a far better picture-quality proxy than throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.metrics.frames import CompletedFrame


@dataclass(frozen=True, slots=True)
class FrameSizeSample:
    """One frame-size observation (completion time, bytes)."""

    time: float
    size: int
    is_probable_keyframe: bool


class FrameSizeCollector:
    """Collects frame sizes and summary statistics for one stream.

    Keyframes are flagged heuristically: a frame more than ``keyframe_factor``
    times the running median is probably intra-coded (the paper's §6.2
    discussion of screen-share "initial frames / changing slides").
    """

    def __init__(self, keyframe_factor: float = 2.5) -> None:
        self.keyframe_factor = keyframe_factor
        self.samples: list[FrameSizeSample] = []
        self._running: list[int] = []

    def observe(self, frame: CompletedFrame) -> FrameSizeSample:
        """Fold in one completed frame."""
        median = self._median()
        is_key = median is not None and frame.payload_bytes > self.keyframe_factor * median
        sample = FrameSizeSample(
            time=frame.completed_time,
            size=frame.payload_bytes,
            is_probable_keyframe=bool(is_key),
        )
        self.samples.append(sample)
        self._running.append(frame.payload_bytes)
        if len(self._running) > 256:
            del self._running[0]
        return sample

    def _median(self) -> float | None:
        if len(self._running) < 8:
            return None
        ordered = sorted(self._running)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[middle])
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    def sizes(self) -> list[int]:
        return [sample.size for sample in self.samples]

    def summary(self) -> dict[str, float]:
        """Mean / median / p90 / max frame size, NaN when empty."""
        sizes = sorted(self.sizes())
        if not sizes:
            nan = math.nan
            return {"mean": nan, "median": nan, "p90": nan, "max": nan, "count": 0}
        return {
            "mean": sum(sizes) / len(sizes),
            "median": float(sizes[len(sizes) // 2]),
            "p90": float(sizes[min(len(sizes) - 1, int(0.9 * len(sizes)))]),
            "max": float(sizes[-1]),
            "count": float(len(sizes)),
        }
