"""Latency estimation, both methods of §5.3 (Figure 11).

**Method 1 — RTP sequence matching.**  Zoom's SFU forwards media packets
without rewriting RTP sequence numbers or timestamps, so when an on-campus
participant's stream is replicated back to another on-campus participant,
the monitor sees *two copies* of every packet: one leaving campus
(client→SFU) and one coming back (SFU→client).  The capture-time difference
between matching (SSRC, payload type, sequence, timestamp) pairs is the
round-trip time between the monitor and the SFU (plus SFU processing) —
tens to hundreds of samples per second per stream.

**Method 2 — TCP control connection as a proxy.**  Zoom clients keep a TCP
443 control connection to the server.  Matching data-segment sequence
numbers against returning acknowledgments yields the monitor↔server RTT;
matching the reverse direction yields the monitor↔client RTT.  Their
difference localizes congestion upstream or downstream of the monitor.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.streams import RTPPacketRecord
from repro.net.packet import ParsedPacket
from repro.net.tcp import TCPFlags


@dataclass(frozen=True, slots=True)
class LatencySample:
    """One latency observation.

    Attributes:
        time: Capture time of the returning copy / acknowledgment.
        rtt: Round-trip estimate in seconds.
        ssrc: Stream that produced the sample (0 for TCP samples).
    """

    time: float
    rtt: float
    ssrc: int = 0


class RTPLatencyMatcher:
    """Method 1: match egress and ingress copies of replicated RTP packets.

    Feed every media packet record (all streams, any order).  Records whose
    SFU direction is *to* the server register as egress; records *from* the
    server match against pending egress entries on
    (SSRC, payload type, sequence, RTP timestamp).  Matches further apart
    than ``max_rtt`` are discarded as sequence-number reuse.
    """

    def __init__(self, *, max_rtt: float = 2.0, max_pending: int = 200_000) -> None:
        self.max_rtt = max_rtt
        self.max_pending = max_pending
        self._egress: OrderedDict[tuple[int, int, int, int], float] = OrderedDict()
        self.samples: list[LatencySample] = []
        self.matched = 0
        self.unmatched_ingress = 0

    def observe(self, record: RTPPacketRecord) -> LatencySample | None:
        """Fold in one media packet record."""
        key = (record.ssrc, record.payload_type, record.sequence, record.rtp_timestamp)
        if record.to_server is True:
            # Keep the *first* copy only: a retransmitted egress packet must
            # not overwrite the original timestamp.
            if key not in self._egress:
                self._egress[key] = record.timestamp
                if len(self._egress) > self.max_pending:
                    self._egress.popitem(last=False)
            return None
        if record.to_server is False:
            egress_time = self._egress.get(key)
            if egress_time is None:
                self.unmatched_ingress += 1
                return None
            rtt = record.timestamp - egress_time
            if not 0.0 <= rtt <= self.max_rtt:
                self.unmatched_ingress += 1
                return None
            self.matched += 1
            sample = LatencySample(time=record.timestamp, rtt=rtt, ssrc=record.ssrc)
            self.samples.append(sample)
            return sample
        return None  # P2P packets carry no direction; Method 1 needs the SFU

    def samples_for(self, ssrc: int) -> list[LatencySample]:
        return [sample for sample in self.samples if sample.ssrc == ssrc]

    def merge_from(self, other: "RTPLatencyMatcher") -> None:
        """Fold another matcher's completed samples into this one.

        Used when merging shard-local results: pending (unmatched) egress
        entries are *not* transferred, because a shard-partitioned capture
        keeps each flow whole but may split the egress and ingress copies of
        one stream across shards — those pairs are unmatchable by design and
        carrying the pending table over would only invite false matches.
        """
        self.samples.extend(other.samples)
        self.samples.sort(key=lambda sample: sample.time)
        self.matched += other.matched
        self.unmatched_ingress += other.unmatched_ingress


class TCPRTTEstimator:
    """Method 2: RTT from one TCP control connection's seq/ack dynamics.

    Args:
        client_ip: The campus-side endpoint.
        server_ip: The Zoom server endpoint.

    Outgoing (client→server) data segments are timestamped by the sequence
    number they run up to; a returning segment acknowledging that point
    yields a **server-side** sample (monitor→server→monitor).  The mirror
    direction yields **client-side** samples.  Retransmitted segments are
    dropped (Karn's algorithm) by only keeping the first instance of each
    sequence point.
    """

    def __init__(
        self, client_ip: str, server_ip: str, *, max_rtt: float = 3.0, max_pending: int = 4096
    ) -> None:
        self.client_ip = client_ip
        self.server_ip = server_ip
        self.max_rtt = max_rtt
        self.max_pending = max_pending
        self._pending_to_server: OrderedDict[int, float] = OrderedDict()
        self._pending_to_client: OrderedDict[int, float] = OrderedDict()
        self.server_samples: list[LatencySample] = []
        self.client_samples: list[LatencySample] = []

    def observe(self, packet: ParsedPacket) -> LatencySample | None:
        """Fold in one TCP packet of this connection."""
        if packet.tcp is None:
            return None
        outbound = packet.src_ip == self.client_ip and packet.dst_ip == self.server_ip
        inbound = packet.src_ip == self.server_ip and packet.dst_ip == self.client_ip
        if not outbound and not inbound:
            return None
        tcp = packet.tcp
        payload_len = len(packet.payload)
        sample: LatencySample | None = None
        if outbound:
            if tcp.flags & TCPFlags.ACK:
                sample = self._match(self._pending_to_client, tcp.ack, packet.timestamp, self.client_samples)
            if payload_len:
                self._register(self._pending_to_server, (tcp.seq + payload_len) & 0xFFFFFFFF, packet.timestamp)
        else:
            if tcp.flags & TCPFlags.ACK:
                sample = self._match(self._pending_to_server, tcp.ack, packet.timestamp, self.server_samples)
            if payload_len:
                self._register(self._pending_to_client, (tcp.seq + payload_len) & 0xFFFFFFFF, packet.timestamp)
        return sample

    def _register(self, pending: OrderedDict[int, float], seq_end: int, when: float) -> None:
        if seq_end not in pending:  # first transmission only (Karn)
            pending[seq_end] = when
            if len(pending) > self.max_pending:
                pending.popitem(last=False)

    def _match(
        self,
        pending: OrderedDict[int, float],
        ack: int,
        when: float,
        out: list[LatencySample],
    ) -> LatencySample | None:
        sent = pending.pop(ack, None)
        if sent is None:
            return None
        rtt = when - sent
        if not 0.0 <= rtt <= self.max_rtt:
            return None
        sample = LatencySample(time=when, rtt=rtt)
        out.append(sample)
        return sample

    def asymmetry(self) -> float | None:
        """Mean server-side RTT minus mean client-side RTT (s).

        Positive values put the bulk of the latency — and hence likely
        congestion — outside the campus; negative values inside (§5.3).
        """
        if not self.server_samples or not self.client_samples:
            return None
        server = sum(s.rtt for s in self.server_samples) / len(self.server_samples)
        client = sum(s.rtt for s in self.client_samples) / len(self.client_samples)
        return server - client

    def merge_from(self, other: "TCPRTTEstimator") -> None:
        """Fold another estimator's samples for the same (client, server)
        pair into this one (sharded-result merge; pending tables dropped)."""
        self.server_samples.extend(other.server_samples)
        self.server_samples.sort(key=lambda sample: sample.time)
        self.client_samples.extend(other.client_samples)
        self.client_samples.sort(key=lambda sample: sample.time)
