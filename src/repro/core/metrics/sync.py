"""RTCP-based wall-clock mapping and inter-stream synchronization.

Zoom's RTCP sender reports exist to "periodically synchronize wall-clock
time with RTP timestamps by carrying an NTP timestamp ... so that different
streams from the same source (e.g., audio and video) are synchronized"
(§4.2.3).  This module does from the monitor what the receiver does
internally: fit the RTP→NTP mapping per stream from the observed sender
reports, then measure how far apart two streams of one participant are in
media time — an audio/video lip-sync skew estimator, one of the deeper
analyses the paper leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.events import AnalysisSink
from repro.rtp.rtcp import RTCPSenderReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import RTCPObserved

RTP_TIMESTAMP_MODULUS = 1 << 32


@dataclass(frozen=True, slots=True)
class ClockMapping:
    """A fitted linear mapping from RTP timestamp to wall-clock seconds.

    Attributes:
        ssrc: Stream the mapping belongs to.
        rate: Estimated RTP ticks per second (the stream's sampling rate).
        reference_rtp / reference_wall: One anchor point of the line.
        reports: Number of sender reports the fit used.
    """

    ssrc: int
    rate: float
    reference_rtp: int
    reference_wall: float
    reports: int

    def wall_time_of(self, rtp_timestamp: int) -> float:
        """Map an RTP timestamp to sender wall-clock seconds (Unix)."""
        delta = (rtp_timestamp - self.reference_rtp) % RTP_TIMESTAMP_MODULUS
        if delta >= RTP_TIMESTAMP_MODULUS // 2:
            delta -= RTP_TIMESTAMP_MODULUS
        return self.reference_wall + delta / self.rate


@dataclass
class SenderReportCollector:
    """Accumulates RTCP sender reports and fits per-stream clock mappings.

    Feed every :class:`RTCPSenderReport` the analyzer decodes; call
    :meth:`mapping` to get a stream's fitted :class:`ClockMapping`, or
    :meth:`skew` to compare two streams of the same sender.
    """

    _observations: dict[int, list[tuple[int, float]]] = field(default_factory=dict)
    max_reports_per_stream: int = 512

    def observe(self, report: RTCPSenderReport) -> None:
        """Record one sender report's (RTP timestamp, NTP wall time) pair."""
        entries = self._observations.setdefault(report.ssrc, [])
        entries.append((report.rtp_timestamp, report.ntp_unix_time))
        if len(entries) > self.max_reports_per_stream:
            del entries[0]

    def ssrcs(self) -> list[int]:
        return sorted(self._observations)

    def report_count(self, ssrc: int) -> int:
        return len(self._observations.get(ssrc, ()))

    def mapping(self, ssrc: int) -> ClockMapping | None:
        """Fit the RTP→wall mapping for one stream.

        Needs at least two reports.  The rate is the least-squares slope of
        RTP ticks over NTP seconds (unwrapped); with Zoom's once-per-second
        SR cadence a minute of trace gives a very stable estimate.
        """
        entries = self._observations.get(ssrc)
        if not entries or len(entries) < 2:
            return None
        # Unwrap RTP timestamps relative to the first report.
        base_rtp, base_wall = entries[0]
        xs: list[float] = []  # wall seconds since first report
        ys: list[float] = []  # unwrapped RTP ticks since first report
        unwrapped = 0
        previous = base_rtp
        for rtp, wall in entries:
            step = (rtp - previous) % RTP_TIMESTAMP_MODULUS
            if step >= RTP_TIMESTAMP_MODULUS // 2:
                step -= RTP_TIMESTAMP_MODULUS
            unwrapped += step
            previous = rtp
            xs.append(wall - base_wall)
            ys.append(float(unwrapped))
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x <= 0:
            return None
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        if slope <= 0:
            return None
        return ClockMapping(
            ssrc=ssrc,
            rate=slope,
            reference_rtp=base_rtp,
            reference_wall=base_wall,
            reports=n,
        )

    def nominal_rate(self, ssrc: int, candidates=(8_000, 16_000, 48_000, 90_000)) -> int | None:
        """Snap the fitted rate to the nearest standard RTP clock."""
        mapping = self.mapping(ssrc)
        if mapping is None:
            return None
        return min(candidates, key=lambda rate: abs(rate - mapping.rate))

    def skew(
        self, ssrc_a: int, rtp_a: int, ssrc_b: int, rtp_b: int
    ) -> float | None:
        """Media-time skew between two streams of one sender.

        Given simultaneous RTP timestamps ``rtp_a``/``rtp_b`` observed on
        streams A and B (e.g. the audio and video of one participant at the
        same capture instant), returns ``wall_A − wall_B`` in seconds: how
        much earlier stream A's current media was sampled.  Values near zero
        mean the streams are in sync (lip sync holds).
        """
        mapping_a = self.mapping(ssrc_a)
        mapping_b = self.mapping(ssrc_b)
        if mapping_a is None or mapping_b is None:
            return None
        return mapping_a.wall_time_of(rtp_a) - mapping_b.wall_time_of(rtp_b)

    def merge_from(self, other: "SenderReportCollector") -> None:
        """Fold another collector's observations into this one, keeping each
        stream's reports in wall-clock order (sharded-result merge)."""
        for ssrc, entries in other._observations.items():
            mine = self._observations.setdefault(ssrc, [])
            mine.extend(entries)
            mine.sort(key=lambda entry: entry[1])
            if len(mine) > self.max_reports_per_stream:
                del mine[: len(mine) - self.max_reports_per_stream]


class SyncSink(AnalysisSink):
    """Feeds a :class:`SenderReportCollector` from the analyzer event bus."""

    def __init__(self, collector: SenderReportCollector) -> None:
        self.collector = collector

    def on_rtcp(self, event: "RTCPObserved") -> None:
        if isinstance(event.report, RTCPSenderReport):
            self.collector.observe(event.report)
