"""Frame-level jitter per the RTP RFC's estimator (§5.4, Figure 12).

Naive packet interarrival variance is useless on RTP conferencing traffic:
packets of a frame arrive back-to-back in bursts, and Zoom's packetization
interval itself varies.  The paper therefore computes jitter at *frame*
granularity with RFC 3550 §6.4.1's transit-difference estimator:

    D(i-1, i) = (R_i − R_{i-1}) − (S_i − S_{i-1})
    J_i       = J_{i-1} + (|D(i-1, i)| − J_{i-1}) / 16

where R is the arrival of a frame's first packet (wall clock) and S is the
frame's RTP timestamp.  ``S`` is converted to seconds via the sampling rate,
correcting for Zoom's variable packetization intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.streams import RTPPacketRecord
from repro.zoom.constants import VIDEO_SAMPLING_RATE, RTPPayloadType

RTP_TIMESTAMP_MODULUS = 1 << 32


@dataclass(frozen=True, slots=True)
class JitterSample:
    """One jitter observation.

    Attributes:
        time: Arrival of the frame that produced the observation.
        jitter: Smoothed RFC 3550 jitter, in seconds of wall-clock time.
        transit_difference: The raw |D| for this frame pair, in seconds.
    """

    time: float
    jitter: float
    transit_difference: float


class FrameJitterEstimator:
    """RFC 3550 jitter at frame granularity for one stream.

    Feed *every* packet of the stream; the estimator keys on the first
    packet of each new RTP timestamp on the main substream (FEC packets and
    retransmitted duplicates are ignored).  Jitter can be read in wall-clock
    seconds (default) or RTP units via ``jitter_rtp_units``.
    """

    def __init__(
        self,
        sampling_rate: int = VIDEO_SAMPLING_RATE,
        *,
        fec_payload_type: int = int(RTPPayloadType.FEC),
    ) -> None:
        if sampling_rate <= 0:
            raise ValueError("sampling rate must be positive")
        self.sampling_rate = sampling_rate
        self._fec_payload_type = fec_payload_type
        self._last_arrival: float | None = None
        self._last_timestamp: int | None = None
        self._seen_timestamps: set[int] = set()
        self._jitter = 0.0
        self.samples: list[JitterSample] = []

    @property
    def jitter(self) -> float:
        """Current smoothed jitter in seconds."""
        return self._jitter

    @property
    def jitter_rtp_units(self) -> float:
        """Current smoothed jitter in RTP timestamp units (RFC 3550 form)."""
        return self._jitter * self.sampling_rate

    def observe(self, record: RTPPacketRecord) -> JitterSample | None:
        """Fold in one packet; returns a sample when a new frame arrived."""
        if record.payload_type == self._fec_payload_type:
            return None
        timestamp = record.rtp_timestamp
        if timestamp in self._seen_timestamps:
            return None  # later packet of a frame already seen, or retransmit
        self._seen_timestamps.add(timestamp)
        if len(self._seen_timestamps) > 4096:
            # Bounded memory: forget ancient timestamps.
            self._seen_timestamps = set(list(self._seen_timestamps)[-1024:])
        if self._last_arrival is None or self._last_timestamp is None:
            self._last_arrival = record.timestamp
            self._last_timestamp = timestamp
            return None
        increment = (timestamp - self._last_timestamp) % RTP_TIMESTAMP_MODULUS
        if increment >= RTP_TIMESTAMP_MODULUS // 2:
            # Out-of-order frame (e.g. late retransmit of an old frame's
            # first packet): not a valid consecutive-frame pair.
            return None
        media_gap = increment / self.sampling_rate
        arrival_gap = record.timestamp - self._last_arrival
        difference = abs(arrival_gap - media_gap)
        self._jitter += (difference - self._jitter) / 16.0
        self._last_arrival = record.timestamp
        self._last_timestamp = timestamp
        sample = JitterSample(
            time=record.timestamp, jitter=self._jitter, transit_difference=difference
        )
        self.samples.append(sample)
        return sample


class NaiveInterarrivalJitter:
    """The *wrong* estimator the paper warns against (§5.4): raw packet
    interarrival deviation without frame grouping or packetization-time
    correction.  Kept for the ablation benchmark that shows why it fails on
    bursty RTP traffic.
    """

    def __init__(self) -> None:
        self._last_arrival: float | None = None
        self._last_gap: float | None = None
        self._jitter = 0.0
        self.samples: list[JitterSample] = []

    @property
    def jitter(self) -> float:
        return self._jitter

    def observe(self, record: RTPPacketRecord) -> JitterSample | None:
        if self._last_arrival is None:
            self._last_arrival = record.timestamp
            return None
        gap = record.timestamp - self._last_arrival
        self._last_arrival = record.timestamp
        if self._last_gap is None:
            self._last_gap = gap
            return None
        difference = abs(gap - self._last_gap)
        self._last_gap = gap
        self._jitter += (difference - self._jitter) / 16.0
        sample = JitterSample(
            time=record.timestamp, jitter=self._jitter, transit_difference=difference
        )
        self.samples.append(sample)
        return sample
