"""Loss, retransmission, and reordering inference from RTP sequences (§5.5).

UDP has no acknowledgments, but Zoom's RTP sequence numbers let the analyzer
reason about delivery per substream.  Zoom retransmits lost packets (same
sequence number, up to twice, ~100 ms timeout), so at the monitor:

* a **duplicate** sequence number is a retransmission that crossed the
  vantage point twice (loss happened downstream of the monitor);
* a **gap** that is later filled is either reordering or a retransmission
  of a packet lost *upstream* of the monitor — the two are fundamentally
  indistinguishable from sequence numbers alone, which the paper calls out
  as a hard limitation;
* a gap that is **never filled** is a genuine loss that exhausted
  retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.streams import RTPPacketRecord

SEQUENCE_MODULUS = 1 << 16


@dataclass
class SequenceStats:
    """Counters produced by :class:`SequenceTracker` for one substream."""

    received: int = 0
    duplicates: int = 0
    late_fills: int = 0
    unfilled_gaps: int = 0
    highest_advanced: int = 0

    @property
    def estimated_loss(self) -> int:
        """Sequence numbers never seen (lost before *and* after retries)."""
        return self.unfilled_gaps

    @property
    def estimated_retransmissions(self) -> int:
        """Lower bound: duplicates certainly crossed the monitor twice."""
        return self.duplicates

    @property
    def reorder_or_upstream_retransmit(self) -> int:
        """Late-filled gaps: reordering or upstream-loss retransmission —
        indistinguishable cases (§5.5)."""
        return self.late_fills


class SequenceTracker:
    """Per-substream sequence-number bookkeeping with a bounded window.

    Feed packets of **one** (stream, payload type); sequence spaces are not
    comparable across substreams (§5.4).  The tracker maintains the set of
    outstanding (expected but unseen) sequence numbers up to ``window``
    behind the highest seen; gaps that fall off the window are counted as
    unfilled (lost).
    """

    def __init__(self, window: int = 512) -> None:
        if window <= 0 or window >= SEQUENCE_MODULUS // 2:
            raise ValueError("window must be in (0, 32768)")
        self.window = window
        self.stats = SequenceStats()
        self._highest: int | None = None
        self._seen_recent: set[int] = set()
        self._missing: dict[int, float] = {}

    def observe(self, record: RTPPacketRecord) -> str:
        """Fold in one packet; returns its classification:
        ``"in_order" | "duplicate" | "late_fill" | "future_gap"``."""
        seq = record.sequence % SEQUENCE_MODULUS
        self.stats.received += 1
        if self._highest is None:
            self._highest = seq
            self._seen_recent.add(seq)
            return "in_order"
        delta = (seq - self._highest) % SEQUENCE_MODULUS
        if delta == 0 or (delta >= SEQUENCE_MODULUS - self.window):
            # At or behind the highest sequence seen.
            if seq in self._seen_recent:
                self.stats.duplicates += 1
                return "duplicate"
            if seq in self._missing:
                del self._missing[seq]
                self.stats.late_fills += 1
                self._seen_recent.add(seq)
                self._trim()
                return "late_fill"
            # Behind the window: treat as duplicate-ish ancient packet.
            self.stats.duplicates += 1
            return "duplicate"
        if delta > self.window:
            # Wild jump forward — restart tracking from here rather than
            # declaring thousands of losses (stream gap, e.g. mode switch).
            self._flush_missing()
            self._highest = seq
            self._seen_recent = {seq}
            self._missing.clear()
            self.stats.highest_advanced += 1
            return "in_order"
        # Normal forward movement; intermediate sequences become missing.
        for offset in range(1, delta):
            missing_seq = (self._highest + offset) % SEQUENCE_MODULUS
            self._missing[missing_seq] = record.timestamp
        self._highest = seq
        self._seen_recent.add(seq)
        self.stats.highest_advanced += 1
        self._trim()
        return "in_order" if delta == 1 else "future_gap"

    def finalize(self) -> SequenceStats:
        """Close the stream: any still-missing sequences count as lost."""
        self._flush_missing()
        return self.stats

    def _flush_missing(self) -> None:
        self.stats.unfilled_gaps += len(self._missing)
        self._missing.clear()

    def _trim(self) -> None:
        if self._highest is None:
            return
        horizon = (self._highest - self.window) % SEQUENCE_MODULUS
        # Expire missing entries older than the window.
        expired = [
            seq
            for seq in self._missing
            if (self._highest - seq) % SEQUENCE_MODULUS > self.window
        ]
        for seq in expired:
            del self._missing[seq]
            self.stats.unfilled_gaps += 1
        if len(self._seen_recent) > 4 * self.window:
            self._seen_recent = {
                seq
                for seq in self._seen_recent
                if (self._highest - seq) % SEQUENCE_MODULUS <= 2 * self.window
            }
        del horizon


@dataclass
class StreamLossReport:
    """Aggregated loss/retransmission view over a whole stream."""

    per_substream: dict[int, SequenceStats] = field(default_factory=dict)

    @property
    def received(self) -> int:
        return sum(stats.received for stats in self.per_substream.values())

    @property
    def duplicates(self) -> int:
        return sum(stats.duplicates for stats in self.per_substream.values())

    @property
    def lost(self) -> int:
        return sum(stats.unfilled_gaps for stats in self.per_substream.values())

    @property
    def reordered(self) -> int:
        return sum(stats.late_fills for stats in self.per_substream.values())

    @property
    def loss_rate(self) -> float:
        total = self.received + self.lost
        return self.lost / total if total else 0.0


class StreamLossTracker:
    """Holds one :class:`SequenceTracker` per substream of a stream."""

    def __init__(self, window: int = 512) -> None:
        self.window = window
        self._trackers: dict[int, SequenceTracker] = {}

    def observe(self, record: RTPPacketRecord) -> str:
        tracker = self._trackers.get(record.payload_type)
        if tracker is None:
            tracker = self._trackers[record.payload_type] = SequenceTracker(self.window)
        return tracker.observe(record)

    def report(self, *, finalize: bool = False) -> StreamLossReport:
        report = StreamLossReport()
        for payload_type, tracker in self._trackers.items():
            stats = tracker.finalize() if finalize else tracker.stats
            report.per_substream[payload_type] = stats
        return report
