"""Flow-level and per-media bit rates (§5.1).

The flow-level rate needs no Zoom parsing and is what prior work measured —
but it conflates media with control packets (~10% of packets carry no
media), mixes multiple streams multiplexed on one flow, and cannot tell a
low-rate video from audio.  The *media* bit rate counts only decoded media
payload bytes, attributed per SSRC and media type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.events import AnalysisSink
from repro.core.metrics.binning import TimeBinner
from repro.core.streams import RTPPacketRecord
from repro.net.packet import FiveTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import FlowBytesObserved, StreamOpened, StreamUpdated


@dataclass
class BitrateMeter:
    """Binned byte counters at flow, stream, and media-type granularity.

    Feed every packet via :meth:`observe_flow_bytes` (all UDP payload bytes,
    the flow-level view) and every decoded media packet via
    :meth:`observe_media` (RTP payload bytes only, the media view).
    """

    bin_width: float = 1.0
    flow_bins: dict[FiveTuple, TimeBinner] = field(default_factory=dict)
    stream_bins: dict[tuple[FiveTuple, int], TimeBinner] = field(default_factory=dict)
    media_type_bins: dict[int, TimeBinner] = field(default_factory=dict)

    def observe_flow_bytes(self, five_tuple: FiveTuple, when: float, size: int) -> None:
        """Count UDP payload bytes at flow granularity (no parsing needed)."""
        binner = self.flow_bins.get(five_tuple)
        if binner is None:
            binner = self.flow_bins[five_tuple] = TimeBinner(self.bin_width)
        binner.add(when, size)

    def observe_media(self, record: RTPPacketRecord) -> None:
        """Count decoded media payload bytes per stream and media type."""
        key = (record.five_tuple, record.ssrc)
        stream_bin = self.stream_bins.get(key)
        if stream_bin is None:
            stream_bin = self.stream_bins[key] = TimeBinner(self.bin_width)
        stream_bin.add(record.timestamp, record.payload_len)
        type_bin = self.media_type_bins.get(record.media_type)
        if type_bin is None:
            type_bin = self.media_type_bins[record.media_type] = TimeBinner(self.bin_width)
        type_bin.add(record.timestamp, record.payload_len)

    def flow_rate_series(self, five_tuple: FiveTuple) -> list[tuple[float, float]]:
        """(bin start, bits/s) series for one flow."""
        binner = self.flow_bins.get(five_tuple)
        if binner is None:
            return []
        return [(when, 8.0 * rate) for when, rate in binner.rates()]

    def stream_rate_series(
        self, five_tuple: FiveTuple, ssrc: int
    ) -> list[tuple[float, float]]:
        """(bin start, bits/s) media-rate series for one stream."""
        binner = self.stream_bins.get((five_tuple, ssrc))
        if binner is None:
            return []
        return [(when, 8.0 * rate) for when, rate in binner.rates()]

    def media_type_rate_series(self, media_type: int) -> list[tuple[float, float]]:
        """(bin start, bits/s) aggregated over all streams of one type —
        the series behind Figure 14."""
        binner = self.media_type_bins.get(media_type)
        if binner is None:
            return []
        return [(when, 8.0 * rate) for when, rate in binner.rates()]

    def stream_rate_values(self, five_tuple: FiveTuple, ssrc: int) -> list[float]:
        """Per-bin media bit rates of one stream (for the Figure 15a CDF)."""
        binner = self.stream_bins.get((five_tuple, ssrc))
        if binner is None:
            return []
        return [8.0 * total / self.bin_width for total in binner.values()]

    def merge_from(self, other: "BitrateMeter") -> None:
        """Fold another meter's bins into this one (sharded-result merge)."""
        for table_name in ("flow_bins", "stream_bins", "media_type_bins"):
            mine: dict = getattr(self, table_name)
            theirs: dict = getattr(other, table_name)
            for key, binner in theirs.items():
                target = mine.get(key)
                if target is None:
                    target = mine[key] = TimeBinner(self.bin_width)
                target.merge_from(binner)


class BitrateSink(AnalysisSink):
    """The 1-second binning layer as an event subscriber.

    Feeds a :class:`BitrateMeter` from the analyzer's event stream: flow
    bytes before decode, media bytes per decoded record — exactly what the
    monolithic pipeline used to wire by direct calls.
    """

    def __init__(self, meter: BitrateMeter) -> None:
        self.meter = meter

    def on_flow_bytes(self, event: "FlowBytesObserved") -> None:
        self.meter.observe_flow_bytes(event.five_tuple, event.timestamp, event.payload_len)

    def on_stream_opened(self, event: "StreamOpened") -> None:
        self.meter.observe_media(event.record)

    def on_stream_updated(self, event: "StreamUpdated") -> None:
        self.meter.observe_media(event.record)
