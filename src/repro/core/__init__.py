"""The paper's contribution: passive analysis of Zoom traffic.

Pipeline stages (Figure 6):

1. :mod:`repro.core.detector` — find Zoom traffic, including P2P flows, via
   the published server subnets and STUN-exchange tracking (§4.1).
2. :mod:`repro.core.entropy` / :mod:`repro.core.offset_finder` — the
   entropy-based header-analysis methodology that discovered the format
   (§4.2); kept executable so the analysis can be repeated if Zoom changes
   its protocol.
3. :mod:`repro.zoom` parsing + :mod:`repro.core.streams` — decode packets and
   assemble them into RTP streams keyed by 5-tuple and SSRC.
4. :mod:`repro.core.meetings` — group streams into meetings (§4.3).
5. :mod:`repro.core.metrics` — per-stream performance estimation (§5).
6. :mod:`repro.core.pipeline` — the end-to-end analyzer.
"""

from repro.core.detector import StunTracker, ZoomClass, ZoomSubnetMatcher, ZoomTrafficDetector
from repro.core.pipeline import AnalysisResult, ZoomAnalyzer
from repro.core.streams import MediaStream, RTPPacketRecord, StreamTable

__all__ = [
    "AnalysisResult",
    "MediaStream",
    "RTPPacketRecord",
    "StreamTable",
    "StunTracker",
    "ZoomAnalyzer",
    "ZoomClass",
    "ZoomSubnetMatcher",
    "ZoomTrafficDetector",
]
