"""The paper's contribution: passive analysis of Zoom traffic.

Pipeline stages (Figure 6), each a :class:`repro.core.stages.Stage`:

1. :mod:`repro.core.detector` — find Zoom traffic, including P2P flows, via
   the published server subnets and STUN-exchange tracking (§4.1).
2. :mod:`repro.core.entropy` / :mod:`repro.core.offset_finder` — the
   entropy-based header-analysis methodology that discovered the format
   (§4.2); kept executable so the analysis can be repeated if Zoom changes
   its protocol.
3. :mod:`repro.zoom` parsing + :mod:`repro.core.streams` — decode packets and
   assemble them into RTP streams keyed by 5-tuple and SSRC.
4. :mod:`repro.core.meetings` — group streams into meetings (§4.3).
5. :mod:`repro.core.metrics` — per-stream performance estimation (§5).
6. :mod:`repro.core.pipeline` — the end-to-end analyzer, composed from
   :mod:`repro.core.stages` over the :mod:`repro.core.events` bus.

Scaling wrappers: :mod:`repro.core.rolling` (bounded-memory continuous
operation) and :mod:`repro.core.sharded` (flow-affine parallel analysis).
Options flow through one frozen :class:`~repro.core.config.AnalyzerConfig`,
and :class:`~repro.core.session.AnalysisSession` is the one-call front door:
``AnalysisSession(config).run(source)`` over any
:class:`~repro.net.source.PacketSource`.
"""

from repro.core.config import (
    AnalyzerConfig,
    FleetConfig,
    FleetNodeConfig,
    ProtocolConfig,
    ServiceConfig,
    StoreConfig,
)
from repro.core.detector import StunTracker, ZoomClass, ZoomSubnetMatcher, ZoomTrafficDetector
from repro.core.events import (
    AnalysisEvent,
    AnalysisSink,
    EventBus,
    FlowBytesObserved,
    MeetingFormed,
    RTCPObserved,
    StreamEvicted,
    StreamOpened,
    StreamUpdated,
)
from repro.core.pipeline import AnalysisResult, ZoomAnalyzer
from repro.core.rolling import FinalizedStream, RollingZoomAnalyzer
from repro.core.session import AnalysisSession
from repro.core.sharded import ShardedAnalyzer
from repro.core.streams import MediaStream, RTPPacketRecord, StreamTable

__all__ = [
    "AnalysisEvent",
    "AnalysisResult",
    "AnalysisSession",
    "AnalysisSink",
    "AnalyzerConfig",
    "FleetConfig",
    "FleetNodeConfig",
    "EventBus",
    "FinalizedStream",
    "FlowBytesObserved",
    "MediaStream",
    "MeetingFormed",
    "ProtocolConfig",
    "RTCPObserved",
    "RTPPacketRecord",
    "RollingZoomAnalyzer",
    "ServiceConfig",
    "ShardedAnalyzer",
    "StoreConfig",
    "StreamEvicted",
    "StreamOpened",
    "StreamTable",
    "StreamUpdated",
    "StunTracker",
    "ZoomAnalyzer",
    "ZoomClass",
    "ZoomSubnetMatcher",
    "ZoomTrafficDetector",
]
