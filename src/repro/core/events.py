"""Typed analysis events and the sink registry.

The staged analyzer (:mod:`repro.core.stages`) communicates with everything
downstream of the per-packet pipeline — rolling eviction, 1-second binning,
ML feature export, report cards — through events published on an
:class:`EventBus` rather than through consumers reaching into the analyzer's
internals.  A subscriber sees the analyzer's lifecycle as it happens:

* :class:`FlowBytesObserved` — a media-class UDP packet's payload bytes,
  before Zoom decoding (the flow-level view prior work measured);
* :class:`StreamOpened` / :class:`StreamUpdated` — a media stream appeared /
  received another decoded packet record;
* :class:`MeetingFormed` — the grouping heuristic opened a new meeting;
* :class:`RTCPObserved` — one RTCP report was decoded;
* :class:`StreamEvicted` — a stream was finalized and released via
  :meth:`repro.core.pipeline.ZoomAnalyzer.evict_stream`;
* :class:`MeetingQoeChanged` — a meeting's QoE state machine transitioned
  (published by :class:`~repro.qoe.tracker.MeetingQoeTracker`).

Subscribe either with a bare callable (``bus.subscribe(StreamEvicted, fn)``)
or by subclassing :class:`AnalysisSink` and overriding the ``on_*`` hooks,
then registering the sink (``bus.register(sink)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.core.meetings import Meeting
from repro.core.streams import MediaStream, RTPPacketRecord
from repro.net.packet import FiveTuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.pipeline import StreamMetrics
    from repro.qoe.machine import QoeSample, QoeState


@dataclass(frozen=True, slots=True)
class AnalysisEvent:
    """Base class: every event carries the capture time it happened at."""

    timestamp: float


@dataclass(frozen=True, slots=True)
class FlowBytesObserved(AnalysisEvent):
    """A media-class UDP packet was seen on ``five_tuple`` (pre-decode)."""

    five_tuple: FiveTuple
    payload_len: int


@dataclass(frozen=True, slots=True)
class StreamOpened(AnalysisEvent):
    """First decoded packet of a new media stream."""

    stream: MediaStream
    record: RTPPacketRecord


@dataclass(frozen=True, slots=True)
class StreamUpdated(AnalysisEvent):
    """Another decoded packet arrived on an existing stream."""

    stream: MediaStream
    record: RTPPacketRecord


@dataclass(frozen=True, slots=True)
class StreamEvicted(AnalysisEvent):
    """A stream was finalized and removed from the live analyzer state.

    Carries the full stream object and its metric estimators so subscribers
    can compute closing summaries — after this event the analyzer itself no
    longer holds either.
    """

    stream: MediaStream
    metrics: "StreamMetrics | None"
    reason: str = "idle"


@dataclass(frozen=True, slots=True)
class MeetingFormed(AnalysisEvent):
    """The grouping heuristic opened a new meeting."""

    meeting: Meeting


@dataclass(frozen=True, slots=True)
class RTCPObserved(AnalysisEvent):
    """One RTCP report (SR / RR / SDES) was decoded from a Zoom packet."""

    report: object


@dataclass(frozen=True, slots=True)
class MeetingQoeChanged(AnalysisEvent):
    """A meeting's QoE state machine transitioned (see :mod:`repro.qoe`).

    Emitted by :class:`~repro.qoe.tracker.MeetingQoeTracker` when a meeting
    crosses a hysteresis boundary; ``timestamp`` is the end of the scoring
    window that triggered the transition.  ``sample`` carries the window's
    monitor-visible signals so alert consumers can render the evidence
    without re-deriving it.
    """

    meeting: Meeting
    previous: "QoeState"
    state: "QoeState"
    sample: "QoeSample"
    windows_in_previous: int
    reason: str = ""


EventHandler = Callable[[AnalysisEvent], None]


class EventBus:
    """Synchronous publish/subscribe registry for analysis events.

    Handlers run inline on the analyzer's thread, in subscription order;
    emission for an event type with no subscribers is a dictionary miss.
    """

    __slots__ = ("_handlers",)

    def __init__(self) -> None:
        self._handlers: dict[type, list[EventHandler]] = {}

    def subscribe(self, event_type: type, handler: EventHandler) -> None:
        """Call ``handler(event)`` for every emitted ``event_type``."""
        self._handlers.setdefault(event_type, []).append(handler)

    def unsubscribe(self, event_type: type, handler: EventHandler) -> None:
        handlers = self._handlers.get(event_type)
        if handlers is not None and handler in handlers:
            handlers.remove(handler)

    def has_subscribers(self, event_type: type) -> bool:
        return bool(self._handlers.get(event_type))

    def emit(self, event: AnalysisEvent) -> None:
        """Deliver one event to every subscriber of its exact type."""
        handlers = self._handlers.get(type(event))
        if handlers:
            for handler in handlers:
                handler(event)

    def register(self, sink: "AnalysisSink") -> None:
        """Subscribe every ``on_*`` hook the sink overrides."""
        for event_type, handler in sink.subscriptions():
            self.subscribe(event_type, handler)

    def unregister(self, sink: "AnalysisSink") -> None:
        for event_type, handler in sink.subscriptions():
            self.unsubscribe(event_type, handler)


class AnalysisSink:
    """Base class for event subscribers.

    Override any subset of the ``on_*`` hooks; :meth:`EventBus.register`
    subscribes exactly the overridden ones, so an unused hook costs nothing
    per packet.
    """

    _DISPATCH: dict[str, type] = {
        "on_flow_bytes": FlowBytesObserved,
        "on_stream_opened": StreamOpened,
        "on_stream_updated": StreamUpdated,
        "on_stream_evicted": StreamEvicted,
        "on_meeting_formed": MeetingFormed,
        "on_rtcp": RTCPObserved,
        "on_qoe_changed": MeetingQoeChanged,
    }

    def on_flow_bytes(self, event: FlowBytesObserved) -> None: ...

    def on_stream_opened(self, event: StreamOpened) -> None: ...

    def on_stream_updated(self, event: StreamUpdated) -> None: ...

    def on_stream_evicted(self, event: StreamEvicted) -> None: ...

    def on_meeting_formed(self, event: MeetingFormed) -> None: ...

    def on_rtcp(self, event: RTCPObserved) -> None: ...

    def on_qoe_changed(self, event: MeetingQoeChanged) -> None: ...

    def subscriptions(self) -> Iterator[tuple[type, EventHandler]]:
        """(event type, bound handler) pairs for every overridden hook."""
        for name, event_type in self._DISPATCH.items():
            if getattr(type(self), name) is not getattr(AnalysisSink, name):
                yield event_type, getattr(self, name)
