"""The one way analyzer options flow: a frozen :class:`AnalyzerConfig`.

Before this module existed, :class:`~repro.core.pipeline.ZoomAnalyzer`,
:class:`~repro.core.rolling.RollingZoomAnalyzer`,
:class:`~repro.core.sharded.ShardedAnalyzer`, and the CLI each re-declared
the same option kwargs by hand, and the sets had drifted (the sharded driver
could not share a telemetry registry; the rolling wrapper had no shard
options at all).  Every driver now consumes one immutable config object —
``ZoomAnalyzer(AnalyzerConfig(...))`` — and the old per-driver kwargs remain
as deprecated shims routed through :func:`resolve_config`.

The config is *frozen* so a driver can hold it without defensive copies,
ship it across process boundaries (the sharded process backend pickles it),
and derive variants with :meth:`AnalyzerConfig.replace`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.telemetry.registry import Telemetry
from repro.zoom.constants import ZOOM_SERVER_SUBNETS

#: Sentinel distinguishing "kwarg not supplied" from every real value
#: (``None`` is a meaningful value for several options).
_UNSET = object()

SHARD_BACKENDS = ("serial", "thread", "process")

#: Names ``ProtocolConfig`` accepts.  Kept as a literal here (instead of
#: importing :data:`repro.protocols.registry.PLUGIN_FACTORIES`) to avoid a
#: config → protocols → core import cycle; the registry asserts the two
#: stay in sync at plugin-construction time.
KNOWN_PROTOCOLS = ("zoom", "rtp")

#: RFC 3551 static audio payload types plus Opus as commonly negotiated.
DEFAULT_RTP_AUDIO_PAYLOAD_TYPES = (0, 8, 9, 13, 111)


@dataclass(frozen=True, slots=True)
class ProtocolConfig:
    """Which protocol plugins run, and their generic-RTP tunables.

    Attributes:
        protocols: Enabled plugin names (``--protocols zoom,rtp``), in any
            order — the registry sorts by plugin priority.  Duplicates are
            dropped (first occurrence wins), unknown names raise.
        rtp_audio_payload_types: RTP payload types the generic plugin maps
            to the audio media type; all other decodable RTP is video.
    """

    protocols: tuple[str, ...] = ("zoom",)
    rtp_audio_payload_types: tuple[int, ...] = DEFAULT_RTP_AUDIO_PAYLOAD_TYPES

    def __post_init__(self) -> None:
        deduped: list[str] = []
        for name in self.protocols:
            if name not in KNOWN_PROTOCOLS:
                known = ", ".join(KNOWN_PROTOCOLS)
                raise ValueError(f"unknown protocol {name!r} (known: {known})")
            if name not in deduped:
                deduped.append(name)
        if not deduped:
            raise ValueError("at least one protocol must be enabled")
        object.__setattr__(self, "protocols", tuple(deduped))
        object.__setattr__(
            self, "rtp_audio_payload_types", tuple(self.rtp_audio_payload_types)
        )


@dataclass(frozen=True, slots=True)
class AnalyzerConfig:
    """Every tunable of the analysis pipeline, in one immutable record.

    Attributes:
        zoom_subnets: Zoom's published server prefixes (§4.1 detection).
        campus_subnets: Optional campus prefixes scoping P2P detection.
        stun_timeout: P2P endpoint memory in seconds (§4.1).
        keep_records: Retain per-packet records on streams (memory-heavy;
            only needed for offline re-analysis).
        tolerant: Treat a truncated capture tail as end-of-file instead of
            an error (consumed by the capture readers / sources).
        telemetry: Runtime telemetry wiring — ``True``/``False`` toggles a
            fresh registry, a :class:`~repro.telemetry.Telemetry` instance
            is shared as-is, and a zero-argument *factory* callable builds
            one registry per analyzer (the form that survives pickling into
            sharded worker processes; use a module-level function there).
        shards: Flow-affine parallelism (1 = single pass).  Consumed by
            :class:`~repro.core.sharded.ShardedAnalyzer` and the
            :class:`~repro.core.session.AnalysisSession` driver selection.
        shard_backend: ``"serial"``, ``"thread"``, or ``"process"``.
        rolling: Run with bounded-memory idle-stream eviction
            (:class:`~repro.core.rolling.RollingZoomAnalyzer`).
        rolling_idle_timeout: Seconds of inactivity before a stream is
            finalized and evicted.
        rolling_sweep_interval: How often (in capture time) to scan for
            idle streams.
        qoe: Optional per-meeting QoE state-machine tunables; when set (and
            enabled), :class:`~repro.core.session.AnalysisSession` attaches
            a :class:`~repro.qoe.tracker.MeetingQoeTracker` to the run.
            Requires an unsharded run — the machine needs the whole-meeting
            event stream, which flow-affine shards split.
        protocols: Which protocol plugins the registry enables (default:
            Zoom only, the bit-identical legacy behaviour) plus their
            generic-RTP tunables.
        batch_size: Read-chunk size (in frames) handed to capture sources
            and the live interface source (``--batch-size``).  The default
            mirrors :data:`repro.net.source.DEFAULT_BATCH_SIZE`; sources
            upgrade an untouched default to their preferred batch-pipeline
            chunk, while an explicit value is honoured as-is.
    """

    zoom_subnets: tuple[str, ...] = tuple(ZOOM_SERVER_SUBNETS)
    campus_subnets: tuple[str, ...] | None = None
    stun_timeout: float = 120.0
    keep_records: bool = False
    tolerant: bool = False
    telemetry: "Telemetry | bool | Callable[[], Telemetry]" = True
    shards: int = 1
    shard_backend: str = "thread"
    rolling: bool = False
    rolling_idle_timeout: float = 60.0
    rolling_sweep_interval: float = 10.0
    qoe: "QoeConfig | None" = None
    protocols: "ProtocolConfig" = dataclasses.field(default_factory=ProtocolConfig)
    batch_size: int = 256

    def __post_init__(self) -> None:
        # Normalize subnet iterables to tuples so the config hashes/pickles
        # and a caller's list can't mutate under a running analyzer.
        object.__setattr__(self, "zoom_subnets", tuple(self.zoom_subnets))
        if self.campus_subnets is not None:
            object.__setattr__(self, "campus_subnets", tuple(self.campus_subnets))
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(f"unknown backend {self.shard_backend!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def replace(self, **changes: object) -> "AnalyzerConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------- telemetry

    @property
    def telemetry_enabled(self) -> bool:
        """Whether analyzers built from this config record telemetry."""
        if isinstance(self.telemetry, Telemetry):
            return self.telemetry.enabled
        if callable(self.telemetry):
            return True
        return bool(self.telemetry)

    def make_telemetry(self) -> Telemetry:
        """The registry an analyzer built from this config records into.

        A shared :class:`Telemetry` instance passes through; a factory is
        invoked (fresh registry per call); a bool builds an enabled or
        disabled registry.
        """
        if isinstance(self.telemetry, Telemetry):
            return self.telemetry
        if callable(self.telemetry):
            return self.telemetry()
        return Telemetry(enabled=bool(self.telemetry))

    def shard_config(self) -> "AnalyzerConfig":
        """The per-shard variant of this config.

        A shared registry instance cannot be recorded into concurrently from
        thread or process shards, so it degrades to its enabled flag — each
        shard then builds a private registry and the driver merges them.
        Factories and bools pass through (a factory is called once per
        shard, in the worker).
        """
        telemetry = self.telemetry
        if isinstance(telemetry, Telemetry):
            telemetry = telemetry.enabled
        # Per-shard QoE machines would each see a flow-affine slice of a
        # meeting, never the whole meeting — drop the tracker in shards.
        return self.replace(telemetry=telemetry, shards=1, qoe=None)


@dataclass(frozen=True, slots=True)
class QoeConfig:
    """Tunables of the per-meeting QoE state machine (:mod:`repro.qoe`).

    The machine classifies each meeting into GOOD / DEGRADED / IMPAIRED /
    CRITICAL from window-level monitor-visible signals, with hysteresis so a
    flapping link does not flap alerts.  Threshold provenance is the paper's
    §5 validation ranges (see DESIGN.md §13): recovery-visible loss share,
    RFC-3550 jitter, and the frame-rate collapse that "Can You See Me Now?"
    identifies as the dominant user-visible failure.

    Attributes:
        enabled: Master switch; a disabled config makes drivers skip the
            tracker entirely.
        window_seconds: Width of the tracker's own tumbling scoring windows
            (finer than the service's export windows — QoE needs ~1 s
            reaction granularity).
        lateness: Watermark lag before a scoring window closes.
        min_meeting_packets: Meeting-windows with fewer media packets than
            this are not scored at all (join/leave edges, idle meetings).
        min_stream_packets: A stream contributes to a window's worst-stream
            signals only with at least this many packets in the window.
        min_substream_packets: A substream (RTP payload type) contributes to
            the window's jitter peak only with at least this many in-order
            packets — sparse substreams (FEC at a few packets per second)
            hold transient estimator spikes for many windows and would smear
            an impairment past its true end.
        loss_degraded / loss_impaired / loss_critical: Enter thresholds on
            the worst stream's recovery-visible loss fraction (sequence gaps
            per gap-plus-received packet).
        jitter_degraded_ms / jitter_impaired_ms / jitter_critical_ms: Enter
            thresholds on the worst stream's RFC-3550 jitter estimate.
        fps_degraded / fps_impaired / fps_critical: Enter thresholds on the
            worst video stream's delivered-fps ratio against its learned
            baseline (a ratio *below* the threshold triggers).
        fps_baseline_alpha: EWMA weight of the per-stream fps baseline,
            learned only while the meeting is GOOD so a degraded rate is
            never adopted as normal.
        fps_min_baseline: Streams whose learned rate sits below this never
            produce an fps signal (screen shares burst at a few fps and
            would otherwise flap the ratio).
        exit_fraction: Exit thresholds are enter thresholds scaled by this
            factor — the hysteresis gap.
        enter_windows: Consecutive qualifying windows required to escalate.
        exit_windows: Consecutive clear windows required to de-escalate.
        min_dwell_windows: Minimum scored windows between *any* two
            transitions; this is what makes the zero-flap guarantee
            structural rather than statistical.
    """

    enabled: bool = True
    window_seconds: float = 1.0
    lateness: float = 0.5
    min_meeting_packets: int = 30
    min_stream_packets: int = 20
    min_substream_packets: int = 10
    loss_degraded: float = 0.02
    loss_impaired: float = 0.08
    loss_critical: float = 0.20
    jitter_degraded_ms: float = 15.0
    jitter_impaired_ms: float = 35.0
    jitter_critical_ms: float = 80.0
    fps_degraded: float = 0.75
    fps_impaired: float = 0.45
    fps_critical: float = 0.20
    fps_baseline_alpha: float = 0.3
    fps_min_baseline: float = 8.0
    exit_fraction: float = 0.6
    enter_windows: int = 2
    exit_windows: int = 3
    min_dwell_windows: int = 3

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if self.lateness < 0:
            raise ValueError("lateness must be >= 0")
        if not 0 < self.exit_fraction <= 1:
            raise ValueError("exit_fraction must be in (0, 1]")
        if self.enter_windows < 1 or self.exit_windows < 1:
            raise ValueError("enter_windows and exit_windows must be >= 1")
        if self.min_dwell_windows < 1:
            raise ValueError("min_dwell_windows must be >= 1")
        if self.min_substream_packets < 1:
            raise ValueError("min_substream_packets must be >= 1")
        if not self.loss_degraded < self.loss_impaired < self.loss_critical:
            raise ValueError("loss thresholds must strictly increase")
        if not (
            self.jitter_degraded_ms < self.jitter_impaired_ms < self.jitter_critical_ms
        ):
            raise ValueError("jitter thresholds must strictly increase")
        if not self.fps_degraded > self.fps_impaired > self.fps_critical:
            raise ValueError("fps ratio thresholds must strictly decrease")

    def replace(self, **changes: object) -> "QoeConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True, slots=True)
class StoreConfig:
    """Tunables of the persistent metrics store (:mod:`repro.store`).

    Frozen for the same reasons as :class:`AnalyzerConfig`: the store holds
    it for its whole lifetime, and a directory's on-disk partition width
    must never drift under a running writer (opening an existing store
    adopts the width recorded in its manifest).

    Attributes:
        partition_seconds: Width of one time partition — records are routed
            to ``floor(start / partition_seconds)``.  The default (1 h)
            matches the paper's campus-study slicing granularity.
        seal_records / seal_bytes: An active segment crossing either
            threshold is sealed (gzip-compressed, footer-indexed, atomically
            renamed).  Small thresholds mean more, smaller segments — finer
            query skipping but more compaction work.
        gzip_level: Compression level used at seal and compaction time.
        fsync: Fsync the active segment after every append.  Off by
            default: the framing already bounds loss to the torn tail
            frame, and window cadence (one record per ~10 s) makes the
            durability window tiny.
        compact_min_segments: A partition is compacted once it holds at
            least this many sealed segments under ``compact_small_bytes``.
        compact_small_bytes: Only segments at or below this size join a
            compaction (a full-sized sealed segment is already its final
            form).
        retention_max_age: Delete sealed segments whose newest record lies
            further than this behind the store's newest record
            (``None`` = keep forever).
        retention_max_bytes: Delete oldest sealed segments until the store
            is under this budget (``None`` = unbounded).
        maintenance_interval: In live operation, run compaction + retention
            after every N seals (``repro compact`` runs the same pass on
            demand).
    """

    partition_seconds: float = 3600.0
    seal_records: int = 1024
    seal_bytes: int = 4 * 1024 * 1024
    gzip_level: int = 6
    fsync: bool = False
    compact_min_segments: int = 4
    compact_small_bytes: int = 1024 * 1024
    retention_max_age: float | None = None
    retention_max_bytes: int | None = None
    maintenance_interval: int = 16

    def __post_init__(self) -> None:
        if self.partition_seconds <= 0:
            raise ValueError("partition_seconds must be > 0")
        if self.seal_records < 1:
            raise ValueError("seal_records must be >= 1")
        if self.seal_bytes < 1:
            raise ValueError("seal_bytes must be >= 1")
        if not 0 <= self.gzip_level <= 9:
            raise ValueError("gzip_level must be in 0..9")
        if self.compact_min_segments < 2:
            raise ValueError("compact_min_segments must be >= 2")
        if self.maintenance_interval < 1:
            raise ValueError("maintenance_interval must be >= 1")

    def replace(self, **changes: object) -> "StoreConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Everything the live monitoring daemon needs beyond the analyzer.

    Consumed by :class:`repro.service.runner.ZoomMonitorService`; the
    nested :class:`AnalyzerConfig` drives the rolling analyzer exactly as it
    would a batch run (``rolling_idle_timeout`` etc. apply unchanged).

    Attributes:
        analyzer: The analysis tunables (rolling mode is implied; the
            service forces ``rolling=True``).
        window_seconds: Width of the tumbling aggregation windows.
        watermark_lateness: How far (in capture time) the watermark trails
            the newest event before a window is closed; events older than
            the watermark are counted as ``service.late_events`` and
            dropped, which is what bounds open-window memory.
        max_open_windows: Hard cap on simultaneously open windows; beyond
            it the oldest is force-closed (counted as
            ``service.windows_forced``).
        poll_interval: Seconds between capture-directory scans (or between
            live-interface receive passes in interface mode).
        tail_pattern: Glob for capture files inside the tailed directory.
        interface: Capture from this network interface instead of tailing
            a directory (``analyze-live --interface``).  A plain name
            (``eth0``) opens an ``AF_PACKET`` socket with the compiled
            cBPF capture filter attached (needs ``CAP_NET_RAW``); the
            ``sim:<capture-path>`` form replays a capture file through the
            simulated socket — same code path, no privileges.
        listen: ``host:port`` for the metrics/health HTTP endpoint, or
            ``None`` to run without one.  Port 0 binds an ephemeral port
            (the server reports the bound address).
        jsonl_path: Append-only per-window JSONL log, or ``None``.
        jsonl_max_bytes: Size at which the JSONL log is rotated to ``.1``.
        queue_max_batches: Bound on the ingest→analysis queue; when full,
            new batches are dropped and counted (``service.dropped``)
            rather than buffered without limit.
        restart_backoff_base: First delay (seconds) after an ingest-thread
            crash; doubles per consecutive crash.
        restart_backoff_max: Ceiling on the crash-restart delay.
        store_dir: Root directory of the persistent metrics store
            (``analyze-live --store``), or ``None`` to run without one.
        store: The store's tunables (ignored unless ``store_dir`` is set).
        qoe: Per-meeting QoE state-machine tunables; ``QoeConfig(
            enabled=False)`` runs the daemon without QoE tracking.
    """

    analyzer: AnalyzerConfig = dataclasses.field(default_factory=AnalyzerConfig)
    window_seconds: float = 10.0
    watermark_lateness: float = 5.0
    max_open_windows: int = 64
    poll_interval: float = 1.0
    tail_pattern: str = "*.pcap*"
    interface: str | None = None
    listen: str | None = None
    jsonl_path: str | None = None
    jsonl_max_bytes: int = 64 * 1024 * 1024
    queue_max_batches: int = 256
    restart_backoff_base: float = 0.5
    restart_backoff_max: float = 30.0
    store_dir: str | None = None
    store: StoreConfig = dataclasses.field(default_factory=StoreConfig)
    qoe: QoeConfig = dataclasses.field(default_factory=QoeConfig)

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if self.watermark_lateness < 0:
            raise ValueError("watermark_lateness must be >= 0")
        if self.max_open_windows < 1:
            raise ValueError("max_open_windows must be >= 1")
        if self.queue_max_batches < 1:
            raise ValueError("queue_max_batches must be >= 1")
        object.__setattr__(self, "analyzer", self.analyzer.replace(rolling=True))

    def replace(self, **changes: object) -> "ServiceConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True, slots=True)
class FleetNodeConfig:
    """One vantage point in a monitor fleet (see :mod:`repro.fleet`).

    A node is an ``analyze-live`` daemon (or a finished campaign) at one
    tap — a campus building, a PoP — reachable for queries through its
    on-disk metrics store, its HTTP store endpoint, or both.

    Attributes:
        name: Site identifier, unique within the fleet (``bldg-a``,
            ``pop-lhr``); used in dedup annotations, health tables, and
            ``nodes_missing`` lists.
        store_dir: Path of the node's :class:`~repro.store.MetricsStore`.
            Querying a local path opens the store directly — the right
            mode for finished campaigns and simulated fleets.  Never point
            this at a store a *live* daemon is writing from another
            process; use ``endpoint`` for live nodes.
        endpoint: Base URL of the node's metrics HTTP server (e.g.
            ``http://10.8.0.5:9469``).  The federated plane POSTs
            ``/store/query`` here and the health layer scrapes
            ``/metrics``.
        campus_subnets: The campus prefixes this tap covers — operator
            documentation of the fleet's coverage map, and the basis for
            "two taps should not overlap" sanity checks.
    """

    name: str
    store_dir: str | None = None
    endpoint: str | None = None
    campus_subnets: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"node name must be a non-empty label, got {self.name!r}")
        if self.store_dir is None and self.endpoint is None:
            raise ValueError(f"node {self.name!r} needs a store_dir or an endpoint")
        if self.endpoint is not None and not self.endpoint.startswith(("http://", "https://")):
            raise ValueError(
                f"node {self.name!r}: endpoint must be an http(s) URL, "
                f"got {self.endpoint!r}"
            )
        if self.campus_subnets is not None:
            object.__setattr__(self, "campus_subnets", tuple(self.campus_subnets))

    @property
    def query_source(self) -> str:
        """Where queries go: the local store when present, else the endpoint."""
        return "store" if self.store_dir is not None else "endpoint"


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """A named set of vantage points behind one query plane.

    Consumed by :class:`repro.fleet.federation.FederatedQuery` and the
    ``fleet`` CLI subcommands; usually loaded from a JSON manifest
    (:mod:`repro.fleet.manifest`).

    Attributes:
        nodes: The fleet's vantage points; names must be unique.
        query_timeout: Per-node time budget (seconds) for one federated
            fan-out attempt; a node that exceeds it joins
            ``nodes_missing`` instead of stalling the plane.
        query_retries: Extra attempts per node before it is declared
            missing (transient endpoint hiccups survive a retry; a dead
            node just costs ``retries × timeout`` once).
        max_workers: Fan-out thread-pool width (bounded so a 100-node
            fleet does not open 100 sockets at once).
        stale_after: Fleet-health rule: a node whose newest data trails
            the fleet's newest by more than this many seconds of capture
            time is flagged stale.
        drop_outlier_ratio: Fleet-health rule: a node whose drop fraction
            exceeds the fleet median by this factor (and a 1% floor) is
            flagged as a drop-rate outlier.
    """

    nodes: tuple[FleetNodeConfig, ...]
    query_timeout: float = 5.0
    query_retries: int = 1
    max_workers: int = 8
    stale_after: float = 120.0
    drop_outlier_ratio: float = 3.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValueError("a fleet needs at least one node")
        names = [node.name for node in self.nodes]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(f"duplicate node names: {', '.join(duplicates)}")
        if self.query_timeout <= 0:
            raise ValueError("query_timeout must be > 0")
        if self.query_retries < 0:
            raise ValueError("query_retries must be >= 0")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.stale_after <= 0:
            raise ValueError("stale_after must be > 0")
        if self.drop_outlier_ratio <= 1:
            raise ValueError("drop_outlier_ratio must be > 1")

    def node(self, name: str) -> FleetNodeConfig:
        """The node called ``name`` (raises ``KeyError`` if absent)."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def replace(self, **changes: object) -> "FleetConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


#: Legacy per-driver kwarg name → config field name.
_LEGACY_FIELDS = {
    "zoom_subnets": "zoom_subnets",
    "campus_subnets": "campus_subnets",
    "stun_timeout": "stun_timeout",
    "keep_records": "keep_records",
    "tolerant": "tolerant",
    "telemetry": "telemetry",
    "shards": "shards",
    "backend": "shard_backend",
    "idle_timeout": "rolling_idle_timeout",
    "sweep_interval": "rolling_sweep_interval",
}


def resolve_config(
    config: "AnalyzerConfig | Iterable[str] | None",
    caller: str,
    **legacy: object,
) -> AnalyzerConfig:
    """Normalize a driver's ``(config, **deprecated kwargs)`` inputs.

    ``config`` may be an :class:`AnalyzerConfig` (the modern form), ``None``
    (defaults, or legacy kwargs), or — for drivers whose first positional
    argument used to be ``zoom_subnets`` — a bare iterable of prefixes.
    Legacy kwargs are mapped onto config fields with a
    :class:`DeprecationWarning`; mixing them with an explicit config is an
    error rather than a silent precedence rule.
    """
    supplied = {name: value for name, value in legacy.items() if value is not _UNSET}
    if isinstance(config, AnalyzerConfig):
        if supplied:
            raise TypeError(
                f"{caller}: pass either config= or the deprecated option "
                f"kwargs ({', '.join(sorted(supplied))}), not both"
            )
        return config
    if config is not None:  # legacy positional zoom_subnets
        supplied.setdefault("zoom_subnets", config)
    if not supplied:
        return AnalyzerConfig()
    warnings.warn(
        f"{caller}({', '.join(sorted(supplied))}) option arguments are "
        f"deprecated; pass {caller}(config=AnalyzerConfig(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return AnalyzerConfig(
        **{_LEGACY_FIELDS[name]: value for name, value in supplied.items()}
    )
