"""Grouping streams into meetings (§4.3, Figures 8-9).

Zoom packets carry no meeting identifier, so meetings must be inferred from
flow properties.  The heuristic has two steps:

**Step 1 — duplicate-stream detection.**  When a new stream (5-tuple + SSRC)
appears, it is matched against existing streams with the same SSRC whose
most recent RTP timestamp lies within a small range of the new stream's
first RTP timestamp (and which were recently active).  Matches receive the
same *unique stream id*: this collapses SFU replicas of one media stream
(egress copy + per-receiver ingress copies) and survives SFU↔P2P transitions,
because Zoom changes ports but never rewrites RTP state.  Time and timestamp
windows keep re-used SSRCs from unrelated meetings apart.

**Step 2 — meeting assignment.**  Streams are assigned to meetings via three
mappings — unique stream id, client IP, and client (IP, port) — looked up in
that order of strength.  Any match joins the existing meeting; matches in
several meetings merge them; no match starts a new meeting.

Known limitations reproduced here deliberately (Figure 9): passive
participants emit no streams and are invisible; NAT inside the campus can
merge co-located meetings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.streams import MediaStream, StreamKey, StreamTable
from repro.zoom.constants import AUDIO_SAMPLING_RATE, VIDEO_SAMPLING_RATE, ZoomMediaType

RTP_TIMESTAMP_MODULUS = 1 << 32


def _sampling_rate_for(media_type: int) -> int:
    if media_type == ZoomMediaType.AUDIO:
        return AUDIO_SAMPLING_RATE
    return VIDEO_SAMPLING_RATE


def _rtp_distance(a: int, b: int) -> int:
    """Minimal circular distance between two 32-bit RTP timestamps."""
    forward = (a - b) % RTP_TIMESTAMP_MODULUS
    return min(forward, RTP_TIMESTAMP_MODULUS - forward)


@dataclass
class Meeting:
    """One inferred meeting.

    Attributes:
        meeting_id: Analyzer-assigned identity (stable within a run).
        stream_keys: All (5-tuple, SSRC) streams assigned to this meeting.
        stream_uids: Unique stream ids from step 1 (one per media stream,
            however many network copies it had).
        client_ips / client_endpoints: Client-side addresses observed.
        first_time / last_time: Activity bounds.
    """

    meeting_id: int
    stream_keys: set[StreamKey] = field(default_factory=set)
    stream_uids: set[int] = field(default_factory=set)
    client_ips: set[str] = field(default_factory=set)
    client_endpoints: set[tuple[str, int]] = field(default_factory=set)
    first_time: float = float("inf")
    last_time: float = float("-inf")
    uid_media_types: dict[int, int] = field(default_factory=dict)
    uid_has_egress: dict[int, bool] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.first_time > self.last_time:
            return 0.0
        return self.last_time - self.first_time

    @property
    def inbound_only_uids(self) -> set[int]:
        """Streams only ever seen coming *from* the SFU: their senders are
        off campus (or behind an unmonitored subnet)."""
        return {uid for uid, egress in self.uid_has_egress.items() if not egress}

    def participant_estimate(self) -> int:
        """Lower-bound participant count (§4.3.1's caveats apply).

        Campus participants are counted by distinct client IP.  Off-campus
        senders are bounded below by the largest per-media-type count of
        inbound-only streams (each participant sends at most one stream of
        each type).  Passive participants are invisible by construction.
        """
        inbound_by_type: dict[int, int] = {}
        for uid in self.inbound_only_uids:
            media_type = self.uid_media_types.get(uid, 0)
            inbound_by_type[media_type] = inbound_by_type.get(media_type, 0) + 1
        off_campus = max(inbound_by_type.values(), default=0)
        return len(self.client_ips) + off_campus

    def absorb(self, other: "Meeting") -> None:
        """Merge another meeting's state into this one."""
        self.stream_keys |= other.stream_keys
        self.stream_uids |= other.stream_uids
        self.client_ips |= other.client_ips
        self.client_endpoints |= other.client_endpoints
        self.first_time = min(self.first_time, other.first_time)
        self.last_time = max(self.last_time, other.last_time)
        self.uid_media_types.update(other.uid_media_types)
        for uid, egress in other.uid_has_egress.items():
            self.uid_has_egress[uid] = self.uid_has_egress.get(uid, False) or egress


class MeetingGrouper:
    """Online implementation of the two-step grouping heuristic.

    Call :meth:`observe_new_stream` exactly once per new stream, at the
    moment the stream first appears (the pipeline does this), and
    :meth:`observe_stream_update` afterwards to keep activity bounds fresh.

    Args:
        time_window: Maximum age (s) of an existing stream for step 1's
            duplicate match.
        rtp_window_seconds: Maximum RTP-timestamp distance for the match,
            expressed in seconds of media time.
    """

    def __init__(
        self, *, time_window: float = 30.0, rtp_window_seconds: float = 15.0
    ) -> None:
        self.time_window = time_window
        self.rtp_window_seconds = rtp_window_seconds
        self._uid_by_stream: dict[StreamKey, int] = {}
        self._next_uid = 0
        self._next_meeting_id = 0
        self._meetings: dict[int, Meeting] = {}
        self._meeting_alias: dict[int, int] = {}
        self._by_uid: dict[int, int] = {}
        self._by_client_ip: dict[str, int] = {}
        self._by_client_endpoint: dict[tuple[str, int], int] = {}
        self.merges = 0

    # --------------------------------------------------------------- step 1

    def _assign_uid(self, stream: MediaStream, table: StreamTable) -> int:
        window_units = int(
            self.rtp_window_seconds * _sampling_rate_for(stream.media_type)
        )
        for candidate in table.with_ssrc(stream.ssrc):
            if candidate.key == stream.key:
                continue
            known_uid = self._uid_by_stream.get(candidate.key)
            if known_uid is None:
                continue
            if stream.first_time - candidate.last_time > self.time_window:
                continue
            # Proximity to either end of the candidate's timestamp range:
            # online, ``last`` is the most recently seen timestamp (the
            # paper's formulation); in batch re-analysis ``last`` is final,
            # so a replica that started alongside the candidate is near its
            # ``first`` instead.
            near = min(
                _rtp_distance(stream.first_rtp_timestamp, candidate.last_rtp_timestamp),
                _rtp_distance(stream.first_rtp_timestamp, candidate.first_rtp_timestamp),
            )
            if near <= window_units:
                self._uid_by_stream[stream.key] = known_uid
                return known_uid
        uid = self._next_uid
        self._next_uid += 1
        self._uid_by_stream[stream.key] = uid
        return uid

    # --------------------------------------------------------------- step 2

    def observe_new_stream(self, stream: MediaStream, table: StreamTable) -> int:
        """Process a newly created stream; returns its meeting id."""
        uid = self._assign_uid(stream, table)
        client_endpoints = self._client_endpoints(stream)
        matches: list[int] = []
        if uid in self._by_uid:
            matches.append(self._resolve(self._by_uid[uid]))
        for ip, port in client_endpoints:
            if (ip, port) in self._by_client_endpoint:
                matches.append(self._resolve(self._by_client_endpoint[(ip, port)]))
            if ip in self._by_client_ip:
                matches.append(self._resolve(self._by_client_ip[ip]))
        unique_matches = sorted(set(matches))
        if unique_matches:
            target = unique_matches[0]
            for other in unique_matches[1:]:
                self._merge(target, other)
            meeting = self._meetings[self._resolve(target)]
        else:
            meeting = self._new_meeting()
        meeting.stream_keys.add(stream.key)
        meeting.stream_uids.add(uid)
        meeting.uid_media_types[uid] = stream.media_type
        has_egress = stream.to_server is True or stream.is_p2p
        meeting.uid_has_egress[uid] = (
            meeting.uid_has_egress.get(uid, False) or has_egress
        )
        meeting.first_time = min(meeting.first_time, stream.first_time)
        meeting.last_time = max(meeting.last_time, stream.last_time)
        resolved_id = meeting.meeting_id
        self._by_uid[uid] = resolved_id
        for ip, port in client_endpoints:
            meeting.client_ips.add(ip)
            meeting.client_endpoints.add((ip, port))
            self._by_client_ip[ip] = resolved_id
            self._by_client_endpoint[(ip, port)] = resolved_id
        return resolved_id

    def observe_stream_update(self, stream: MediaStream) -> None:
        """Refresh the activity bounds of the stream's meeting."""
        uid = self._uid_by_stream.get(stream.key)
        if uid is None:
            return
        meeting_id = self._by_uid.get(uid)
        if meeting_id is None:
            return
        meeting = self._meetings.get(self._resolve(meeting_id))
        if meeting is not None:
            meeting.last_time = max(meeting.last_time, stream.last_time)

    # ------------------------------------------------------------- accessors

    def meetings(self) -> list[Meeting]:
        """All live (non-absorbed) meetings, ordered by first activity."""
        alive = [
            meeting
            for meeting_id, meeting in self._meetings.items()
            if self._resolve(meeting_id) == meeting_id
        ]
        alive.sort(key=lambda m: m.first_time)
        return alive

    def uid_of(self, key: StreamKey) -> int | None:
        return self._uid_by_stream.get(key)

    def meeting_of(self, key: StreamKey) -> Meeting | None:
        uid = self._uid_by_stream.get(key)
        if uid is None or uid not in self._by_uid:
            return None
        return self._meetings.get(self._resolve(self._by_uid[uid]))

    def unique_stream_count(self) -> int:
        return self._next_uid

    # -------------------------------------------------------------- internal

    def _client_endpoints(self, stream: MediaStream) -> list[tuple[str, int]]:
        src_ip, src_port, dst_ip, dst_port, _proto = stream.five_tuple
        if stream.to_server is True:
            return [(src_ip, src_port)]
        if stream.to_server is False:
            return [(dst_ip, dst_port)]
        # P2P: both endpoints are clients.
        return [(src_ip, src_port), (dst_ip, dst_port)]

    def _new_meeting(self) -> Meeting:
        meeting = Meeting(meeting_id=self._next_meeting_id)
        self._meetings[meeting.meeting_id] = meeting
        self._next_meeting_id += 1
        return meeting

    def _resolve(self, meeting_id: int) -> int:
        seen = []
        while meeting_id in self._meeting_alias:
            seen.append(meeting_id)
            meeting_id = self._meeting_alias[meeting_id]
        for alias in seen:  # path compression
            self._meeting_alias[alias] = meeting_id
        return meeting_id

    def _merge(self, target_id: int, other_id: int) -> None:
        target_id = self._resolve(target_id)
        other_id = self._resolve(other_id)
        if target_id == other_id:
            return
        target = self._meetings[target_id]
        other = self._meetings.pop(other_id)
        target.absorb(other)
        self._meeting_alias[other_id] = target_id
        self.merges += 1


def group_streams(
    streams: Iterable[MediaStream], table: StreamTable
) -> tuple[MeetingGrouper, list[Meeting]]:
    """Batch convenience: group already-assembled streams into meetings.

    Streams are processed in order of first appearance, as the online
    pipeline would have seen them.
    """
    grouper = MeetingGrouper()
    for stream in sorted(streams, key=lambda s: s.first_time):
        grouper.observe_new_stream(stream, table)
    return grouper, grouper.meetings()
