"""Tumbling-window aggregation of the live analysis event stream.

The rolling analyzer answers "what happened since the process started"; an
operator dashboard needs "what happened in the last N seconds".
:class:`WindowAggregator` is an :class:`~repro.core.events.AnalysisSink`
that folds stream/meeting events — plus a per-packet feed from the
supervisor for whole-traffic totals — into tumbling windows of
*capture time*, each summarizing per-media-type traffic and quality.

Window lifecycle is watermark-based, the standard trick for out-of-order
tolerance with bounded state: the watermark trails the newest event
timestamp by ``lateness`` seconds, any window ending at or before the
watermark is closed and emitted, and events older than the watermark are
counted (``service.late_events``) and dropped rather than re-opening a
closed window.  A hard cap on simultaneously open windows
(``max_open_windows``) force-closes the oldest beyond it, so a capture with
a wildly wrong clock cannot grow aggregator memory without bound.

Quality metrics (frame rate, jitter, loss) are *stream-cumulative* values
sampled at window close — from streams evicted inside the window and, via
:meth:`~repro.core.rolling.RollingZoomAnalyzer.live_stream_snapshots`, from
streams still open.  Counting metrics (packets, bytes, bitrate, stream and
meeting counts) are exact per window; summed over all emitted windows they
reproduce the batch analyzer's totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.events import (
    AnalysisSink,
    MeetingFormed,
    StreamEvicted,
    StreamOpened,
    StreamUpdated,
)
from repro.core.rolling import FinalizedStream, RollingZoomAnalyzer
from repro.core.streams import StreamKey
from repro.telemetry.registry import Telemetry
from repro.zoom.constants import ZoomMediaType

_MEDIA_NAMES = {
    int(ZoomMediaType.AUDIO): "audio",
    int(ZoomMediaType.VIDEO): "video",
    int(ZoomMediaType.SCREEN_SHARE): "screen",
}


def media_name(media_type: int) -> str:
    """Human label for a Zoom media-encapsulation type."""
    return _MEDIA_NAMES.get(media_type, f"type{media_type}")


@dataclass
class MediaWindowStats:
    """One media type's aggregate inside one window."""

    media_type: int
    packets: int = 0
    bytes: int = 0
    streams_opened: int = 0
    stream_keys: set[StreamKey] = field(default_factory=set)
    p2p_packets: int = 0
    # Filled at close from evicted + live stream summaries.
    mean_fps: float = float("nan")
    mean_jitter_ms: float = float("nan")
    lost: int = 0
    duplicates: int = 0

    def bitrate_bps(self, window_seconds: float) -> float:
        return self.bytes * 8.0 / window_seconds

    def to_dict(self, window_seconds: float) -> dict:
        return {
            "media": media_name(self.media_type),
            "packets": self.packets,
            "bytes": self.bytes,
            "bitrate_bps": round(self.bitrate_bps(window_seconds), 3),
            "streams": len(self.stream_keys),
            "streams_opened": self.streams_opened,
            "p2p_packets": self.p2p_packets,
            "mean_fps": None if math.isnan(self.mean_fps) else round(self.mean_fps, 3),
            "mean_jitter_ms": (
                None
                if math.isnan(self.mean_jitter_ms)
                else round(self.mean_jitter_ms, 3)
            ),
            "lost": self.lost,
            "duplicates": self.duplicates,
        }


@dataclass
class WindowRecord:
    """One closed tumbling window, ready for export."""

    index: int
    start: float
    end: float
    packets_total: int = 0
    bytes_total: int = 0
    zoom_packets: int = 0
    meetings_formed: int = 0
    meetings_active: int = 0
    streams_evicted: int = 0
    forced: bool = False
    media: dict[int, MediaWindowStats] = field(default_factory=dict)

    @property
    def width(self) -> float:
        return self.end - self.start

    def media_stats(self, media_type: int) -> MediaWindowStats:
        stats = self.media.get(media_type)
        if stats is None:
            stats = self.media[media_type] = MediaWindowStats(media_type)
        return stats

    def to_dict(self) -> dict:
        return {
            "window": self.index,
            "start": self.start,
            "end": self.end,
            "packets_total": self.packets_total,
            "bytes_total": self.bytes_total,
            "zoom_packets": self.zoom_packets,
            "meetings_formed": self.meetings_formed,
            "meetings_active": self.meetings_active,
            "streams_evicted": self.streams_evicted,
            "forced": self.forced,
            "media": [
                self.media[media_type].to_dict(self.width)
                for media_type in sorted(self.media)
            ],
        }


class WindowAggregator(AnalysisSink):
    """Fold analysis events into tumbling capture-time windows.

    Args:
        rolling: The analyzer whose event bus this sink registers on; also
            queried for live-stream summaries when a window closes.
        window_seconds: Tumbling window width.
        lateness: Watermark lag — how long a window stays open after
            capture time passes its end (absorbs file-rotation reordering).
        max_open_windows: Bound on open-window state; the oldest windows
            are force-closed beyond it.
        on_window: Callbacks invoked with each closed :class:`WindowRecord`
            in start order (exporters register here).
        telemetry: Optional registry for ``service.*`` counters.
    """

    def __init__(
        self,
        rolling: RollingZoomAnalyzer,
        *,
        window_seconds: float = 10.0,
        lateness: float = 5.0,
        max_open_windows: int = 64,
        on_window: Iterable[Callable[[WindowRecord], None]] = (),
        telemetry: Telemetry | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self._rolling = rolling
        self.window_seconds = window_seconds
        self.lateness = lateness
        self.max_open_windows = max_open_windows
        self._on_window = list(on_window)
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self._open: dict[int, WindowRecord] = {}
        self._watermark = float("-inf")
        self._max_event_time = float("-inf")
        self._evicted_summaries: list[FinalizedStream] = []
        self.windows_emitted = 0
        self.late_events = 0
        rolling.analyzer.bus.register(self)

    # ----------------------------------------------------------- ingestion

    def observe_packet(self, timestamp: float, raw_len: int) -> None:
        """Per-packet feed from the supervisor (all traffic, not just Zoom).

        This is what makes a window's ``packets_total``/``bytes_total``
        exact — the event bus only ever sees Zoom-classified packets.
        """
        window = self._window_for(timestamp)
        if window is None:
            return
        window.packets_total += 1
        window.bytes_total += raw_len
        self._advance_watermark(timestamp)

    def observe_volume(self, timestamp: float, raw_len: int) -> None:
        """Like :meth:`observe_packet`, but without advancing the watermark.

        The batch-feeding supervisor accounts a whole batch's volume before
        the analyzer has produced the batch's stream events; advancing the
        watermark here would close windows those events still need.  The
        caller pairs this with :meth:`advance_watermark` after the feed.
        """
        window = self._window_for(timestamp)
        if window is None:
            return
        window.packets_total += 1
        window.bytes_total += raw_len

    def advance_watermark(self, timestamp: float) -> None:
        """Move capture time forward, closing every window now past lateness.

        Event handlers advance the watermark themselves; this explicit hook
        exists for the batch path, where it runs once per batch *after* the
        analyzer feed so window closure trails the batch instead of racing
        its events.  Windows therefore close at batch granularity — totals
        and per-window stream stats both stay exact, closure just happens
        up to one batch later than the scalar path.
        """
        self._advance_watermark(timestamp)

    def on_stream_opened(self, event: StreamOpened) -> None:
        window = self._window_for(event.timestamp)
        if window is not None:
            stats = window.media_stats(event.record.media_type)
            stats.streams_opened += 1
            self._count_record(window, stats, event)
        self._advance_watermark(event.timestamp)

    def on_stream_updated(self, event: StreamUpdated) -> None:
        window = self._window_for(event.timestamp)
        if window is not None:
            self._count_record(
                window, window.media_stats(event.record.media_type), event
            )
        self._advance_watermark(event.timestamp)

    def on_meeting_formed(self, event: MeetingFormed) -> None:
        window = self._window_for(event.timestamp)
        if window is not None:
            window.meetings_formed += 1
        self._advance_watermark(event.timestamp)

    def on_stream_evicted(self, event: StreamEvicted) -> None:
        # The event's timestamp is the stream's last activity, which by
        # definition of idle eviction lies an idle-timeout in the past —
        # usually in a window already closed.  The eviction *count* is
        # therefore attributed to the window being processed now, and the
        # closing summary joins a bounded buffer that quality fill-in
        # consults for every window the stream's lifetime overlaps.
        summary = self._rolling._summarize(event.stream, event.metrics)
        self._evicted_summaries.append(summary)
        if self._max_event_time > float("-inf"):
            window = self._window_for(self._max_event_time)
            if window is not None:
                window.streams_evicted += 1

    # ------------------------------------------------------------- closing

    def flush(self, *, final: bool = False) -> list[WindowRecord]:
        """Close every window the watermark has passed; ``final=True``
        closes all of them (shutdown path).  Idempotent: a window is
        emitted exactly once.  Returns the records closed by this call.
        """
        if final:
            self._watermark = float("inf")
        closed: list[WindowRecord] = []
        for index in sorted(self._open):
            window = self._open[index]
            if window.end <= self._watermark:
                closed.append(self._close(index))
        return closed

    def open_window_count(self) -> int:
        return len(self._open)

    def add_callback(self, callback: Callable[[WindowRecord], None]) -> None:
        self._on_window.append(callback)

    # ----------------------------------------------------------- internals

    def _count_record(
        self, window: WindowRecord, stats: MediaWindowStats, event: StreamOpened
    ) -> None:
        window.zoom_packets += 1
        stats.packets += 1
        stats.bytes += event.record.payload_len
        stats.stream_keys.add(event.stream.key)
        if event.record.is_p2p:
            stats.p2p_packets += 1

    def _window_for(self, timestamp: float) -> WindowRecord | None:
        index = int(timestamp // self.window_seconds)
        # Late = the window this timestamp belongs to has already been
        # closed by the watermark (comparing window end, not the raw
        # timestamp, keeps exact-boundary events out of the late bucket).
        if (index + 1) * self.window_seconds <= self._watermark:
            self.late_events += 1
            self._telemetry.count("service.late_events")
            return None
        window = self._open.get(index)
        if window is None:
            window = WindowRecord(
                index=index,
                start=index * self.window_seconds,
                end=(index + 1) * self.window_seconds,
            )
            self._open[index] = window
            while len(self._open) > self.max_open_windows:
                oldest = min(self._open)
                self._open[oldest].forced = True
                self._telemetry.count("service.windows_forced")
                self._close(oldest)
        return window

    def _advance_watermark(self, timestamp: float) -> None:
        if timestamp <= self._max_event_time:
            return
        self._max_event_time = timestamp
        watermark = timestamp - self.lateness
        if watermark > self._watermark:
            self._watermark = watermark
            self.flush()

    def _close(self, index: int) -> WindowRecord:
        window = self._open.pop(index)
        self._fill_quality(window)
        self.windows_emitted += 1
        self._telemetry.count("service.windows")
        # Evicted-stream summaries older than any window that can still
        # close are of no further use; pruning here is what keeps the
        # buffer bounded over an unbounded run.
        horizon = window.start
        self._evicted_summaries = [
            summary for summary in self._evicted_summaries if summary.last_time >= horizon
        ]
        for callback in self._on_window:
            callback(window)
        return window

    def _fill_quality(self, window: WindowRecord) -> None:
        """Per-media quality from streams that overlap the window.

        Uses the summaries of streams evicted *in* the window plus live
        snapshots of still-open streams whose activity spans it.  The
        estimators are stream-cumulative (that is what the rolling analyzer
        maintains), so these are "as of this window" values, not
        window-local deltas — documented behavior, and exactly what a
        dashboard gauge wants.
        """
        overlapping: dict[int, list[FinalizedStream]] = {}
        candidates = self._evicted_summaries + self._rolling.live_stream_snapshots()
        for summary in candidates:
            if summary.first_time < window.end and summary.last_time >= window.start:
                overlapping.setdefault(summary.media_type, []).append(summary)
        for media_type, stats in window.media.items():
            summaries = overlapping.get(media_type, ())
            fps = [s.mean_fps for s in summaries if not math.isnan(s.mean_fps)]
            jitter = [s.jitter_ms for s in summaries if not math.isnan(s.jitter_ms)]
            if fps:
                stats.mean_fps = sum(fps) / len(fps)
            if jitter:
                stats.mean_jitter_ms = sum(jitter) / len(jitter)
            stats.lost = sum(s.lost for s in summaries)
            stats.duplicates = sum(s.duplicates for s in summaries)
        window.meetings_active = sum(
            1
            for meeting in self._rolling.result.meetings
            if meeting.first_time < window.end and meeting.last_time >= window.start
        )
