"""Prometheus text-exposition rendering (no client library required).

The exposition format (version 0.0.4, what every Prometheus server scrapes)
is plain text — ``# TYPE`` lines followed by ``name{labels} value`` samples
— so rendering it from a telemetry snapshot plus the latest closed window
needs nothing beyond string formatting.  Keeping the renderer free of I/O
also makes it directly unit-testable; the HTTP plumbing lives in
:mod:`repro.service.exporters`.

Naming follows the Prometheus conventions: every metric is prefixed
``repro_``, dotted telemetry counters become underscored ``_total``
counters (``capture.frames`` → ``repro_capture_frames_total``), and
point-in-time values (live streams, open windows, last-window rates) are
gauges.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from repro.service.windows import WindowRecord, media_name
from repro.telemetry.registry import TelemetrySnapshot

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(dotted: str, *, suffix: str = "") -> str:
    """``capture.frames`` → ``repro_capture_frames<suffix>``."""
    return "repro_" + _NAME_SANITIZE.sub("_", dotted) + suffix


def _sample(name: str, value: float, labels: Mapping[str, str] | None = None) -> str:
    if labels:
        rendered = ",".join(f'{key}="{val}"' for key, val in sorted(labels.items()))
        name = f"{name}{{{rendered}}}"
    if isinstance(value, float):
        if math.isnan(value):
            value_text = "NaN"
        elif value == int(value) and abs(value) < 1e15:
            value_text = str(int(value))
        else:
            value_text = repr(value)
    else:
        value_text = str(value)
    return f"{name} {value_text}"


def render_metrics(
    snapshot: TelemetrySnapshot,
    *,
    last_window: WindowRecord | None = None,
    gauges: Mapping[str, float] | None = None,
) -> str:
    """The full ``/metrics`` page body.

    Args:
        snapshot: Telemetry registry snapshot; every counter is exported.
        last_window: Most recently closed window; exported as per-media
            ``repro_window_*`` gauges labelled ``{media="audio"|...}``.
        gauges: Extra point-in-time values by dotted name (queue depth,
            live streams, …).
    """
    lines: list[str] = []
    for dotted in sorted(snapshot.counters):
        name = metric_name(dotted, suffix="_total")
        lines.append(f"# TYPE {name} counter")
        lines.append(_sample(name, snapshot.counters[dotted]))
    for dotted in sorted(gauges or {}):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} gauge")
        lines.append(_sample(name, (gauges or {})[dotted]))
    if last_window is not None:
        lines.extend(_window_lines(last_window))
    return "\n".join(lines) + "\n"


def _window_lines(window: WindowRecord) -> list[str]:
    lines = [
        "# TYPE repro_window_start_seconds gauge",
        _sample("repro_window_start_seconds", window.start),
        "# TYPE repro_window_packets gauge",
        _sample("repro_window_packets", window.packets_total),
        "# TYPE repro_window_zoom_packets gauge",
        _sample("repro_window_zoom_packets", window.zoom_packets),
        "# TYPE repro_window_meetings_active gauge",
        _sample("repro_window_meetings_active", window.meetings_active),
    ]
    per_media = [
        ("repro_window_media_bitrate_bps", lambda s: s.bitrate_bps(window.width)),
        ("repro_window_media_packets", lambda s: float(s.packets)),
        ("repro_window_media_streams", lambda s: float(len(s.stream_keys))),
        ("repro_window_media_fps", lambda s: s.mean_fps),
        ("repro_window_media_jitter_ms", lambda s: s.mean_jitter_ms),
        ("repro_window_media_lost", lambda s: float(s.lost)),
    ]
    for name, getter in per_media:
        lines.append(f"# TYPE {name} gauge")
        for media_type in sorted(window.media):
            stats = window.media[media_type]
            value = getter(stats)
            if isinstance(value, float) and math.isnan(value):
                continue  # absent beats NaN for a dashboard query
            lines.append(
                _sample(name, value, {"media": media_name(media_type)})
            )
    return lines
