"""Tailing ingestion: follow a capture directory a monitor is still writing.

A production capture daemon rotates files (``zoom-00.pcap``, ``zoom-01.pcap``,
…) and appends to the newest one continuously.  The batch
:class:`~repro.net.source.CaptureDirectorySource` reads a *finished* set of
files once; :class:`CaptureDirectoryTailer` instead polls the directory
repeatedly and delivers exactly the packets that appeared since the last
poll:

* newly discovered files are read from the start;
* files seen before are re-opened with the :class:`~repro.net.source.
  CaptureResume` token saved at the previous poll, so reading continues at
  the first unread record — no packet is ever delivered twice, however many
  times the file is rediscovered;
* the in-progress tail of the newest file is read in ``tolerant`` mode: a
  half-written record stops the pass cleanly *without* advancing the resume
  offset, so the next poll retries it once the writer has finished it;
* a file that *shrank* (or changed format) under a reused name is treated as
  replaced and read from the start again (``ingest.tail.replaced``).

The tailer is deliberately synchronous — :meth:`poll` does one bounded pass
and returns.  Scheduling (sleep intervals, threads, backpressure) belongs to
the supervisor in :mod:`repro.service.runner`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.net.batch import FrameBatch
from repro.net.packet import ParsedPacket
from repro.net.source import DEFAULT_BATCH_SIZE, CaptureResume, open_capture_source
from repro.telemetry.registry import Telemetry


class CaptureDirectoryTailer:
    """Incrementally read a growing, rotating capture directory.

    Args:
        directory: The directory the capture daemon writes into.
        pattern: Glob selecting capture files inside it.
        telemetry: Optional registry; the tailer records ``ingest.tail.*``
            counters and the underlying readers record ``capture.*``.
        batch_size: Packets per yielded batch (the source-layer default).

    Attributes:
        packets_emitted / bytes_emitted: Running totals across all polls.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        pattern: str = "*.pcap*",
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self._directory = Path(directory)
        self._pattern = pattern
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self._batch_size = batch_size
        self._positions: dict[Path, CaptureResume] = {}
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self.polls = 0

    def poll(self) -> Iterator["FrameBatch | list[ParsedPacket]"]:
        """One pass over the directory; yields batches of *new* packets.

        Batches are raw :class:`~repro.net.batch.FrameBatch` buffers when
        the underlying source supports them (file-backed captures do);
        iterating a batch still yields :class:`ParsedPacket` objects, so
        scalar consumers keep working, while the service runner hands whole
        batches to the analyzer's vectorized path.  Files are visited in
        name order — rotation schemes number their files monotonically, and
        per-file resume makes the order a presentation detail rather than a
        correctness one.
        """
        tel = self._telemetry
        self.polls += 1
        tel.count("ingest.tail.polls")
        for path in sorted(self._directory.glob(self._pattern)):
            if not path.is_file():
                continue
            yield from self._drain_file(path)

    def resume_positions(self) -> dict[Path, CaptureResume]:
        """Snapshot of per-file read positions (for inspection/tests)."""
        return dict(self._positions)

    # ------------------------------------------------------------- internals

    def _drain_file(self, path: Path) -> Iterator["FrameBatch | list[ParsedPacket]"]:
        tel = self._telemetry
        token = self._positions.get(path)
        if token is not None:
            try:
                size = path.stat().st_size
            except OSError:
                return  # raced with deletion; rediscovered next poll if back
            if size < token.offset:
                # Shrunk under a reused name: the writer replaced the file.
                tel.count("ingest.tail.replaced")
                token = None
            elif size == token.offset:
                return  # nothing new since last poll
        try:
            source = open_capture_source(
                path,
                telemetry=tel,
                tolerant=True,  # the newest file routinely ends mid-record
                batch_size=self._batch_size,
                resume=token,
            )
        except ValueError:
            if token is None:
                # Header not fully written yet (or not a capture at all):
                # leave it for a later poll instead of failing the pass.
                tel.count("ingest.tail.not_ready")
                return
            # Resume rejected — format changed under the name: start over.
            tel.count("ingest.tail.replaced")
            self._positions.pop(path, None)
            yield from self._drain_file(path)
            return
        except OSError:
            tel.count("ingest.tail.not_ready")
            return
        if token is None:
            tel.count("ingest.tail.files")
        else:
            tel.count("ingest.tail.resumed")
        try:
            # Raw FrameBatch buffers when the source can produce them
            # (file-backed captures always can): the consumer gets the
            # columnar fast path, and batch boundaries are still record
            # boundaries, so the resume contract below is unchanged.
            frame_batches = getattr(source, "frame_batches", None)
            batches = frame_batches() if frame_batches is not None else source.batches()
            for batch in batches:
                self.packets_emitted += len(batch)
                self.bytes_emitted += (
                    batch.total_caplen
                    if isinstance(batch, FrameBatch)
                    else sum(len(p.raw) for p in batch)
                )
                tel.count("ingest.tail.packets", len(batch))
                # Position saved before the hand-off: when a batch yields,
                # the reader sits exactly at its end, so even a consumer
                # that abandons the generator mid-poll resumes at the first
                # packet it never received — nothing skipped, nothing twice.
                self._positions[path] = source.resume_state()
                yield batch
            self._positions[path] = source.resume_state()
        finally:
            source.close()
