"""The live monitoring daemon: tail → rolling analyzer → windows → export.

Every driver in :mod:`repro.core` is batch-shaped — hand it a finished
capture, get one :class:`~repro.core.pipeline.AnalysisResult`.  This package
is the long-running counterpart the paper's deployment section (§6.2) calls
for: it follows a capture directory a monitor daemon is still writing
(:mod:`repro.service.tail`), feeds a bounded-memory
:class:`~repro.core.rolling.RollingZoomAnalyzer`, folds the event stream
into tumbling per-media/per-meeting windows (:mod:`repro.service.windows`),
and exports them as Prometheus metrics, health probes, and a JSONL window
log (:mod:`repro.service.exporters`).  :mod:`repro.service.runner` is the
supervisor tying the threads together; the ``analyze-live`` CLI subcommand
is its entry point.
"""

from repro.service.runner import ServiceReport, ZoomMonitorService
from repro.service.tail import CaptureDirectoryTailer
from repro.service.windows import MediaWindowStats, WindowAggregator, WindowRecord

__all__ = [
    "CaptureDirectoryTailer",
    "MediaWindowStats",
    "ServiceReport",
    "WindowAggregator",
    "WindowRecord",
    "ZoomMonitorService",
]
