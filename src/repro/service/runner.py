"""The monitoring daemon's supervisor: threads, backpressure, shutdown.

Topology (one arrow = one bounded hand-off)::

    capture dir ──poll── CaptureDirectoryTailer      (ingest thread)
                               │  bounded queue (drop + count when full)
                               ▼
    RollingZoomAnalyzer ── WindowAggregator          (analysis thread)
                               │  closed WindowRecords
                               ▼
    JsonlWindowLog · MetricsHTTPServer · StoreSink   (exporter sinks)

Design decisions an operator should know:

* **Backpressure drops, never buffers without bound.**  If analysis falls
  behind ingest, the queue fills and whole batches are dropped and counted
  (``service.dropped`` packets, ``service.dropped_batches``) — the paper's
  measurement appliance must shed load rather than grow RSS until the OOM
  killer picks a victim.  Dropped packets remain on disk; a later batch
  re-run over the same capture directory recovers them.
* **The ingest thread restarts itself.**  An unexpected exception inside a
  poll (a corrupt file, a transient NFS error) is counted
  (``service.ingest_restarts``) and retried with exponential backoff
  rather than killing the daemon.
* **SIGTERM/SIGINT drain before exiting.**  The queue is flushed, every
  live stream is finalized through one last sweep, and all open windows
  are closed and exported exactly once — ``kill`` then diff is a lossless
  way to end a measurement campaign.
* **Per-meeting QoE state machines ride the same stream events.**  When
  ``config.qoe.enabled`` (the default), a
  :class:`~repro.qoe.MeetingQoeTracker` subscribes to the rolling
  analyzer's event bus, scores tumbling QoE windows per meeting, and
  pre-seeds the ``qoe.*`` alert counters so dashboards can alert on
  ``increase()`` from the zero sample; per-state fleet gauges
  (``qoe.meetings_good`` … ``qoe.meetings_critical``) ride the same
  Prometheus page.
* **History is durable when ``--store`` is given.**  Closed windows and
  finalized streams append to a :class:`~repro.store.MetricsStore` as they
  happen (meeting summaries at drain time); even a SIGKILL loses at most
  the store's torn tail frame, recovered away on the next open.
"""

from __future__ import annotations

import queue
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import ServiceConfig
from repro.core.rolling import RollingZoomAnalyzer
from repro.net.batch import FrameBatch
from repro.protocols import protocol_counter_seeds
from repro.fleet.health import FLEET_COUNTER_SEEDS
from repro.qoe import QOE_COUNTER_SEEDS, MeetingQoeTracker, QoeState
from repro.service.exporters import JsonlWindowLog, MetricsHTTPServer
from repro.service.prometheus import render_metrics
from repro.service.tail import CaptureDirectoryTailer
from repro.service.windows import WindowAggregator, WindowRecord


def _dataplane_counter_seeds() -> tuple:
    from repro.dataplane import DATAPLANE_COUNTER_SEEDS

    return DATAPLANE_COUNTER_SEEDS


@dataclass(frozen=True, slots=True)
class ServiceReport:
    """What one service run did, returned by :meth:`ZoomMonitorService.run`."""

    polls: int
    packets_processed: int
    packets_dropped: int
    batches_dropped: int
    ingest_restarts: int
    windows_emitted: int
    streams_finalized: int
    meetings_formed: int
    qoe_transitions: int = 0
    qoe_alerts: int = 0
    qoe_worst_state: str = "GOOD"
    #: Frames the kernel (or simulated) packet ring dropped before the
    #: analyzer could see them — live-interface mode only, always 0 when
    #: tailing a directory.  Nonzero means the window totals undercount.
    kernel_drops: int = 0


class ZoomMonitorService:
    """Wire tailer → rolling analyzer → aggregator → exporters and run.

    Args:
        directory: The capture directory to follow; may be ``None`` when
            ``config.interface`` selects live-interface mode instead.
        config: A :class:`~repro.core.config.ServiceConfig`; its nested
            analyzer config drives the rolling analyzer unchanged.
        packet_socket: Test hook for interface mode — a pre-built packet
            socket (usually a
            :class:`~repro.dataplane.SimulatedPacketSocket`) used instead
            of opening ``config.interface``.

    In interface mode the ingest side is a
    :class:`~repro.dataplane.LiveInterfaceSource` instead of a directory
    tailer: frames arrive through an ``AF_PACKET`` socket (or its
    simulated stand-in) with the compiled cBPF capture filter attached,
    and everything downstream — queue, backpressure, drain — is shared
    with the directory path.  The source honours the same ``poll()`` /
    ``polls`` contract, so the loop below cannot tell the difference; the
    one addition is that a finite replay socket reports ``exhausted`` and
    stops the service like a drained ``stop_after_polls`` run.

    The constructor builds everything but starts nothing; :meth:`run`
    blocks until :meth:`stop` (or a signal, when requested) and returns a
    :class:`ServiceReport`.  Tests drive it with ``stop_after_polls=``.
    """

    def __init__(
        self,
        directory: "str | Path | None",
        config: ServiceConfig,
        *,
        packet_socket=None,
    ) -> None:
        self.config = config
        self.rolling = RollingZoomAnalyzer(config.analyzer)
        self.telemetry = self.rolling.result.telemetry
        self.interface_mode = config.interface is not None or packet_socket is not None
        if self.interface_mode:
            # Imported lazily: repro.dataplane builds on repro.net and is
            # only needed when capturing live.
            from repro.dataplane import (
                DataplaneFilter,
                LiveInterfaceSource,
                open_packet_socket,
            )

            if packet_socket is None:
                packet_socket = open_packet_socket(config.interface)
            dataplane = DataplaneFilter.from_plugins(self.rolling.analyzer.plugins)
            self.tailer = LiveInterfaceSource(
                packet_socket,
                dataplane=dataplane,
                telemetry=self.telemetry,
                batch_size=config.analyzer.batch_size,
            )
        else:
            if directory is None:
                raise ValueError("directory is required unless an interface is set")
            self.tailer = CaptureDirectoryTailer(
                directory,
                pattern=config.tail_pattern,
                telemetry=self.telemetry,
                batch_size=config.analyzer.batch_size,
            )
        self.aggregator = WindowAggregator(
            self.rolling,
            window_seconds=config.window_seconds,
            lateness=config.watermark_lateness,
            max_open_windows=config.max_open_windows,
            telemetry=self.telemetry,
        )
        self.aggregator.add_callback(self._remember_window)
        self.jsonl: JsonlWindowLog | None = None
        if config.jsonl_path is not None:
            self.jsonl = JsonlWindowLog(
                config.jsonl_path,
                max_bytes=config.jsonl_max_bytes,
                telemetry=self.telemetry,
            )
            self.aggregator.add_callback(self.jsonl.write)
        self.store_sink = None
        if config.store_dir is not None:
            # Imported lazily: repro.store sits above repro.service in the
            # layering (it consumes WindowRecord), so a module-scope import
            # would be circular.
            from repro.store.sink import StoreSink
            from repro.store.store import MetricsStore

            store = MetricsStore(
                config.store_dir, config.store, telemetry=self.telemetry
            )
            self.store_sink = StoreSink(store)
            self.aggregator.add_callback(self.store_sink.write_window)
            self.rolling.on_stream_finalized = self.store_sink.write_stream
        self.http: MetricsHTTPServer | None = None
        if config.listen is not None:
            self.http = MetricsHTTPServer(
                config.listen,
                render_metrics=self.render_metrics,
                healthy=self._healthy,
                ready=self._ready_probe,
                # A store-backed daemon doubles as a fleet query node: the
                # federated plane POSTs StoreQuery payloads here.
                store_query=(
                    self._store_query if self.store_sink is not None else None
                ),
            )
        self.qoe: MeetingQoeTracker | None = None
        if config.qoe is not None and config.qoe.enabled:
            self.qoe = MeetingQoeTracker(
                self.rolling, config.qoe, telemetry=self.telemetry
            )
        # Degradation counters are pre-seeded so the Prometheus endpoint
        # always exposes them — a dashboard alerting on increase() needs
        # the zero sample, not an absent series until the first drop.  The
        # per-protocol claim/media/conflict counters ride the same pattern,
        # one dimension per enabled registry plugin.
        seeds = (
            (
                "service.dropped",
                "service.dropped_batches",
                "service.ingest_restarts",
            )
            + protocol_counter_seeds(
                plugin.name for plugin in self.rolling.analyzer.plugins
            )
            + (QOE_COUNTER_SEEDS if self.qoe is not None else ())
            + (FLEET_COUNTER_SEEDS if self.store_sink is not None else ())
            + (_dataplane_counter_seeds() if self.interface_mode else ())
        )
        for name in seeds:
            self.telemetry.count(name, 0)
        self._queue: queue.Queue[list] = queue.Queue(maxsize=config.queue_max_batches)
        self._stop = threading.Event()
        self._ready = False
        self._flushed = False
        self._last_window: WindowRecord | None = None
        self._ingest_thread: threading.Thread | None = None
        self.packets_processed = 0
        self.packets_dropped = 0
        self.batches_dropped = 0
        self.ingest_restarts = 0

    # ------------------------------------------------------------ lifecycle

    def run(
        self,
        *,
        install_signal_handlers: bool = False,
        stop_after_polls: int | None = None,
    ) -> ServiceReport:
        """Run until :meth:`stop`; returns after the final flush.

        Args:
            install_signal_handlers: Route SIGTERM/SIGINT to :meth:`stop`
                (main thread only — the CLI path).
            stop_after_polls: Stop once the tailer has completed this many
                directory polls and the queue has drained (test hook; the
                daemon default is to run forever).
        """
        previous_handlers = {}
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(signum, self._on_signal)
        if self.http is not None:
            self.http.start()
        self._ingest_thread = threading.Thread(
            target=self._ingest_loop,
            name="repro-ingest",
            args=(stop_after_polls,),
            daemon=True,
        )
        self._ingest_thread.start()
        try:
            self._analysis_loop()
        finally:
            self._shutdown()
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        return self.report()

    def stop(self) -> None:
        """Ask the service to drain and exit (safe from any thread)."""
        self._stop.set()

    def report(self) -> ServiceReport:
        qoe = self.qoe
        return ServiceReport(
            polls=self.tailer.polls,
            packets_processed=self.packets_processed,
            packets_dropped=self.packets_dropped,
            batches_dropped=self.batches_dropped,
            ingest_restarts=self.ingest_restarts,
            windows_emitted=self.aggregator.windows_emitted,
            streams_finalized=self.rolling.streams_evicted,
            meetings_formed=len(self.rolling.result.meetings),
            qoe_transitions=len(qoe.transitions) if qoe is not None else 0,
            qoe_alerts=(
                sum(1 for _, t in qoe.transitions if t.state >= QoeState.IMPAIRED)
                if qoe is not None
                else 0
            ),
            qoe_worst_state=qoe.worst_state().name if qoe is not None else "GOOD",
            kernel_drops=getattr(self.tailer, "kernel_drops", 0),
        )

    # -------------------------------------------------------------- ingest

    def _ingest_loop(self, stop_after_polls: int | None) -> None:
        backoff = self.config.restart_backoff_base
        while not self._stop.is_set():
            try:
                for batch in self.tailer.poll():
                    self._enqueue(batch)
                    if self._stop.is_set():
                        return
                self._ready = True
                backoff = self.config.restart_backoff_base
                if getattr(self.tailer, "exhausted", False):
                    # A finite replay socket ran dry: drain and exit like a
                    # completed stop_after_polls run (the `sim:` CLI path).
                    self._stop.set()
                    return
            except Exception:
                # Crash-restart: a corrupt file or transient I/O error must
                # not take the daemon down.  Counted, backed off, retried.
                self.ingest_restarts += 1
                self.telemetry.count("service.ingest_restarts")
                self._stop.wait(backoff)
                backoff = min(backoff * 2, self.config.restart_backoff_max)
                continue
            if stop_after_polls is not None and self.tailer.polls >= stop_after_polls:
                self._stop.set()
                return
            self._stop.wait(self.config.poll_interval)

    def _enqueue(self, batch: list) -> None:
        try:
            self._queue.put_nowait(batch)
        except queue.Full:
            self.batches_dropped += 1
            self.packets_dropped += len(batch)
            self.telemetry.count("service.dropped", len(batch))
            self.telemetry.count("service.dropped_batches")

    # ------------------------------------------------------------ analysis

    def _analysis_loop(self) -> None:
        while True:
            try:
                batch = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    ingest = self._ingest_thread
                    if ingest is None or not ingest.is_alive():
                        return  # stop requested, producer gone, queue dry
                continue
            self._process(batch)

    def _process(self, batch) -> None:
        rolling = self.rolling
        aggregator = self.aggregator
        if isinstance(batch, FrameBatch) and len(batch):
            # Vectorized path: volume accounting reads the batch's
            # timestamp/caplen columns, then the analyzer takes the whole
            # batch (columnar decode + prefilter) — no ParsedPacket is
            # built for frames the prefilter drops.  Ordering matters:
            # volume first *without* moving the watermark, then the feed
            # (whose stream events must land in still-open windows), then
            # one explicit watermark advance to the batch's end.  Both
            # window totals and per-window stream stats stay exact; windows
            # just close at batch rather than packet granularity.
            prepared = batch.prepared
            if prepared is not None:
                for parsed in prepared:
                    aggregator.observe_volume(parsed.timestamp, len(parsed.raw))
            else:
                timestamps = batch.timestamps
                caplens = batch.caplens
                for i in range(len(caplens)):
                    aggregator.observe_volume(timestamps[i], caplens[i])
            rolling.feed_batch(batch)
            aggregator.advance_watermark(batch.last_timestamp)
            self.packets_processed += len(batch)
            return
        for parsed in batch:
            rolling.feed_parsed(parsed)
            aggregator.observe_packet(parsed.timestamp, len(parsed.raw))
            self.packets_processed += 1

    def _shutdown(self) -> None:
        """Drain, final sweep, close windows exactly once, stop exporters."""
        self._stop.set()
        ingest = self._ingest_thread
        if ingest is not None and ingest.is_alive():
            ingest.join(timeout=10.0)
        while True:  # whatever the ingest thread enqueued before stopping
            try:
                self._process(self._queue.get_nowait())
            except queue.Empty:
                break
        if not self._flushed:
            self._flushed = True
            self.rolling.sweep(float("inf"))  # finalize every live stream
            if self.qoe is not None:
                self.qoe.flush(final=True)  # score tail QoE windows
            self.aggregator.flush(final=True)
            if self.store_sink is not None:
                self.store_sink.write_meetings(self.rolling.result.meetings)
                self.store_sink.store.close()
        if self.interface_mode:
            self.tailer.close()  # release the packet socket
        if self.jsonl is not None:
            self.jsonl.close()
        if self.http is not None:
            self.http.stop()

    # ------------------------------------------------------------ exporters

    def render_metrics(self) -> str:
        """Current Prometheus page (also called by the HTTP thread)."""
        for attempt in (1, 2, 3):
            try:
                snapshot = self.telemetry.snapshot()
                break
            except RuntimeError:
                # The analysis thread resized a dict mid-copy; rare, retry.
                if attempt == 3:
                    raise
                time.sleep(0.001)
        gauges = {
            "service.live_streams": float(self.rolling.live_stream_count()),
            "service.open_windows": float(self.aggregator.open_window_count()),
            "service.queue_depth": float(self._queue.qsize()),
            "service.streams_finalized": float(self.rolling.streams_evicted),
        }
        # Per-protocol live-stream dimensions: every enabled plugin exports
        # a zero gauge from startup, not an absent series until its first
        # claimed stream.
        per_protocol = {
            plugin.name: 0 for plugin in self.rolling.analyzer.plugins
        }
        for stream in self.rolling.result.streams.streams():
            per_protocol[stream.protocol] = per_protocol.get(stream.protocol, 0) + 1
        for name, count in per_protocol.items():
            gauges[f"service.live_streams.{name}"] = float(count)
        if self.qoe is not None:
            summary = self.qoe.fleet_summary()
            for state in QoeState:
                gauges[f"qoe.meetings_{state.name.lower()}"] = float(
                    summary.get(state.name, 0)
                )
        return render_metrics(
            snapshot,
            last_window=self._last_window,
            gauges=gauges,
        )

    def _store_query(self, payload: dict) -> dict:
        """``POST /store/query`` body: run a StoreQuery over the live store.

        Runs on an HTTP handler thread; the store's internal lock makes
        the scan safe against the analysis thread's concurrent appends.
        """
        from repro.store.query import StoreQuery

        self.telemetry.count("fleet.store_queries")
        try:
            query = StoreQuery.from_dict(payload)
            result = self.store_sink.store.query(query)
        except Exception:
            self.telemetry.count("fleet.store_query_errors")
            raise
        self.telemetry.count("fleet.store_query_records", len(result.records))
        return {
            "records": result.records,
            "segments_scanned": result.segments_scanned,
            "segments_skipped": result.segments_skipped,
            "records_examined": result.records_examined,
        }

    def _remember_window(self, window: WindowRecord) -> None:
        self._last_window = window

    def _healthy(self) -> bool:
        ingest = self._ingest_thread
        return ingest is not None and ingest.is_alive()

    def _ready_probe(self) -> bool:
        return self._ready

    def _on_signal(self, signum: int, frame: object) -> None:
        self.stop()
