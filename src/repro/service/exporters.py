"""Operator-facing outputs: JSONL window log and the metrics HTTP endpoint.

Two consumers, two exporters:

* Dashboards/alerting scrape :class:`MetricsHTTPServer` — a stdlib
  ``ThreadingHTTPServer`` on its own daemon thread serving ``/metrics``
  (Prometheus text format, rendered by :mod:`repro.service.prometheus`),
  ``/healthz`` (liveness: the ingest thread is running), and ``/readyz``
  (readiness: at least one directory poll completed).
* Batch/offline tooling reads :class:`JsonlWindowLog` — one JSON object
  per closed window, appended as the window closes, with size-based
  rotation so an unattended deployment cannot fill the disk.  The active
  file stays plain text (tail-able, crash-tolerant); the rotated-out
  predecessor is gzip-compressed (``.jsonl`` → ``.jsonl.1.gz`` — window
  JSON compresses ~10×).  ``repro backfill`` reads both forms.

Both are deliberately dependency-free; the paper's measurement system runs
on a campus network appliance where installing a metrics client library is
exactly the kind of friction passive measurement avoids.
"""

from __future__ import annotations

import gzip
import json
import shutil
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable

from repro.service.windows import WindowRecord
from repro.telemetry.registry import Telemetry


class JsonlWindowLog:
    """Append-only JSONL sink for closed windows, with size rotation.

    Args:
        path: Log file path; the rotated predecessor lives gzip-compressed
            at ``path.1.gz`` (the active file is never compressed, so it
            stays tail-able and survives a mid-write kill as plain torn
            JSONL).
        max_bytes: Rotation threshold — checked *before* each write, so one
            oversized window record never splits across files.
        telemetry: Optional registry (``service.jsonl_windows`` /
            ``service.jsonl_rotations``).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int = 64 * 1024 * 1024,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self.windows_written = 0
        self.rotations = 0
        self._lock = threading.Lock()

    def write(self, window: WindowRecord) -> None:
        line = json.dumps(window.to_dict(), separators=(",", ":"))
        with self._lock:
            if self._file.tell() + len(line) + 1 > self.max_bytes and self._file.tell():
                self._rotate()
            self._file.write(line + "\n")
            self._file.flush()
            self.windows_written += 1
            self._telemetry.count("service.jsonl_windows")

    def _rotate(self) -> None:
        self._file.close()
        # Compress into a temp name and publish with an atomic rename so a
        # kill mid-rotation leaves either the old plain file or the complete
        # .gz, never a half-written archive under the final name.
        rotated = self.path.with_name(self.path.name + ".1.gz")
        tmp = rotated.with_name(rotated.name + ".tmp")
        with open(self.path, "rb") as src, gzip.open(tmp, "wb") as dst:
            shutil.copyfileobj(src, dst)
        tmp.replace(rotated)
        self.path.unlink()
        self._file = open(self.path, "a", encoding="utf-8")
        self.rotations += 1
        self._telemetry.count("service.jsonl_rotations")

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlWindowLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class MetricsHTTPServer:
    """``/metrics`` + ``/healthz`` + ``/readyz`` on a daemon thread.

    Args:
        listen: ``host:port``; port 0 binds an ephemeral port — read the
            actual one back from :attr:`address` (tests and the smoke
            script rely on this).
        render_metrics: Zero-argument callable returning the current
            Prometheus page body.
        healthy / ready: Zero-argument probes; ``False`` answers 503.
        store_query: Optional callable taking a decoded
            :class:`~repro.store.query.StoreQuery` payload dict and
            returning a JSON-serializable result dict; when given, the
            server also answers ``POST /store/query`` — the thin store
            endpoint the fleet's federated query plane fans out to.
    """

    def __init__(
        self,
        listen: str,
        *,
        render_metrics: Callable[[], str],
        healthy: Callable[[], bool] = lambda: True,
        ready: Callable[[], bool] = lambda: True,
        store_query: Callable[[dict], dict] | None = None,
    ) -> None:
        host, _, port_text = listen.rpartition(":")
        if not host or not port_text:
            raise ValueError(f"listen address must be host:port, got {listen!r}")
        handler = _build_handler(render_metrics, healthy, ready, store_query)
        self._server = ThreadingHTTPServer((host, int(port_text)), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port)."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


def _build_handler(
    render_metrics: Callable[[], str],
    healthy: Callable[[], bool],
    ready: Callable[[], bool],
    store_query: Callable[[dict], dict] | None = None,
) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                self._respond(200, render_metrics(), "text/plain; version=0.0.4")
            elif path == "/healthz":
                self._probe(healthy, "ok\n", "ingest thread down\n")
            elif path == "/readyz":
                self._probe(ready, "ready\n", "no poll completed yet\n")
            else:
                self._respond(404, "not found\n", "text/plain")

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
            path = self.path.split("?", 1)[0]
            if path != "/store/query" or store_query is None:
                self._respond(404, "not found\n", "text/plain")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(payload, dict):
                    raise ValueError("query body must be a JSON object")
                result = store_query(payload)
            except (ValueError, TypeError, KeyError) as exc:
                # A malformed or version-skewed query is the caller's
                # problem; anything else propagates as a 500.
                self._respond(400, f"bad query: {exc}\n", "text/plain")
                return
            self._respond(
                200,
                json.dumps(result, separators=(",", ":")),
                "application/json",
            )

        def _probe(self, check: Callable[[], bool], yes: str, no: str) -> None:
            if check():
                self._respond(200, yes, "text/plain")
            else:
                self._respond(503, no, "text/plain")

        def _respond(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, format: str, *args: object) -> None:
            pass  # scrapes every few seconds would flood stderr

    return Handler
