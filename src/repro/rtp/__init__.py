"""Standard real-time protocols: RTP (RFC 3550), RTCP, and STUN (RFC 5389).

Zoom embeds standard RTP and RTCP inside its proprietary encapsulation
(:mod:`repro.zoom`); STUN binding exchanges precede every Zoom peer-to-peer
media flow.  These implementations cover exactly the parts the paper relies
on: full RTP fixed headers with extensions, RTCP sender reports with optional
(empty) SDES, and STUN binding requests/responses.
"""

from repro.rtp.rtp import RTPHeader, RTP_VERSION
from repro.rtp.rtcp import (
    RTCPPacketType,
    RTCPReceiverReport,
    RTCPSdes,
    RTCPSenderReport,
    parse_rtcp_compound,
)
from repro.rtp.stun import (
    STUN_BINDING_REQUEST,
    STUN_BINDING_RESPONSE,
    STUN_MAGIC_COOKIE,
    STUN_PORT,
    StunMessage,
    is_stun,
)

__all__ = [
    "RTPHeader",
    "RTP_VERSION",
    "RTCPPacketType",
    "RTCPReceiverReport",
    "RTCPSdes",
    "RTCPSenderReport",
    "parse_rtcp_compound",
    "STUN_BINDING_REQUEST",
    "STUN_BINDING_RESPONSE",
    "STUN_MAGIC_COOKIE",
    "STUN_PORT",
    "StunMessage",
    "is_stun",
]
