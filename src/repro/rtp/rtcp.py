"""RTCP sender reports, receiver reports, and SDES (RFC 3550 §6).

The paper observes that Zoom emits one RTCP sender report (SR) per media
stream per second, sometimes followed by an *empty* SDES chunk, and never
emits receiver reports on the wire (§4.2.1, §4.2.3).  The emulator uses
:class:`RTCPSenderReport` to reproduce that behaviour and the analyzer parses
compound packets back with :func:`parse_rtcp_compound`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.rtp.rtp import RTP_VERSION

NTP_EPOCH_OFFSET = 2208988800
"""Seconds between the NTP epoch (1900) and the Unix epoch (1970)."""


class RTCPPacketType(enum.IntEnum):
    """RTCP packet types relevant to Zoom traffic."""

    SENDER_REPORT = 200
    RECEIVER_REPORT = 201
    SDES = 202
    BYE = 203
    APP = 204


def ntp_from_unix(unix_time: float) -> tuple[int, int]:
    """Convert a Unix timestamp to (NTP seconds, NTP fraction)."""
    seconds = int(unix_time) + NTP_EPOCH_OFFSET
    fraction = int((unix_time - int(unix_time)) * (1 << 32)) & 0xFFFFFFFF
    return seconds & 0xFFFFFFFF, fraction


def unix_from_ntp(ntp_seconds: int, ntp_fraction: int) -> float:
    """Convert (NTP seconds, NTP fraction) back to a Unix timestamp."""
    return ntp_seconds - NTP_EPOCH_OFFSET + ntp_fraction / (1 << 32)


@dataclass(frozen=True, slots=True)
class ReportBlock:
    """A reception report block (RFC 3550 §6.4.1)."""

    ssrc: int
    fraction_lost: int = 0
    cumulative_lost: int = 0
    highest_sequence: int = 0
    jitter: int = 0
    last_sr: int = 0
    delay_since_last_sr: int = 0

    BLOCK_LEN = 24

    def serialize(self) -> bytes:
        lost = self.cumulative_lost & 0xFFFFFF
        return struct.pack(
            "!IIIIII",
            self.ssrc,
            (self.fraction_lost << 24) | lost,
            self.highest_sequence,
            self.jitter,
            self.last_sr,
            self.delay_since_last_sr,
        )

    @classmethod
    def parse(cls, data: bytes) -> "ReportBlock":
        if len(data) < cls.BLOCK_LEN:
            raise ValueError("buffer too short for RTCP report block")
        ssrc, loss_word, highest, jitter, last_sr, dlsr = struct.unpack_from(
            "!IIIIII", data, 0
        )
        return cls(
            ssrc=ssrc,
            fraction_lost=loss_word >> 24,
            cumulative_lost=loss_word & 0xFFFFFF,
            highest_sequence=highest,
            jitter=jitter,
            last_sr=last_sr,
            delay_since_last_sr=dlsr,
        )


@dataclass(frozen=True, slots=True)
class RTCPSenderReport:
    """An RTCP sender report (SR).

    Attributes:
        ssrc: Sender's SSRC — the same value used on the RTP stream, which is
            the key the paper exploits to find RTCP inside Zoom payloads.
        ntp_seconds / ntp_fraction: Wall-clock sampling instant in NTP format.
        rtp_timestamp: RTP timestamp corresponding to the NTP instant.
        packet_count / octet_count: Cumulative sender statistics.
        report_blocks: Reception reports (empty for Zoom senders).
    """

    ssrc: int
    ntp_seconds: int
    ntp_fraction: int
    rtp_timestamp: int
    packet_count: int
    octet_count: int
    report_blocks: tuple[ReportBlock, ...] = field(default=())

    packet_type = RTCPPacketType.SENDER_REPORT

    @property
    def ntp_unix_time(self) -> float:
        """The wall-clock time of this report as a Unix timestamp."""
        return unix_from_ntp(self.ntp_seconds, self.ntp_fraction)

    def serialize(self) -> bytes:
        body = struct.pack(
            "!IIIIII",
            self.ssrc,
            self.ntp_seconds,
            self.ntp_fraction,
            self.rtp_timestamp,
            self.packet_count,
            self.octet_count,
        ) + b"".join(block.serialize() for block in self.report_blocks)
        length_words = len(body) // 4  # header word not counted
        first = (RTP_VERSION << 6) | len(self.report_blocks)
        return struct.pack("!BBH", first, self.packet_type, length_words) + body

    @classmethod
    def parse(cls, data: bytes) -> tuple["RTCPSenderReport", int]:
        header, count, total_len = _parse_common_header(
            data, RTCPPacketType.SENDER_REPORT
        )
        if len(data) < 28 + count * ReportBlock.BLOCK_LEN:
            raise ValueError("buffer too short for RTCP SR body")
        ssrc, ntp_s, ntp_f, rtp_ts, pkts, octets = struct.unpack_from("!IIIIII", data, 4)
        blocks = tuple(
            ReportBlock.parse(data[28 + i * ReportBlock.BLOCK_LEN :])
            for i in range(count)
        )
        return (
            cls(
                ssrc=ssrc,
                ntp_seconds=ntp_s,
                ntp_fraction=ntp_f,
                rtp_timestamp=rtp_ts,
                packet_count=pkts,
                octet_count=octets,
                report_blocks=blocks,
            ),
            total_len,
        )


@dataclass(frozen=True, slots=True)
class RTCPReceiverReport:
    """An RTCP receiver report (RR).

    Zoom never emits these on the wire (the paper searched and found none);
    the implementation exists so the analyzer can prove their absence and so
    the test suite can exercise the negative path.
    """

    ssrc: int
    report_blocks: tuple[ReportBlock, ...] = field(default=())

    packet_type = RTCPPacketType.RECEIVER_REPORT

    def serialize(self) -> bytes:
        body = struct.pack("!I", self.ssrc) + b"".join(
            block.serialize() for block in self.report_blocks
        )
        first = (RTP_VERSION << 6) | len(self.report_blocks)
        return struct.pack("!BBH", first, self.packet_type, len(body) // 4) + body

    @classmethod
    def parse(cls, data: bytes) -> tuple["RTCPReceiverReport", int]:
        _header, count, total_len = _parse_common_header(
            data, RTCPPacketType.RECEIVER_REPORT
        )
        if len(data) < 8 + count * ReportBlock.BLOCK_LEN:
            raise ValueError("buffer too short for RTCP RR body")
        (ssrc,) = struct.unpack_from("!I", data, 4)
        blocks = tuple(
            ReportBlock.parse(data[8 + i * ReportBlock.BLOCK_LEN :]) for i in range(count)
        )
        return cls(ssrc=ssrc, report_blocks=blocks), total_len


@dataclass(frozen=True, slots=True)
class RTCPSdes:
    """An RTCP source-description packet.

    Zoom's SDES chunks are always empty (§4.2.3): one chunk carrying the SSRC
    and a terminating zero item, nothing else.  ``items`` maps SDES item type
    to value for the single chunk.
    """

    ssrc: int
    items: tuple[tuple[int, bytes], ...] = field(default=())

    packet_type = RTCPPacketType.SDES

    def serialize(self) -> bytes:
        chunk = struct.pack("!I", self.ssrc)
        for item_type, value in self.items:
            chunk += bytes([item_type, len(value)]) + value
        chunk += b"\x00"  # end of items
        chunk += b"\x00" * ((-len(chunk)) % 4)  # pad chunk to 32-bit boundary
        first = (RTP_VERSION << 6) | 1  # one chunk
        return struct.pack("!BBH", first, self.packet_type, len(chunk) // 4) + chunk

    @classmethod
    def parse(cls, data: bytes) -> tuple["RTCPSdes", int]:
        _header, chunk_count, total_len = _parse_common_header(data, RTCPPacketType.SDES)
        if chunk_count != 1:
            raise ValueError(f"only single-chunk SDES supported, got {chunk_count}")
        if len(data) < 8:
            raise ValueError("buffer too short for SDES chunk")
        (ssrc,) = struct.unpack_from("!I", data, 4)
        items: list[tuple[int, bytes]] = []
        pos = 8
        while pos < total_len:
            item_type = data[pos]
            if item_type == 0:
                break
            length = data[pos + 1]
            items.append((item_type, bytes(data[pos + 2 : pos + 2 + length])))
            pos += 2 + length
        return cls(ssrc=ssrc, items=tuple(items)), total_len

    @property
    def is_empty(self) -> bool:
        """True when the SDES carries no items — the only kind Zoom sends."""
        return not self.items


def _parse_common_header(data: bytes, expected_type: int) -> tuple[int, int, int]:
    """Validate the 4-byte RTCP common header.

    Returns (first byte, count field, total packet length in bytes).
    """
    if len(data) < 4:
        raise ValueError("buffer too short for RTCP header")
    first, packet_type, length_words = struct.unpack_from("!BBH", data, 0)
    if first >> 6 != RTP_VERSION:
        raise ValueError(f"not RTCP (version={first >> 6})")
    if packet_type != expected_type:
        raise ValueError(f"expected RTCP type {expected_type}, got {packet_type}")
    total_len = 4 * (length_words + 1)
    if len(data) < total_len:
        raise ValueError("buffer too short for stated RTCP length")
    return first, first & 0x1F, total_len


RTCPPacket = RTCPSenderReport | RTCPReceiverReport | RTCPSdes


def parse_rtcp_compound(data: bytes) -> list[RTCPPacket]:
    """Parse a compound RTCP packet into its constituent reports.

    Zoom sends either a lone SR or an SR immediately followed by an (empty)
    SDES (media-encapsulation types 33 and 34 respectively, Table 2).
    Unknown RTCP packet types are skipped using their stated length.
    """
    packets: list[RTCPPacket] = []
    pos = 0
    while pos + 4 <= len(data):
        first, packet_type, length_words = struct.unpack_from("!BBH", data, pos)
        if first >> 6 != RTP_VERSION:
            break
        total_len = 4 * (length_words + 1)
        if pos + total_len > len(data):
            break
        chunk = data[pos : pos + total_len]
        try:
            if packet_type == RTCPPacketType.SENDER_REPORT:
                packets.append(RTCPSenderReport.parse(chunk)[0])
            elif packet_type == RTCPPacketType.RECEIVER_REPORT:
                packets.append(RTCPReceiverReport.parse(chunk)[0])
            elif packet_type == RTCPPacketType.SDES:
                packets.append(RTCPSdes.parse(chunk)[0])
        except ValueError:
            break
        pos += total_len
    return packets
