"""RTP fixed header (RFC 3550 §5.1) with header-extension support.

The paper's analyzer locates RTP headers inside Zoom packets and then uses
the sequence number, timestamp, SSRC, payload type, and marker bit for every
downstream metric, so a faithful, round-trippable implementation matters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

RTP_VERSION = 2


@dataclass(frozen=True, slots=True)
class RTPHeader:
    """An RTP fixed header plus optional extension (profile 0xBEDE etc.).

    Attributes:
        payload_type: 7-bit RTP payload type (Zoom: 98/99/110/112/113).
        sequence: 16-bit packet sequence number, per sub-stream.
        timestamp: 32-bit media timestamp in sampling-rate units.
        ssrc: 32-bit synchronization source identifier.
        marker: Marker bit; Zoom sets it on the last packet of a frame.
        padding: RTP padding bit.
        csrcs: Contributing sources; always empty in Zoom traffic (§4.2.3).
        extension_profile: 16-bit profile of the header extension, or ``None``
            when the extension bit is clear.
        extension_data: Extension body, length a multiple of 4.
    """

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    marker: bool = False
    padding: bool = False
    csrcs: tuple[int, ...] = field(default=())
    extension_profile: int | None = None
    extension_data: bytes = b""

    FIXED_LEN = 12

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= 127:
            raise ValueError(f"payload type out of range: {self.payload_type}")
        if not 0 <= self.sequence <= 0xFFFF:
            raise ValueError(f"sequence out of range: {self.sequence}")
        if not 0 <= self.timestamp <= 0xFFFFFFFF:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.ssrc <= 0xFFFFFFFF:
            raise ValueError(f"SSRC out of range: {self.ssrc}")
        if len(self.csrcs) > 15:
            raise ValueError("at most 15 CSRCs allowed")
        if self.extension_profile is not None and len(self.extension_data) % 4:
            raise ValueError("extension data length must be a multiple of 4")

    @property
    def header_len(self) -> int:
        """On-wire length of the header including CSRCs and extension."""
        length = self.FIXED_LEN + 4 * len(self.csrcs)
        if self.extension_profile is not None:
            length += 4 + len(self.extension_data)
        return length

    def serialize(self) -> bytes:
        """Encode to wire format."""
        first = (
            (RTP_VERSION << 6)
            | (int(self.padding) << 5)
            | (int(self.extension_profile is not None) << 4)
            | len(self.csrcs)
        )
        second = (int(self.marker) << 7) | self.payload_type
        out = struct.pack(
            "!BBHII", first, second, self.sequence, self.timestamp, self.ssrc
        )
        for csrc in self.csrcs:
            out += struct.pack("!I", csrc)
        if self.extension_profile is not None:
            out += struct.pack(
                "!HH", self.extension_profile, len(self.extension_data) // 4
            )
            out += self.extension_data
        return out

    @classmethod
    def parse(cls, data: bytes) -> tuple["RTPHeader", int]:
        """Decode from wire format; returns the header and payload offset."""
        if len(data) < cls.FIXED_LEN:
            raise ValueError(f"buffer too short for RTP: {len(data)} bytes")
        first, second, sequence, timestamp, ssrc = struct.unpack_from("!BBHII", data, 0)
        version = first >> 6
        if version != RTP_VERSION:
            raise ValueError(f"not RTP (version={version})")
        padding = bool(first & 0x20)
        has_extension = bool(first & 0x10)
        csrc_count = first & 0x0F
        marker = bool(second & 0x80)
        payload_type = second & 0x7F
        offset = cls.FIXED_LEN
        if len(data) < offset + 4 * csrc_count:
            raise ValueError("buffer too short for CSRC list")
        csrcs = tuple(
            struct.unpack_from("!I", data, offset + 4 * i)[0] for i in range(csrc_count)
        )
        offset += 4 * csrc_count
        extension_profile: int | None = None
        extension_data = b""
        if has_extension:
            if len(data) < offset + 4:
                raise ValueError("buffer too short for RTP extension header")
            extension_profile, ext_words = struct.unpack_from("!HH", data, offset)
            offset += 4
            if len(data) < offset + 4 * ext_words:
                raise ValueError("buffer too short for RTP extension body")
            extension_data = bytes(data[offset : offset + 4 * ext_words])
            offset += 4 * ext_words
        header = cls(
            payload_type=payload_type,
            sequence=sequence,
            timestamp=timestamp,
            ssrc=ssrc,
            marker=marker,
            padding=padding,
            csrcs=csrcs,
            extension_profile=extension_profile,
            extension_data=extension_data,
        )
        return header, offset


def looks_like_rtp(data: bytes) -> bool:
    """Cheap plausibility check used when scanning for RTP at unknown offsets.

    Verifies the version bits, that the CSRC list and any extension fit in the
    buffer, and that the payload type is not in the RTCP packet-type range
    (72-76 map to RTCP types 200-204 when the marker bit is set).
    """
    if len(data) < RTPHeader.FIXED_LEN:
        return False
    if data[0] >> 6 != RTP_VERSION:
        return False
    payload_type = data[1] & 0x7F
    if 72 <= payload_type <= 76:
        return False
    csrc_count = data[0] & 0x0F
    needed = RTPHeader.FIXED_LEN + 4 * csrc_count
    if bool(data[0] & 0x10):
        if len(data) < needed + 4:
            return False
        (ext_words,) = struct.unpack_from("!H", data, needed + 2)
        needed += 4 + 4 * ext_words
    return len(data) >= needed
