"""STUN binding messages (RFC 5389), as used by Zoom's P2P establishment.

Before a Zoom two-party meeting switches to a direct peer-to-peer media flow,
each client exchanges cleartext STUN binding requests with a Zoom zone
controller on UDP port 3478, *from the ephemeral port the later P2P media
flow will use* (§4.1, Figure 2).  The P2P detector keys off exactly this.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

STUN_PORT = 3478
STUN_MAGIC_COOKIE = 0x2112A442

STUN_BINDING_REQUEST = 0x0001
STUN_BINDING_RESPONSE = 0x0101
STUN_BINDING_ERROR = 0x0111

ATTR_MAPPED_ADDRESS = 0x0001
ATTR_USERNAME = 0x0006
ATTR_XOR_MAPPED_ADDRESS = 0x0020
ATTR_SOFTWARE = 0x8022

HEADER_LEN = 20


@dataclass(frozen=True, slots=True)
class StunMessage:
    """A STUN message: type, 96-bit transaction ID, and raw attributes.

    Attributes are kept as (type, value) pairs; values are the raw attribute
    bytes without padding.  XOR-MAPPED-ADDRESS helpers are provided because
    they are the only attribute the detector ever inspects.
    """

    message_type: int
    transaction_id: bytes
    attributes: tuple[tuple[int, bytes], ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.transaction_id) != 12:
            raise ValueError("STUN transaction ID must be 12 bytes")

    @property
    def is_request(self) -> bool:
        return self.message_type == STUN_BINDING_REQUEST

    @property
    def is_response(self) -> bool:
        return self.message_type == STUN_BINDING_RESPONSE

    def serialize(self) -> bytes:
        """Encode to wire format with 4-byte attribute padding."""
        body = b""
        for attr_type, value in self.attributes:
            body += struct.pack("!HH", attr_type, len(value)) + value
            body += b"\x00" * ((-len(value)) % 4)
        return (
            struct.pack("!HHI", self.message_type, len(body), STUN_MAGIC_COOKIE)
            + self.transaction_id
            + body
        )

    @classmethod
    def parse(cls, data: bytes) -> "StunMessage":
        """Decode from wire format; raises ``ValueError`` on anything that is
        not a plausible STUN message."""
        if len(data) < HEADER_LEN:
            raise ValueError("buffer too short for STUN header")
        message_type, length, cookie = struct.unpack_from("!HHI", data, 0)
        if message_type >> 14:  # two most significant bits must be zero
            raise ValueError("not STUN (leading bits set)")
        if cookie != STUN_MAGIC_COOKIE:
            raise ValueError("not STUN (bad magic cookie)")
        if len(data) < HEADER_LEN + length:
            raise ValueError("buffer too short for stated STUN length")
        transaction_id = bytes(data[8:20])
        attributes: list[tuple[int, bytes]] = []
        pos = HEADER_LEN
        end = HEADER_LEN + length
        while pos + 4 <= end:
            attr_type, attr_len = struct.unpack_from("!HH", data, pos)
            pos += 4
            if pos + attr_len > end:
                raise ValueError("truncated STUN attribute")
            attributes.append((attr_type, bytes(data[pos : pos + attr_len])))
            pos += attr_len + ((-attr_len) % 4)
        return cls(message_type, transaction_id, tuple(attributes))

    def xor_mapped_address(self) -> tuple[str, int] | None:
        """Decode the XOR-MAPPED-ADDRESS attribute, if present."""
        for attr_type, value in self.attributes:
            if attr_type == ATTR_XOR_MAPPED_ADDRESS and len(value) >= 8:
                family = value[1]
                port = struct.unpack_from("!H", value, 2)[0] ^ (STUN_MAGIC_COOKIE >> 16)
                if family == 0x01:  # IPv4
                    (raw,) = struct.unpack_from("!I", value, 4)
                    addr = raw ^ STUN_MAGIC_COOKIE
                    return (
                        ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0)),
                        port,
                    )
        return None

    @classmethod
    def binding_request(cls, transaction_id: bytes) -> "StunMessage":
        """Build a minimal binding request like the ones Zoom clients emit."""
        return cls(STUN_BINDING_REQUEST, transaction_id)

    @classmethod
    def binding_response(
        cls, transaction_id: bytes, mapped_ip: str, mapped_port: int
    ) -> "StunMessage":
        """Build a binding response carrying XOR-MAPPED-ADDRESS."""
        packed = 0
        for part in mapped_ip.split("."):
            packed = (packed << 8) | int(part)
        value = struct.pack(
            "!BBHI",
            0,
            0x01,
            mapped_port ^ (STUN_MAGIC_COOKIE >> 16),
            packed ^ STUN_MAGIC_COOKIE,
        )
        return cls(
            STUN_BINDING_RESPONSE,
            transaction_id,
            ((ATTR_XOR_MAPPED_ADDRESS, value),),
        )


def is_stun(payload: bytes) -> bool:
    """Cheap check whether a UDP payload is a STUN message."""
    if len(payload) < HEADER_LEN:
        return False
    if payload[0] >> 6:  # leading two bits must be zero
        return False
    (cookie,) = struct.unpack_from("!I", payload, 4)
    if cookie != STUN_MAGIC_COOKIE:
        return False
    (length,) = struct.unpack_from("!H", payload, 2)
    return len(payload) >= HEADER_LEN + length
