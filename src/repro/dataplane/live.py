"""Live NIC ingestion: ``AF_PACKET`` behind the ``PacketSource`` protocol.

This is where the software dataplane touches an actual wire.  Three
pieces:

* :class:`AFPacketSocket` — a raw ``AF_PACKET`` socket bound to one
  interface, with the compiled cBPF program attached via
  ``SO_ATTACH_FILTER`` and kernel drop accounting read from
  ``PACKET_STATISTICS`` (the kernel zeroes those counters on every read,
  so the class accumulates).  Requires ``CAP_NET_RAW``.
* :class:`SimulatedPacketSocket` — the same surface with no kernel and no
  privileges: frames are injected (or pulled from a replay capture), the
  attached program runs through the pure-Python cBPF interpreter, and a
  bounded ring drops on overflow exactly like a kernel ring would.  Every
  dataplane path — filtering, drop accounting, recompile-and-reattach —
  is testable in CI with this backend; ``--interface sim:<capture>`` runs
  it from the CLI.
* :class:`LiveInterfaceSource` — adapts either socket to the existing
  :class:`~repro.net.source.PacketSource` protocol *and* to the service
  runner's tailer contract (a bounded synchronous :meth:`poll` plus a
  ``polls`` counter), so :class:`~repro.service.runner.ZoomMonitorService`
  ingests from a NIC through the exact code path it uses for a capture
  directory.

The filtering story is layered (§6.1's Tofino, in software):

1. the cBPF program drops provable background **in the kernel** (or the
   simulated ring) — those frames never reach Python;
2. the raw-bytes :class:`~repro.dataplane.rawfilter.RawFrameFilter` drops
   the rest pre-batch — sharing rule state with the prefilter, it also
   *sniffs* STUN cookies, which is how new P2P endpoints are learned;
3. when the shared endpoint set has grown (its own sniff or a detector
   tracker fold-in), the source recompiles and re-attaches the kernel
   program at the next poll boundary — the dynamic-rules loop the paper's
   control plane runs against the switch.
"""

from __future__ import annotations

import collections
import socket as socket_module
import struct
import time
from pathlib import Path
from typing import Iterable, Iterator

from repro.dataplane.cbpf import CBPFProgram, run_cbpf
from repro.dataplane.compiler import CaptureRules, compile_cbpf
from repro.dataplane.rawfilter import RawFrameFilter
from repro.net.batch import BatchPrefilter, FrameBatch, FrameBatchBuilder
from repro.net.source import DEFAULT_BATCH_SIZE, PacketSourceBase
from repro.telemetry.registry import Telemetry

__all__ = [
    "DataplaneFilter",
    "SimulatedPacketSocket",
    "AFPacketSocket",
    "LiveInterfaceSource",
    "open_packet_socket",
    "SIM_INTERFACE_PREFIX",
]

#: ``--interface sim:<capture>`` replays a capture through the simulated
#: socket — the no-root path for tests, demos, and CI.
SIM_INTERFACE_PREFIX = "sim:"

# <linux/if_ether.h> / <linux/if_packet.h> — not exposed by the socket
# module on all Pythons, so spelled out.
_ETH_P_ALL = 0x0003
_SOL_PACKET = 263
_PACKET_STATISTICS = 6
_SO_ATTACH_FILTER = 26
_SO_DETACH_FILTER = 27


class DataplaneFilter:
    """One rule state driving all three filter tiers.

    Owns the :class:`BatchPrefilter` (the columnar tier and the rule
    *store*), wraps it in a :class:`RawFrameFilter` (the pre-decode
    tier), and compiles cBPF snapshots of it on demand (the kernel tier).
    ``needs_recompile`` is a cheap growth check — the pass-set never
    shrinks, so a size delta is exactly "the rules changed".
    """

    def __init__(
        self,
        prefilter: BatchPrefilter,
        *,
        stun_trackers: Iterable = (),
        max_endpoints: int | None = None,
    ) -> None:
        self.prefilter = prefilter
        self.raw = RawFrameFilter(prefilter)
        self.stun_trackers = tuple(stun_trackers)
        self._max_endpoints = max_endpoints
        self._compiled_count: int | None = None

    @classmethod
    def from_plugins(cls, plugins: Iterable, **kwargs) -> "DataplaneFilter":
        plugins = tuple(plugins)
        trackers = [t for plugin in plugins for t in plugin.stun_trackers]
        return cls(
            BatchPrefilter.from_plugins(plugins), stun_trackers=trackers, **kwargs
        )

    def sync(self) -> None:
        """Fold every tracker's learned endpoints into the shared pass-set.

        Trackers are mutated on the analysis thread while this runs on the
        ingest thread; :meth:`StunTracker.endpoints` copies a dict's keys,
        which can race a concurrent resize.  A torn read is retried at the
        next poll rather than crashing ingest.
        """
        for tracker in self.stun_trackers:
            try:
                self.prefilter.sync_stun(tracker)
            except RuntimeError:
                continue

    def needs_recompile(self) -> bool:
        return self._compiled_count != self.prefilter.endpoint_count

    def compile(self) -> CBPFProgram:
        """Compile the current rule snapshot to cBPF."""
        rules = CaptureRules.from_prefilter(self.prefilter)
        self._compiled_count = len(rules.endpoints)
        if self._max_endpoints is not None:
            return compile_cbpf(rules, max_endpoints=self._max_endpoints)
        return compile_cbpf(rules)


class SimulatedPacketSocket:
    """A kernel-free ``AF_PACKET`` stand-in with real drop semantics.

    Frames enter through :meth:`inject` (tests) or a pull-based replay
    iterator (:meth:`replay`); the attached cBPF program filters them via
    the reference interpreter *before* the ring, and a full ring drops —
    mirroring where a kernel socket filters and drops.  Statistics follow
    ``PACKET_STATISTICS`` semantics: ``tp_packets`` counts frames that
    passed the filter (delivered *or* ring-dropped), ``tp_drops`` the
    ring overflows.

    Replay pulls ``chunk`` frames into the ring per :meth:`recv_batch`
    refill; a ``chunk`` larger than ``ring_capacity`` therefore forces
    deterministic overload — the smoke test's forced-drop run.
    """

    def __init__(
        self,
        frames: Iterable[tuple[float, bytes]] = (),
        *,
        ring_capacity: int = 8192,
        chunk: int = 256,
    ) -> None:
        if ring_capacity < 1 or chunk < 1:
            raise ValueError("ring_capacity and chunk must be >= 1")
        self._ring: collections.deque = collections.deque()
        self._ring_capacity = ring_capacity
        self._chunk = chunk
        self._replay = iter(frames)
        self._replay_done = False
        self._program: CBPFProgram | None = None
        self.injected = 0
        self.filtered = 0  # rejected by the attached program
        self.tp_packets = 0  # passed the filter (kernel-visible)
        self.tp_drops = 0  # ring overflow
        self.closed = False

    @classmethod
    def replay(
        cls, path: "str | Path", *, ring_capacity: int = 8192, chunk: int = 256
    ) -> "SimulatedPacketSocket":
        """Replay a capture file (lazily) through the simulated ring."""
        from repro.net.source import open_capture_source

        def frames() -> Iterator[tuple[float, bytes]]:
            with open_capture_source(path) as source:
                for batch in source.frame_batches():
                    for raw, ts in batch.iter_frames():
                        yield ts, bytes(raw)

        return cls(frames(), ring_capacity=ring_capacity, chunk=chunk)

    # ------------------------------------------------------- socket surface

    def attach_filter(self, program: CBPFProgram) -> None:
        program.validate()
        self._program = program

    def detach_filter(self) -> None:
        self._program = None

    def inject(self, timestamp: float, frame: bytes) -> bool:
        """Offer one frame to the socket; returns True if it was ringed."""
        self.injected += 1
        if self._program is not None and run_cbpf(self._program, frame) == 0:
            self.filtered += 1
            return False
        self.tp_packets += 1
        if len(self._ring) >= self._ring_capacity:
            self.tp_drops += 1
            return False
        self._ring.append((timestamp, frame))
        return True

    def mark_eof(self) -> None:
        self._replay_done = True

    def _refill(self) -> None:
        if self._replay_done:
            return
        for _ in range(self._chunk):
            try:
                timestamp, frame = next(self._replay)
            except StopIteration:
                self._replay_done = True
                return
            self.inject(timestamp, frame)

    def recv_batch(self, max_frames: int) -> list[tuple[float, bytes]]:
        """Up to ``max_frames`` ringed frames (empty at EOF / nothing ready)."""
        if not self._ring:
            self._refill()
        out = []
        ring = self._ring
        while ring and len(out) < max_frames:
            out.append(ring.popleft())
        return out

    @property
    def exhausted(self) -> bool:
        """True once the replay stream is done and the ring is drained."""
        return self._replay_done and not self._ring

    def stats(self) -> tuple[int, int]:
        """Cumulative ``(tp_packets, tp_drops)``."""
        return self.tp_packets, self.tp_drops

    def close(self) -> None:
        self.closed = True
        self._ring.clear()
        self._replay_done = True


class AFPacketSocket:
    """A real ``AF_PACKET`` capture socket on one interface.

    Needs ``CAP_NET_RAW`` (the constructor's ``PermissionError`` is the
    caller's signal to fall back or skip).  ``PACKET_STATISTICS`` resets
    on every read, so :meth:`stats` accumulates into monotonic totals —
    the same shape the simulated socket reports.
    """

    def __init__(self, interface: str, *, recv_bufsize: int = 65535) -> None:
        self.interface = interface
        self._bufsize = recv_bufsize
        self._sock = socket_module.socket(
            socket_module.AF_PACKET,
            socket_module.SOCK_RAW,
            socket_module.htons(_ETH_P_ALL),
        )
        try:
            self._sock.bind((interface, 0))
            self._sock.setblocking(False)
        except OSError:
            self._sock.close()
            raise
        self._tp_packets = 0
        self._tp_drops = 0
        self.closed = False

    @property
    def exhausted(self) -> bool:
        return False  # a NIC never runs out

    def attach_filter(self, program: CBPFProgram) -> None:
        """``SO_ATTACH_FILTER`` with a packed ``sock_fprog``.

        The kernel copies the instruction array during ``setsockopt``, so
        the ctypes buffer only has to outlive this call.
        """
        import ctypes

        program.validate()
        packed = program.pack()
        buf = ctypes.create_string_buffer(packed, len(packed))
        # struct sock_fprog { unsigned short len; struct sock_filter *p; }
        # — native alignment pads the short up to the pointer.
        fprog = struct.pack("HL", len(program), ctypes.addressof(buf))
        self._sock.setsockopt(socket_module.SOL_SOCKET, _SO_ATTACH_FILTER, fprog)

    def detach_filter(self) -> None:
        try:
            self._sock.setsockopt(socket_module.SOL_SOCKET, _SO_DETACH_FILTER, 0)
        except OSError:
            pass  # no filter attached

    def recv_batch(self, max_frames: int) -> list[tuple[float, bytes]]:
        """Drain up to ``max_frames`` immediately-available frames."""
        out = []
        recv = self._sock.recv
        bufsize = self._bufsize
        while len(out) < max_frames:
            try:
                frame = recv(bufsize)
            except (BlockingIOError, InterruptedError):
                break
            if frame:
                out.append((time.time(), frame))
        return out

    def stats(self) -> tuple[int, int]:
        """Cumulative ``(tp_packets, tp_drops)`` across resets."""
        try:
            raw = self._sock.getsockopt(_SOL_PACKET, _PACKET_STATISTICS, 8)
            packets, drops = struct.unpack("II", raw)
        except OSError:
            packets = drops = 0
        self._tp_packets += packets
        self._tp_drops += drops
        return self._tp_packets, self._tp_drops

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._sock.close()


def open_packet_socket(interface: str, **sim_options):
    """Dispatch an interface name to the right socket backend.

    ``sim:<capture-path>`` opens a :class:`SimulatedPacketSocket` replay
    (no privileges needed); anything else is a real NIC name.
    """
    if interface.startswith(SIM_INTERFACE_PREFIX):
        path = interface[len(SIM_INTERFACE_PREFIX):]
        return SimulatedPacketSocket.replay(path, **sim_options)
    return AFPacketSocket(interface)


class LiveInterfaceSource(PacketSourceBase):
    """A packet socket as a :class:`PacketSource` *and* a tailer.

    The service runner's ingest loop speaks the
    :class:`~repro.service.tail.CaptureDirectoryTailer` contract — a
    bounded synchronous :meth:`poll` yielding batches, plus ``polls`` —
    and this class implements the same contract over a socket, so the
    daemon's backpressure, crash-restart, and drain logic apply unchanged
    to live capture.  Batch analyzers can instead consume
    :meth:`frame_batches`, which polls until the socket is exhausted
    (simulated replay) — a NIC-backed source never exhausts and belongs
    under the service runner.

    Per poll: receive up to ``max_frames_per_poll`` frames, drop through
    the raw-bytes tier (tier 0.5; the kernel program already dropped tier
    0), pack survivors into :class:`FrameBatch` buffers, fold kernel drop
    deltas into telemetry, and — when the rule state grew — recompile and
    re-attach the kernel program for the *next* frames.
    """

    def __init__(
        self,
        socket,
        *,
        dataplane: DataplaneFilter | None = None,
        attach_filter: bool = True,
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_frames_per_poll: int = 65536,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        self.socket = socket
        self.dataplane = dataplane
        self._attach = attach_filter and dataplane is not None
        self.polls = 0
        self.kernel_packets = 0
        self.kernel_drops = 0
        self.recompiles = 0
        self.frames_filtered = 0
        self._max_frames_per_poll = max_frames_per_poll
        if self._attach:
            self._recompile()

    # --------------------------------------------------------------- filter

    def _recompile(self) -> None:
        program = self.dataplane.compile()
        self.socket.attach_filter(program)
        self.recompiles += 1
        self._telemetry.count("dataplane.recompiles")
        if program.meta.get("saturated"):
            self._telemetry.count("dataplane.saturated")

    def maybe_recompile(self) -> bool:
        """Sync trackers; recompile + re-attach if the rule state grew."""
        if self.dataplane is None:
            return False
        self.dataplane.sync()
        if self._attach and self.dataplane.needs_recompile():
            self._recompile()
            return True
        return False

    # ----------------------------------------------------------- tailer API

    @property
    def exhausted(self) -> bool:
        return bool(getattr(self.socket, "exhausted", False))

    def poll(self) -> Iterator[FrameBatch]:
        """One bounded pass over the socket; yields batches of new frames."""
        self.polls += 1
        tel = self._telemetry
        tel.count("dataplane.polls")
        self.maybe_recompile()
        remaining = self._max_frames_per_poll
        frames_per_batch = self._frames_per_batch()
        raw = self.dataplane.raw if self.dataplane is not None else None
        builder = FrameBatchBuilder()
        received = 0
        filtered = 0
        filtered_bytes = 0
        while remaining > 0:
            frames = self.socket.recv_batch(min(remaining, frames_per_batch))
            if not frames:
                break
            remaining -= len(frames)
            received += len(frames)
            for timestamp, frame in frames:
                if raw is not None and not raw.match(frame):
                    filtered += 1
                    filtered_bytes += len(frame)
                    continue
                builder.append(frame, timestamp)
                if len(builder) >= frames_per_batch:
                    yield self._finish(builder.build())
            if len(builder):
                # Hand off at recv-chunk granularity: the analysis thread
                # should not wait for a full-size batch on a quiet link.
                yield self._finish(builder.build())
        if len(builder):
            yield self._finish(builder.build())
        if received:
            tel.count("dataplane.frames", received)
        if filtered:
            self.frames_filtered += filtered
            tel.count("dataplane.filtered", filtered)
            tel.count("dataplane.filtered_bytes", filtered_bytes)
        self._update_kernel_stats()

    def _finish(self, batch: FrameBatch) -> FrameBatch:
        self.packets_emitted += len(batch)
        self.bytes_emitted += batch.total_caplen
        self._telemetry.count("capture.frames", len(batch))
        self._telemetry.count("capture.bytes", batch.total_caplen)
        return batch

    def _update_kernel_stats(self) -> None:
        packets, drops = self.socket.stats()
        new_drops = drops - self.kernel_drops
        if new_drops > 0:
            self._telemetry.count("dataplane.kernel_drops", new_drops)
        self.kernel_packets = packets
        self.kernel_drops = drops

    # ----------------------------------------------------- PacketSource API

    def frame_batches(self) -> Iterator[FrameBatch]:
        """Poll until the socket is exhausted (finite replays only)."""
        while True:
            yield from self.poll()
            if self.exhausted:
                return

    def _packets(self):
        for batch in self.frame_batches():
            yield from batch

    def close(self) -> None:
        self.socket.close()
