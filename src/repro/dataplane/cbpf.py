"""Classic BPF (cBPF): instruction set, assembler, packer, reference VM.

The paper pushes its match-action prefilter into a Tofino switch; the
software analogue on a plain Linux NIC is a classic-BPF socket filter
attached with ``SO_ATTACH_FILTER`` — the kernel then drops non-matching
frames before they ever cross into userspace, exactly where the Tofino
drops them before the tap.  This module is the dataplane's ISA layer:

* :class:`BPFInstruction` / :class:`CBPFProgram` — one ``sock_filter``
  quadruple ``(code, jt, jf, k)`` and an ordered program of them, with
  :meth:`CBPFProgram.pack` producing the exact bytes ``setsockopt`` wants.
* :class:`Assembler` — label-based forward-jump assembly.  cBPF conditional
  jumps carry 8-bit offsets, so the compiler emits every far transfer as a
  short conditional skip over an unconditional ``ja`` (32-bit offset); the
  assembler resolves labels and *rejects* any conditional jump that does
  not fit, rather than silently truncating.
* :func:`run_cbpf` — a pure-Python interpreter with kernel semantics: all
  arithmetic is unsigned 32-bit, an out-of-bounds packet load terminates
  the program with verdict 0 (drop), division by zero drops, and jumps are
  forward-only.  It is the *reference executor*: the Hypothesis equivalence
  suite runs generated programs through it against the Python prefilters,
  and the simulated packet socket uses it as its in-ring filter.

The instruction constants mirror ``<linux/filter.h>`` so a dumped program
diffs cleanly against ``tcpdump -dd`` output.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "BPF_MAXINSNS",
    "BPFInstruction",
    "CBPFProgram",
    "Assembler",
    "run_cbpf",
]

#: Kernel ceiling on one socket filter's instruction count.
BPF_MAXINSNS = 4096

# --- instruction classes (code & 0x07) ---------------------------------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_MISC = 0x07

# --- ld/ldx size (code & 0x18) -----------------------------------------
BPF_W = 0x00
BPF_H = 0x08
BPF_B = 0x10

# --- ld/ldx mode (code & 0xE0) -----------------------------------------
BPF_IMM = 0x00
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60
BPF_LEN = 0x80
BPF_MSH = 0xA0

# --- alu/jmp op (code & 0xF0) ------------------------------------------
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80

BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40

# --- operand source (code & 0x08) --------------------------------------
BPF_K = 0x00
BPF_X = 0x08

# --- misc op -----------------------------------------------------------
BPF_TAX = 0x00
BPF_TXA = 0x80

#: Scratch memory slots (``M[0..15]``).
BPF_MEMWORDS = 16

_U32 = 0xFFFFFFFF

_SOCK_FILTER = struct.Struct("HBBI")  # native order: what setsockopt expects


@dataclass(frozen=True, slots=True)
class BPFInstruction:
    """One ``sock_filter``: ``(code, jt, jf, k)``."""

    code: int
    jt: int = 0
    jf: int = 0
    k: int = 0

    def pack(self) -> bytes:
        return _SOCK_FILTER.pack(self.code, self.jt, self.jf, self.k & _U32)


@dataclass(slots=True)
class CBPFProgram:
    """An ordered cBPF program plus compile metadata.

    ``meta`` carries compiler annotations (rule counts, saturation flags)
    that the live source surfaces through telemetry; it never affects
    execution or packing.
    """

    insns: list[BPFInstruction] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.insns)

    def __iter__(self) -> Iterator[BPFInstruction]:
        return iter(self.insns)

    def pack(self) -> bytes:
        """The concatenated ``sock_filter`` array for ``SO_ATTACH_FILTER``."""
        return b"".join(insn.pack() for insn in self.insns)

    def validate(self) -> None:
        """Structural checks the kernel verifier would also apply.

        Raises ``ValueError`` on: empty/oversized programs, jump targets
        outside the program (jumps are forward-only by construction —
        relative offsets are unsigned), scratch-slot indexes out of range,
        a constant division by zero, or a program whose final instruction
        can fall off the end.
        """
        n = len(self.insns)
        if n == 0:
            raise ValueError("empty cBPF program")
        if n > BPF_MAXINSNS:
            raise ValueError(f"program too long: {n} > {BPF_MAXINSNS}")
        for pc, insn in enumerate(self.insns):
            cls = insn.code & 0x07
            if cls == BPF_JMP:
                if insn.code == BPF_JMP | BPF_JA:
                    if pc + 1 + insn.k >= n:
                        raise ValueError(f"insn {pc}: ja target out of range")
                else:
                    if pc + 1 + insn.jt >= n or pc + 1 + insn.jf >= n:
                        raise ValueError(f"insn {pc}: jump target out of range")
            elif cls in (BPF_ST, BPF_STX) or (
                cls in (BPF_LD, BPF_LDX) and insn.code & 0xE0 == BPF_MEM
            ):
                if not 0 <= insn.k < BPF_MEMWORDS:
                    raise ValueError(f"insn {pc}: scratch slot {insn.k} out of range")
            elif insn.code == BPF_ALU | BPF_DIV | BPF_K and insn.k == 0:
                raise ValueError(f"insn {pc}: constant division by zero")
        last = self.insns[-1]
        if last.code & 0x07 not in (BPF_RET, BPF_JMP):
            raise ValueError("program can fall off the end (last insn not ret/jmp)")

    def dump(self) -> str:
        """``tcpdump -d`` style disassembly (debugging and DESIGN.md)."""
        lines = []
        for pc, insn in enumerate(self.insns):
            lines.append(
                f"({pc:03d}) code=0x{insn.code:04x} jt={insn.jt} "
                f"jf={insn.jf} k=0x{insn.k & _U32:08x}"
            )
        return "\n".join(lines)


class Assembler:
    """Forward-jump label assembly for :class:`CBPFProgram`.

    Conditional jumps (``jt``/``jf``) and ``ja`` targets may be given as
    label strings; :meth:`assemble` resolves them to relative offsets.  A
    conditional offset that does not fit in 8 bits raises — the compiler
    is expected to route far transfers through a ``ja`` trampoline.
    """

    def __init__(self) -> None:
        self._insns: list[list] = []  # [code, jt, jf, k] — str entries = labels
        self._labels: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._insns)

    def label(self, name: str) -> None:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)

    def emit(self, code: int, k: "int | str" = 0, jt: "int | str" = 0,
             jf: "int | str" = 0) -> None:
        self._insns.append([code, jt, jf, k])

    def ja(self, target: str) -> None:
        """Unconditional far jump (32-bit offset)."""
        self.emit(BPF_JMP | BPF_JA, k=target)

    def ret_k(self, k: int) -> None:
        self.emit(BPF_RET | BPF_K, k=k)

    def assemble(self, meta: dict | None = None) -> CBPFProgram:
        def resolve(pc: int, target: "int | str", *, wide: bool) -> int:
            if isinstance(target, str):
                where = self._labels.get(target)
                if where is None:
                    raise ValueError(f"undefined label {target!r}")
                offset = where - pc - 1
            else:
                offset = target
            if offset < 0:
                raise ValueError(f"insn {pc}: backward jump to {target!r}")
            if not wide and offset > 255:
                raise ValueError(
                    f"insn {pc}: conditional jump offset {offset} > 255 "
                    f"(route through a ja trampoline)"
                )
            return offset

        insns = []
        for pc, (code, jt, jf, k) in enumerate(self._insns):
            if code & 0x07 == BPF_JMP:
                if code == BPF_JMP | BPF_JA:
                    k = resolve(pc, k, wide=True)
                else:
                    jt = resolve(pc, jt, wide=False)
                    jf = resolve(pc, jf, wide=False)
            insns.append(BPFInstruction(code, jt, jf, k if isinstance(k, int) else 0))
        program = CBPFProgram(insns, dict(meta or {}))
        program.validate()
        return program


def run_cbpf(
    program: "CBPFProgram | Iterable[BPFInstruction]",
    data: "bytes | bytearray | memoryview",
    *,
    wirelen: int | None = None,
) -> int:
    """Execute ``program`` over one frame; returns the accept length.

    Kernel semantics, faithfully: a return value of 0 means *drop*; any
    positive value is the byte count the kernel would deliver (the
    compiler uses ``0xFFFFFFFF`` — deliver everything).  An out-of-bounds
    absolute or indirect load, a division by zero, or an unknown opcode
    terminates with 0, exactly as ``sk_run_filter`` does.

    ``wirelen`` is what ``BPF_LD|BPF_LEN`` observes (the kernel gives the
    filter the *wire* length even when the capture is snapped); it
    defaults to ``len(data)``.
    """
    insns = program.insns if isinstance(program, CBPFProgram) else list(program)
    buf = memoryview(data)
    dlen = len(buf)
    plen = wirelen if wirelen is not None else dlen
    acc = 0  # A
    idx = 0  # X
    mem = [0] * BPF_MEMWORDS
    pc = 0
    n = len(insns)
    # Jumps are forward-only, so n steps is a hard bound on any valid run.
    for _ in range(n + 1):
        if pc >= n:
            return 0  # fell off the end — the verifier rejects this shape
        insn = insns[pc]
        code = insn.code
        k = insn.k & _U32
        pc += 1
        cls = code & 0x07
        if cls == BPF_LD:
            mode = code & 0xE0
            size = code & 0x18
            width = 4 if size == BPF_W else (2 if size == BPF_H else 1)
            if mode == BPF_ABS or mode == BPF_IND:
                off = k if mode == BPF_ABS else (idx + k) & _U32
                if off + width > dlen:
                    return 0
                if width == 4:
                    acc = (buf[off] << 24) | (buf[off + 1] << 16) | (buf[off + 2] << 8) | buf[off + 3]
                elif width == 2:
                    acc = (buf[off] << 8) | buf[off + 1]
                else:
                    acc = buf[off]
            elif mode == BPF_IMM:
                acc = k
            elif mode == BPF_LEN:
                acc = plen & _U32
            elif mode == BPF_MEM:
                acc = mem[k]
            else:
                return 0
        elif cls == BPF_LDX:
            mode = code & 0xE0
            if mode == BPF_IMM:
                idx = k
            elif mode == BPF_LEN:
                idx = plen & _U32
            elif mode == BPF_MEM:
                idx = mem[k]
            elif mode == BPF_MSH:
                if k >= dlen:
                    return 0
                idx = (buf[k] & 0x0F) << 2
            else:
                return 0
        elif cls == BPF_ST:
            mem[k] = acc
        elif cls == BPF_STX:
            mem[k] = idx
        elif cls == BPF_ALU:
            op = code & 0xF0
            operand = idx if code & 0x08 else k
            if op == BPF_ADD:
                acc = (acc + operand) & _U32
            elif op == BPF_SUB:
                acc = (acc - operand) & _U32
            elif op == BPF_MUL:
                acc = (acc * operand) & _U32
            elif op == BPF_DIV:
                if operand == 0:
                    return 0
                acc = (acc // operand) & _U32
            elif op == BPF_OR:
                acc = acc | operand
            elif op == BPF_AND:
                acc = acc & operand
            elif op == BPF_LSH:
                acc = (acc << (operand & 31)) & _U32
            elif op == BPF_RSH:
                acc = acc >> (operand & 31)
            elif op == BPF_NEG:
                acc = (-acc) & _U32
            else:
                return 0
        elif cls == BPF_JMP:
            op = code & 0xF0
            if op == BPF_JA:
                pc += k
                continue
            operand = idx if code & 0x08 else k
            if op == BPF_JEQ:
                taken = acc == operand
            elif op == BPF_JGT:
                taken = acc > operand
            elif op == BPF_JGE:
                taken = acc >= operand
            elif op == BPF_JSET:
                taken = bool(acc & operand)
            else:
                return 0
            pc += insn.jt if taken else insn.jf
        elif cls == BPF_RET:
            return acc if code & 0x18 == 0x10 else k  # BPF_RVAL: BPF_A = 0x10
        elif cls == BPF_MISC:
            if code & 0xF8 == BPF_TAX:
                idx = acc
            elif code & 0xF8 == BPF_TXA:
                acc = idx
            else:
                return 0
        else:
            return 0
    return 0
