"""Tier-0.5 of the software dataplane: raw-bytes filtering, pre-decode.

:class:`~repro.net.batch.BatchPrefilter` is *post-decode*: it needs the
seven :class:`~repro.net.batch.HeaderColumns` arrays built for **every**
frame before it can drop one.  On a border trace that is ~95% background,
most of that column-building is work done only to be thrown away.
:class:`RawFrameFilter` makes the same decision straight off the frame
bytes with early exits — a background TCP frame costs one ethertype read,
one protocol byte, and a couple of masked compares, and never touches an
``array`` append.

It is not a reimplementation of the rules: it *wraps* a
:class:`BatchPrefilter` and reads/writes that object's compiled networks
and endpoint set, so the three tiers (cBPF, raw, columnar) stay one rule
state with one STUN fold-in path (``prefilter.sync_stun`` /
``note_endpoint``).  Decision equivalence with ``BatchPrefilter.apply``
is exact by construction — the branches below are the fused form of
``decode_columns`` + ``apply`` — and is property-tested anyway.

Two entry points:

* :meth:`RawFrameFilter.match` — one frame, used by
  :class:`~repro.dataplane.live.LiveInterfaceSource` on each received
  frame *before* it enters a :class:`FrameBatch` (drops happen before any
  batch materialization).
* :meth:`RawFrameFilter.filter_batch` — an already-built batch, compacted
  to a survivor batch **sharing the same buffer** (subset offset/caplen/
  timestamp columns, zero copying) — the batch-pipeline integration point
  and the benchmark subject.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass

from repro.net.batch import BatchPrefilter, FrameBatch
from repro.zoom.constants import STUN_SERVER_PORT

__all__ = ["RawFrameFilter", "RawFilterStats"]

_ETHERTYPE_VLAN = 0x8100
_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_IPV6 = 0x86DD
_PROTO_TCP = 6
_PROTO_UDP = 17

_UNPACK_ADDRS = struct.Struct("!II").unpack_from
_UNPACK_PORTS = struct.Struct("!HH").unpack_from

#: ``match`` verdicts.
_DROP = 0
_PASS = 1
_DROP_PARSE_FAILURE = 2


@dataclass(slots=True)
class RawFilterStats:
    """Outcome of one :meth:`RawFrameFilter.filter_batch` pass."""

    passed: int = 0
    dropped: int = 0
    dropped_bytes: int = 0
    parse_failures: int = 0


class RawFrameFilter:
    """Pre-decode filter sharing one :class:`BatchPrefilter`'s rule state."""

    __slots__ = ("prefilter",)

    def __init__(self, prefilter: BatchPrefilter) -> None:
        self.prefilter = prefilter

    def sync_stun(self, tracker) -> None:
        """Fold a tracker's learned endpoints in (delegates to the prefilter)."""
        self.prefilter.sync_stun(tracker)

    def match(self, buf, offset: int = 0, caplen: int | None = None) -> bool:
        """Would the prefilter pass the frame at ``buf[offset:offset+caplen]``?

        Side effects match the prefilter's: STUN magic-cookie frames note
        both endpoints into the shared pass-set before the decision.
        """
        if caplen is None:
            caplen = len(buf) - offset
        return self._verdict(buf, offset, caplen) == _PASS

    def _verdict(self, buf, o: int, caplen: int) -> int:
        # Fused decode_columns + BatchPrefilter.apply for one frame.  Any
        # behavioural edit here must land in net/batch.py too — the
        # equivalence property in tests/test_dataplane_properties.py is
        # the tripwire.
        if caplen < 14:
            return _DROP_PARSE_FAILURE
        et = (buf[o + 12] << 8) | buf[o + 13]
        l3 = o + 14
        if et == _ETHERTYPE_VLAN:
            if caplen < 18:
                return _DROP_PARSE_FAILURE
            et = (buf[o + 16] << 8) | buf[o + 17]
            l3 = o + 18
        if et != _ETHERTYPE_IPV4:
            if et == _ETHERTYPE_IPV6:
                return _PASS
            return _DROP
        end = o + caplen
        s = d = 0
        sp = -1
        dp = 0
        proto = -1
        l4 = -1
        if end >= l3 + 20:
            proto = buf[l3 + 9]
            s, d = _UNPACK_ADDRS(buf, l3 + 12)
            ihl = (buf[l3] & 0x0F) << 2
            t4 = l3 + ihl
            if ihl >= 20 and (proto == _PROTO_UDP or proto == _PROTO_TCP) and end >= t4 + 4:
                sp, dp = _UNPACK_PORTS(buf, t4)
                l4 = t4 - o
        prefilter = self.prefilter
        zoom_hit = False
        for net, mask in prefilter.networks_v4:
            if (s & mask) == net or (d & mask) == net:
                zoom_hit = True
                break
        if proto == _PROTO_UDP and sp >= 0:
            sniff = prefilter.sniff_all_stun or (
                zoom_hit and (sp == STUN_SERVER_PORT or dp == STUN_SERVER_PORT)
            )
            if sniff and caplen >= l4 + 16:
                c = o + l4
                if (
                    buf[c + 12] == 0x21
                    and buf[c + 13] == 0x12
                    and buf[c + 14] == 0xA4
                    and buf[c + 15] == 0x42
                ):
                    prefilter.note_endpoint(s, sp)
                    prefilter.note_endpoint(d, dp)
            endpoints = prefilter.endpoint_keys_view
            if zoom_hit or ((s << 16) | sp) in endpoints or ((d << 16) | dp) in endpoints:
                return _PASS
            return _DROP
        return _PASS if zoom_hit else _DROP

    def filter_batch(self, batch: FrameBatch) -> tuple[FrameBatch, RawFilterStats]:
        """Compact ``batch`` to its survivors, sharing the original buffer.

        Hint frames (sharder replicas carried for STUN learning) always
        survive — they must reach ``hint_stun`` downstream.  ``prepared``
        batches pass through untouched: their packets never round-tripped
        a wire format, so raw-bytes rules do not apply (same contract as
        the columnar path, which skips prepared batches too).
        """
        stats = RawFilterStats()
        if batch.prepared is not None or len(batch) == 0:
            stats.passed = len(batch)
            return batch, stats
        buf = batch.buffer
        offsets = batch.offsets
        caplens = batch.caplens
        timestamps = batch.timestamps
        hints = batch.hints
        verdict = self._verdict
        keep_offsets = array("Q")
        keep_caplens = array("I")
        keep_timestamps = array("d")
        keep_hints = array("b") if hints is not None else None
        total = 0
        for i in range(len(caplens)):
            caplen = caplens[i]
            if hints is not None and hints[i]:
                kept = True  # hint frames bypass the filter
            else:
                v = verdict(buf, offsets[i], caplen)
                kept = v == _PASS
                if not kept:
                    stats.dropped += 1
                    stats.dropped_bytes += caplen
                    if v == _DROP_PARSE_FAILURE:
                        stats.parse_failures += 1
            if kept:
                keep_offsets.append(offsets[i])
                keep_caplens.append(caplen)
                keep_timestamps.append(timestamps[i])
                total += caplen
                if keep_hints is not None:
                    keep_hints.append(hints[i])
        stats.passed = len(keep_caplens)
        if stats.dropped == 0:
            return batch, stats
        survivors = FrameBatch(
            buffer=buf,  # shared — subset columns, no byte copying
            offsets=keep_offsets,
            caplens=keep_caplens,
            timestamps=keep_timestamps,
            total_caplen=total,
            hints=keep_hints if keep_hints is not None and any(keep_hints) else None,
        )
        return survivors, stats
