"""Compile the capture model's match-action rules into cBPF bytecode.

One rule set, three executors: the columnar
:class:`~repro.net.batch.BatchPrefilter` (tier 1, post-decode), the
:class:`~repro.dataplane.rawfilter.RawFrameFilter` (tier 0.5, pre-decode),
and the cBPF program emitted here (tier 0, in-kernel).  The compiler's
contract is *decision equivalence* with the prefilter it was snapshotted
from: for any frame, the program's accept/drop verdict equals
``BatchPrefilter.apply``'s pass/drop verdict given the same networks and
endpoint set — the Hypothesis suite in ``tests/test_dataplane_properties``
enforces this frame-by-frame, including mid-stream STUN fold-ins (cBPF is
stateless, so a fold-in is a recompile; see ``DataplaneFilter``).

Two compile modes share the emitter:

* **prefilter mode** (``campus_v4 is None``) mirrors the analyzer-side
  prefilter: IPv6 passes (no v6 rules are compiled), Zoom-range IPv4
  passes both directions, learned UDP endpoints pass, and in sniff-all
  mode any readable STUN magic cookie passes (the stateless stand-in for
  the prefilter's note-then-pass behaviour).
* **campus mode** (``campus_v4`` set) mirrors the
  :class:`~repro.capture.p4_model.P4CaptureModel` decision tree of
  Figure 13: frames with no campus endpoint drop, IPv6 drops (campus
  prefixes are IPv4), Zoom matches pass, and learned P2P endpoints pass
  only on their *campus* side — the side flags live in scratch memory
  ``M[0]``/``M[1]``.

cBPF structural notes embodied here (they are why the emitted shape looks
the way it does):

* Jumps are forward-only and conditional offsets are 8-bit, so every far
  transfer is a short conditional skip over a 32-bit ``ja`` — rule lists
  of hundreds of endpoints stay encodable.
* The two link-layer shapes (untagged, one 802.1Q tag) cannot share code
  without backward jumps, so the program is two parameterized copies of
  the same block behind an ethertype dispatch.
* An out-of-bounds load drops the frame, which matches the columnar
  decoder's sentinel semantics *except* where a partial header could
  still satisfy an early rule — those spots get explicit ``len`` guards
  (e.g. a frame truncated mid-IP-header must drop even if its intact src
  field sits in a Zoom range, because the decoder never reads src without
  the full 20 header bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ipaddress import ip_network
from typing import Iterable, Sequence

from repro.dataplane.cbpf import (
    BPF_ABS,
    BPF_AND,
    BPF_ALU,
    BPF_B,
    BPF_H,
    BPF_IMM,
    BPF_IND,
    BPF_JEQ,
    BPF_JGE,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_MEM,
    BPF_MISC,
    BPF_MSH,
    BPF_OR,
    BPF_ST,
    BPF_SUB,
    BPF_TXA,
    BPF_W,
    BPF_X,
    Assembler,
    CBPFProgram,
)

__all__ = [
    "CaptureRules",
    "compile_cbpf",
    "ACCEPT_ALL",
    "STUN_MAGIC_COOKIE",
    "DEFAULT_MAX_ENDPOINTS",
]

#: RFC 5389 magic cookie, the prefilter's STUN sniff signature.
STUN_MAGIC_COOKIE = 0x2112A442

#: ``ret k`` accept value: deliver the whole frame.
ACCEPT_ALL = 0xFFFFFFFF

#: Endpoint-rule budget before the compiler saturates to pass-all-UDP.
#: ~10 instructions per endpoint per link shape keeps 180 endpoints well
#: under the kernel's 4096-instruction ceiling with headroom for the
#: fixed scaffolding.
DEFAULT_MAX_ENDPOINTS = 180

_ETHERTYPE_VLAN = 0x8100
_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_IPV6 = 0x86DD
_PROTO_UDP = 17


def _nets_to_u32(networks: Iterable) -> tuple[tuple[int, int], ...]:
    pairs = []
    for net in networks:
        net = ip_network(net) if isinstance(net, str) else net
        if net.version == 4:
            pairs.append((int(net.network_address), int(net.netmask)))
    return tuple(pairs)


def _ipv4_str_to_u32(ip: str) -> int | None:
    parts = ip.split(".")
    if len(parts) != 4:
        return None
    try:
        a, b, c, d = (int(part) for part in parts)
    except ValueError:
        return None
    return (a << 24) | (b << 16) | (c << 8) | d


@dataclass(frozen=True, slots=True)
class CaptureRules:
    """One immutable snapshot of the match-action rule state.

    ``endpoints`` are packed ``(ip_u32 << 16) | port`` keys — the same
    packing :class:`~repro.net.batch.BatchPrefilter` uses internally, so
    a snapshot is a set copy, not a re-encode.
    """

    networks_v4: tuple[tuple[int, int], ...] = ()
    endpoints: tuple[int, ...] = ()
    sniff_all_stun: bool = False
    campus_v4: tuple[tuple[int, int], ...] | None = None

    @classmethod
    def from_networks(
        cls,
        networks: Iterable,
        *,
        endpoints: Iterable[tuple[str, int]] = (),
        sniff_all_stun: bool = False,
        campus: Iterable | None = None,
    ) -> "CaptureRules":
        """Build rules from prefix strings and ``(ip, port)`` endpoints."""
        packed = []
        for ip, port in endpoints:
            u32 = _ipv4_str_to_u32(ip)
            if u32 is not None:
                packed.append((u32 << 16) | port)
        return cls(
            networks_v4=_nets_to_u32(networks),
            endpoints=tuple(sorted(set(packed))),
            sniff_all_stun=sniff_all_stun,
            campus_v4=_nets_to_u32(campus) if campus is not None else None,
        )

    @classmethod
    def from_prefilter(cls, prefilter) -> "CaptureRules":
        """Snapshot a :class:`~repro.net.batch.BatchPrefilter`'s rule state."""
        return cls(
            networks_v4=tuple(prefilter.networks_v4),
            endpoints=tuple(sorted(prefilter.endpoint_keys)),
            sniff_all_stun=prefilter.sniff_all_stun,
        )

    @classmethod
    def from_model(cls, model, now: float | None = None) -> "CaptureRules":
        """Snapshot a :class:`~repro.capture.p4_model.P4CaptureModel`.

        Campus-gated compile mode.  Only endpoints still *live* in the
        model's P2P registers are included (``now`` defaults to the last
        learn time), so register expiry and hash-slot eviction are folded
        in at snapshot time — the stateless program then agrees with the
        stateful registers at the instant of the snapshot.
        """
        from repro.capture.registers import endpoint_key

        endpoints = []
        newest = max(model.learned_endpoints.values(), default=0.0)
        when = now if now is not None else newest
        for (ip, port), _ts in model.learned_endpoints.items():
            key = endpoint_key(ip, port)
            if model.p2p_sources.contains(key, when) or model.p2p_destinations.contains(
                key, when
            ):
                endpoints.append((ip, port))
        return cls.from_networks(
            model.zoom_matcher.networks,
            endpoints=endpoints,
            campus=model.campus_matcher.networks,
        )


@dataclass(slots=True)
class _Emit:
    """Per-link-shape emitter state: one assembler, one l3 offset."""

    asm: Assembler
    l3: int
    tag: str
    serial: int = field(default=0)

    def local(self, name: str) -> str:
        self.serial += 1
        return f"{self.tag}.{name}.{self.serial}"


def compile_cbpf(
    rules: CaptureRules,
    *,
    max_endpoints: int = DEFAULT_MAX_ENDPOINTS,
) -> CBPFProgram:
    """Emit the cBPF program for one rule snapshot.

    When the endpoint set exceeds ``max_endpoints`` the program
    *saturates*: endpoint rules are replaced by a conservative
    pass-all-readable-UDP rule (prefilter mode) or pass-all-campus-UDP
    rule (campus mode).  Saturation only ever widens the kernel filter —
    the exact userspace tiers still apply — and is flagged in
    ``program.meta["saturated"]`` plus the ``dataplane.saturated``
    counter at attach time.
    """
    endpoints = rules.endpoints
    saturated = len(endpoints) > max_endpoints
    if saturated:
        endpoints = ()

    asm = Assembler()
    # Dispatch: outer ethertype selects the link shape.
    asm.emit(BPF_LD | BPF_H | BPF_ABS, k=12)
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=_ETHERTYPE_VLAN, jt=0, jf=1)
    asm.ja("vlan")
    _emit_block(_Emit(asm, l3=14, tag="plain"), rules, endpoints, saturated,
                reload_ethertype=None)
    asm.label("vlan")
    _emit_block(_Emit(asm, l3=18, tag="vlan"), rules, endpoints, saturated,
                reload_ethertype=16)
    asm.label("accept")
    asm.ret_k(ACCEPT_ALL)
    asm.label("drop")
    asm.ret_k(0)
    return asm.assemble(
        meta={
            "mode": "campus" if rules.campus_v4 is not None else "prefilter",
            "networks": len(rules.networks_v4),
            "endpoints": len(rules.endpoints),
            "compiled_endpoints": len(endpoints),
            "saturated": saturated,
            "sniff_all_stun": rules.sniff_all_stun,
        }
    )


def _emit_net_match(e: _Emit, nets: Sequence[tuple[int, int]], offset: int,
                    target: str) -> None:
    """``ja target`` when the IPv4 address at ``l3+offset`` hits any net."""
    for net, mask in nets:
        e.asm.emit(BPF_LD | BPF_W | BPF_ABS, k=e.l3 + offset)
        if mask != 0xFFFFFFFF:
            e.asm.emit(BPF_ALU | BPF_AND | BPF_K, k=mask)
        e.asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=net & mask, jt=0, jf=1)
        e.asm.ja(target)


def _emit_ports_readable(e: _Emit) -> None:
    """Require ``ihl >= 20`` and 4 readable transport bytes, else drop.

    Leaves ``X = ihl`` so subsequent indirect loads at ``X + l3 + off``
    address the transport header.  Mirrors the columnar decoder exactly:
    ports exist iff the full IP header *and* both ports fit the capture.
    """
    asm = e.asm
    asm.emit(BPF_LDX | BPF_B | BPF_MSH, k=e.l3)  # X = 4 * (pkt[l3] & 0xf)
    asm.emit(BPF_MISC | BPF_TXA)
    asm.emit(BPF_JMP | BPF_JGE | BPF_K, k=20, jt=1, jf=0)
    asm.ja("drop")
    asm.emit(BPF_LD | BPF_W | BPF_LEN)
    asm.emit(BPF_ALU | BPF_SUB | BPF_K, k=e.l3 + 4)
    asm.emit(BPF_JMP | BPF_JGE | BPF_X, jt=1, jf=0)  # len - (l3+4) >= ihl
    asm.ja("drop")


def _emit_endpoint_rule(e: _Emit, key: int, *, addr_off: int, port_off: int,
                        gate_mem: int | None) -> None:
    """Accept when ``(addr, port)`` at the given offsets equals ``key``.

    ``gate_mem`` (campus mode) skips the rule unless scratch slot ``M[n]``
    holds 1 — the "this side is campus" flag.
    """
    asm = e.asm
    skip = e.local("ep")
    if gate_mem is not None:
        asm.emit(BPF_LD | BPF_W | BPF_MEM, k=gate_mem)
        asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=1, jt=0, jf=skip)
    asm.emit(BPF_LD | BPF_W | BPF_ABS, k=e.l3 + addr_off)
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=(key >> 16) & 0xFFFFFFFF, jt=0, jf=skip)
    asm.emit(BPF_LD | BPF_H | BPF_IND, k=e.l3 + port_off)
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=key & 0xFFFF, jt=0, jf=skip)
    asm.ja("accept")
    asm.label(skip)


def _emit_block(
    e: _Emit,
    rules: CaptureRules,
    endpoints: Sequence[int],
    saturated: bool,
    *,
    reload_ethertype: int | None,
) -> None:
    asm = e.asm
    campus_mode = rules.campus_v4 is not None
    if reload_ethertype is not None:
        # VLAN shape: the inner ethertype sits past the tag.  The load
        # itself faults (drops) on a frame truncated inside the tag —
        # the decoder's ``caplen < 18 → ethertype = -1`` drop.
        asm.emit(BPF_LD | BPF_H | BPF_ABS, k=reload_ethertype)
    # IPv6: no v6 rules are compiled — the prefilter passes (ambiguity is
    # the analyzer's problem), the campus model drops (campus prefixes
    # are IPv4, so no packet has a campus endpoint).
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=_ETHERTYPE_IPV6, jt=0, jf=1)
    asm.ja("drop" if campus_mode else "accept")
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=_ETHERTYPE_IPV4, jt=1, jf=0)
    asm.ja("drop")
    # Full IPv4 header or nothing: the columnar decoder reads no address
    # from a frame shorter than l3+20, so neither may the program — an
    # intact src field inside a truncated header must not match.
    asm.emit(BPF_LD | BPF_W | BPF_LEN)
    asm.emit(BPF_JMP | BPF_JGE | BPF_K, k=e.l3 + 20, jt=1, jf=0)
    asm.ja("drop")

    if campus_mode:
        _emit_campus_tail(e, rules, endpoints, saturated)
    else:
        _emit_prefilter_tail(e, rules, endpoints, saturated)


def _emit_campus_tail(
    e: _Emit,
    rules: CaptureRules,
    endpoints: Sequence[int],
    saturated: bool,
) -> None:
    asm = e.asm
    # Direction flags in scratch memory: M[0] = src is campus,
    # M[1] = dst is campus (Figure 13's campus-IP match stage).
    asm.emit(BPF_LD | BPF_IMM, k=0)
    asm.emit(BPF_ST, k=0)
    asm.emit(BPF_ST, k=1)
    for slot, offset in ((0, 12), (1, 16)):
        for net, mask in rules.campus_v4:
            skip = e.local("campus")
            asm.emit(BPF_LD | BPF_W | BPF_ABS, k=e.l3 + offset)
            if mask != 0xFFFFFFFF:
                asm.emit(BPF_ALU | BPF_AND | BPF_K, k=mask)
            asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=net & mask, jt=0, jf=skip)
            asm.emit(BPF_LD | BPF_IMM, k=1)
            asm.emit(BPF_ST, k=slot)
            asm.label(skip)
    # No campus endpoint → not border traffic.
    asm.emit(BPF_LD | BPF_W | BPF_MEM, k=0)
    asm.emit(BPF_LDX | BPF_W | BPF_MEM, k=1)
    asm.emit(BPF_ALU | BPF_OR | BPF_X)
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=0, jt=0, jf=1)
    asm.ja("drop")
    # Zoom-range match, either direction (server traffic, any transport).
    _emit_net_match(e, rules.networks_v4, 12, "accept")
    _emit_net_match(e, rules.networks_v4, 16, "accept")
    # P2P lookup applies to UDP with readable ports only — the model's
    # parser yields no port (hence no register hit) otherwise.
    asm.emit(BPF_LD | BPF_B | BPF_ABS, k=e.l3 + 9)
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=_PROTO_UDP, jt=1, jf=0)
    asm.ja("drop")
    _emit_ports_readable(e)
    if saturated:
        asm.ja("accept")
        return
    for key in endpoints:
        _emit_endpoint_rule(e, key, addr_off=12, port_off=0, gate_mem=0)
        _emit_endpoint_rule(e, key, addr_off=16, port_off=2, gate_mem=1)
    asm.ja("drop")


def _emit_prefilter_tail(
    e: _Emit,
    rules: CaptureRules,
    endpoints: Sequence[int],
    saturated: bool,
) -> None:
    asm = e.asm
    # Zoom-range match, either direction — passes whatever the transport.
    _emit_net_match(e, rules.networks_v4, 12, "accept")
    _emit_net_match(e, rules.networks_v4, 16, "accept")
    # Beyond the ranges, only readable UDP can pass.
    asm.emit(BPF_LD | BPF_B | BPF_ABS, k=e.l3 + 9)
    asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=_PROTO_UDP, jt=1, jf=0)
    asm.ja("drop")
    _emit_ports_readable(e)
    if saturated:
        # Endpoint budget blown: the kernel tier passes all readable UDP
        # and the exact userspace tiers take over.
        asm.ja("accept")
        return
    for key in endpoints:
        _emit_endpoint_rule(e, key, addr_off=12, port_off=0, gate_mem=None)
        _emit_endpoint_rule(e, key, addr_off=16, port_off=2, gate_mem=None)
    if rules.sniff_all_stun:
        # Sniff-all mode: the prefilter notes both endpoints of any frame
        # carrying the STUN magic cookie *before* deciding, so the cookie
        # frame itself always passes.  Statelessly: accept on the cookie.
        asm.emit(BPF_LD | BPF_W | BPF_LEN)
        asm.emit(BPF_ALU | BPF_SUB | BPF_K, k=e.l3 + 16)
        asm.emit(BPF_JMP | BPF_JGE | BPF_X, jt=1, jf=0)  # cookie bytes readable?
        asm.ja("drop")
        asm.emit(BPF_LD | BPF_W | BPF_IND, k=e.l3 + 12)
        asm.emit(BPF_JMP | BPF_JEQ | BPF_K, k=STUN_MAGIC_COOKIE, jt=0, jf=1)
        asm.ja("accept")
    asm.ja("drop")
