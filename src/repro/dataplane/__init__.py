"""Software dataplane: capture rules compiled to executable filters.

The paper's measurement system programs a Tofino switch to pre-filter
campus traffic down to Zoom flows before the servers ever see a packet
(§6.1).  This package is the software analogue for commodity Linux boxes,
with the same three-tier split:

* **kernel tier** — :mod:`repro.dataplane.compiler` turns
  :class:`CaptureRules` (Zoom subnets, STUN-learned P2P endpoints,
  optional campus gating) into a classic-BPF program that
  :class:`AFPacketSocket` attaches via ``SO_ATTACH_FILTER``; background
  frames die in the kernel.
* **raw-bytes tier** — :class:`RawFrameFilter` makes the identical
  decision straight off frame bytes, pre-:class:`FrameBatch`, for frames
  the kernel program conservatively passed (or when no kernel is
  involved).
* **columnar tier** — the existing
  :class:`~repro.net.batch.BatchPrefilter`, which remains the single
  rule *store* the other two tiers wrap and compile from, so a STUN
  binding learned at any tier widens all three.

:mod:`repro.dataplane.cbpf` carries the instruction encoding, a small
assembler, and a reference interpreter (:func:`run_cbpf`) with kernel
semantics — the executor for the simulated socket and the oracle for the
equivalence property suite.
"""

from repro.dataplane.cbpf import (
    BPF_MAXINSNS,
    BPFInstruction,
    CBPFProgram,
    run_cbpf,
)
from repro.dataplane.compiler import (
    ACCEPT_ALL,
    DEFAULT_MAX_ENDPOINTS,
    CaptureRules,
    compile_cbpf,
)
from repro.dataplane.live import (
    SIM_INTERFACE_PREFIX,
    AFPacketSocket,
    DataplaneFilter,
    LiveInterfaceSource,
    SimulatedPacketSocket,
    open_packet_socket,
)
from repro.dataplane.rawfilter import RawFilterStats, RawFrameFilter

#: Counters pre-seeded by the service daemon in interface mode so the
#: Prometheus endpoint exposes stable zero-valued series before the first
#: packet (the ``fleet.*`` pattern; anomaly rules can then distinguish
#: "zero" from "absent").
DATAPLANE_COUNTER_SEEDS = (
    "dataplane.polls",
    "dataplane.frames",
    "dataplane.filtered",
    "dataplane.filtered_bytes",
    "dataplane.kernel_drops",
    "dataplane.recompiles",
    "dataplane.saturated",
)

__all__ = [
    "ACCEPT_ALL",
    "AFPacketSocket",
    "BPF_MAXINSNS",
    "BPFInstruction",
    "CBPFProgram",
    "CaptureRules",
    "DATAPLANE_COUNTER_SEEDS",
    "DEFAULT_MAX_ENDPOINTS",
    "DataplaneFilter",
    "LiveInterfaceSource",
    "RawFilterStats",
    "RawFrameFilter",
    "SIM_INTERFACE_PREFIX",
    "SimulatedPacketSocket",
    "compile_cbpf",
    "open_packet_socket",
    "run_cbpf",
]
