"""Network path model: delay, jitter, loss, and congestion episodes.

Each emulated path segment (client↔campus border, border↔SFU, peer↔peer)
is a :class:`NetworkPath`.  Congestion episodes — the "cross-traffic twice
during each call" of the paper's §5 validation experiments — add delay,
jitter, and loss over a time window, which is what drives the analyzer-visible
fluctuations in Figures 10a-c.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class CongestionEvent:
    """A congestion episode on a path.

    Attributes:
        start / end: Episode window in simulation seconds.
        extra_delay: Added one-way queueing delay at the episode peak (s).
        extra_jitter: Added delay standard deviation at the peak (s).
        extra_loss: Added packet loss probability at the peak (0-1).
        profile: ``"triangular"`` ramps intensity up and back down over the
            window (the realistic cross-traffic shape); ``"flat"`` holds the
            peak for the whole window — impairment scenarios use it so the
            ground-truth degradation interval has crisp edges.
    """

    start: float
    end: float
    extra_delay: float = 0.030
    extra_jitter: float = 0.010
    extra_loss: float = 0.02
    profile: str = "triangular"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("congestion event must have end > start")
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ValueError("extra_loss must be a probability")
        if self.profile not in ("triangular", "flat"):
            raise ValueError("profile must be 'triangular' or 'flat'")

    def intensity(self, now: float) -> float:
        """Ramped intensity in [0, 1]: rises and falls over the window.

        A triangular ramp (up over the first half, down over the second)
        avoids unrealistic step changes in delay; the ``"flat"`` profile
        instead holds 1.0 across the whole window.
        """
        if not self.start <= now <= self.end:
            return 0.0
        if self.profile == "flat":
            return 1.0
        middle = (self.start + self.end) / 2
        half = (self.end - self.start) / 2
        return 1.0 - abs(now - middle) / half


@dataclass
class NetworkPath:
    """A one-way path with stochastic delay and loss.

    Attributes:
        base_delay: Propagation delay in seconds.
        jitter_std: Standard deviation of per-packet delay noise (s).
        loss_rate: Base random-loss probability.
        congestion: Congestion episodes affecting this path.
        rng: Dedicated random source; pass a seeded ``random.Random`` for
            reproducible runs.
    """

    base_delay: float = 0.010
    jitter_std: float = 0.0005
    loss_rate: float = 0.0
    congestion: list[CongestionEvent] = field(default_factory=list)
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    packets_sent: int = 0
    packets_lost: int = 0
    _last_exit: float = 0.0

    def conditions(self, now: float) -> tuple[float, float, float]:
        """Effective (delay, jitter_std, loss) at time ``now``."""
        delay = self.base_delay
        jitter = self.jitter_std
        loss = self.loss_rate
        for event in self.congestion:
            weight = event.intensity(now)
            if weight > 0.0:
                delay += weight * event.extra_delay
                jitter += weight * event.extra_jitter
                loss += weight * event.extra_loss
        return delay, jitter, min(loss, 1.0)

    def transit(self, now: float) -> float | None:
        """Sample the one-way delay for a packet sent at ``now``.

        Returns ``None`` when the packet is lost.  Delay noise is drawn from
        a folded normal so delay never goes below the propagation floor, and
        the path is FIFO: a packet never exits before one sent earlier
        (queues do not reorder), which matters for back-to-back packets of
        the same frame.
        """
        self.packets_sent += 1
        delay, jitter, loss = self.conditions(now)
        if loss > 0.0 and self.rng.random() < loss:
            self.packets_lost += 1
            return None
        exit_time = now + delay + abs(self.rng.gauss(0.0, jitter))
        exit_time = max(exit_time, self._last_exit + 1e-7)
        self._last_exit = exit_time
        return exit_time - now

    def is_congested(self, now: float) -> bool:
        """True when any congestion episode is active at ``now``."""
        return any(event.intensity(now) > 0.0 for event in self.congestion)
