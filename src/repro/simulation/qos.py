"""Ground-truth QoS reporting, standing in for the Zoom SDK statistics feed.

The paper validates its estimators against per-second statistics logged by a
custom Zoom SDK client (§5, "Validation of Metrics").  The emulator knows the
true encoder rates and path delays, so it publishes the same feed: one
:class:`QoSSample` per stream per second.  Two Zoom quirks are reproduced
because the paper leans on them:

* the latency figure only *updates* every five seconds (Figure 10b), and
* the jitter figure is so heavily smoothed that it never exceeds ~2 ms even
  under congestion (Figure 10c) — which is why the paper's RFC-3550 estimate
  visibly disagrees with it.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field

ZOOM_LATENCY_UPDATE_PERIOD = 5.0
"""Zoom's client UI refreshes its latency figure only every 5 s (§5.3)."""

ZOOM_JITTER_SMOOTHING = 1.0 / 1024.0
"""EWMA weight of the Zoom-style jitter figure; small enough that the
reported value stays below ~2 ms, as the paper observed (§5.4)."""


@dataclass(frozen=True, slots=True)
class ImpairmentInterval:
    """Ground truth about one injected impairment episode.

    The impairment scenarios (:mod:`repro.simulation.campus`) attach these
    so the QoE ground-truth suite can assert the state machine transitions
    exactly when — and only when — the injected QoS degrades.

    Attributes:
        start / end: Degradation window in absolute simulation seconds.
        kind: Which knob was turned (``"loss"``, ``"jitter"``,
            ``"bandwidth"``, ``"adaptation"``).
        expected_state: Name of the :class:`~repro.qoe.machine.QoeState` the
            machine must reach for this interval (``"DEGRADED"`` /
            ``"IMPAIRED"`` / ``"CRITICAL"``).
        detect_slack: Seconds after ``start`` by which the enter transition
            must have fired (covers streak + dwell hysteresis delay).
        clear_slack: Seconds after ``end`` by which the machine must be back
            to GOOD (covers exit streaks and decaying estimators).
    """

    start: float
    end: float
    kind: str
    expected_state: str
    detect_slack: float = 4.0
    clear_slack: float = 6.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("impairment interval must have end > start")
        if self.expected_state not in ("DEGRADED", "IMPAIRED", "CRITICAL"):
            raise ValueError(f"unknown expected_state {self.expected_state!r}")


@dataclass(frozen=True, slots=True)
class QoSSample:
    """One per-second ground-truth statistics record for one stream.

    Attributes:
        time: End of the one-second window (simulation clock).
        meeting_id: Emulator meeting identity.
        participant: Sender name.
        media_type: Zoom media type value (13/15/16).
        ssrc: The stream's SSRC.
        sent_frames: Frames the encoder emitted in the window.
        sent_packets / sent_bytes: Media packets/bytes emitted in the window.
        delivered_frames: Frames fully delivered to at least one receiver.
        latency_ms: Zoom-style displayed latency (updates every 5 s).
        true_latency_ms: Actual mean monitor↔SFU↔monitor latency over the
            window (dense truth the analyzer should track).
        jitter_ms: Zoom-style over-smoothed jitter figure.
        true_jitter_ms: RFC-3550-style frame-level jitter computed from true
            arrival times.
        encoder_fps: The encoder's current target frame rate.
    """

    time: float
    meeting_id: str
    participant: str
    media_type: int
    ssrc: int
    sent_frames: int
    sent_packets: int
    sent_bytes: int
    delivered_frames: int
    latency_ms: float
    true_latency_ms: float
    jitter_ms: float
    true_jitter_ms: float
    encoder_fps: float


@dataclass
class QoSReport:
    """The full ground-truth feed for one simulation run."""

    samples: list[QoSSample] = field(default_factory=list)

    def add(self, sample: QoSSample) -> None:
        self.samples.append(sample)

    def for_stream(self, ssrc: int, meeting_id: str | None = None) -> list[QoSSample]:
        """All samples of one stream, in time order."""
        picked = [
            s
            for s in self.samples
            if s.ssrc == ssrc and (meeting_id is None or s.meeting_id == meeting_id)
        ]
        picked.sort(key=lambda s: s.time)
        return picked

    def streams(self) -> list[tuple[str, int]]:
        """All (meeting_id, ssrc) pairs present in the report."""
        return sorted({(s.meeting_id, s.ssrc) for s in self.samples})

    def series(
        self, ssrc: int, attribute: str, meeting_id: str | None = None
    ) -> tuple[list[float], list[float]]:
        """Extract (times, values) for one attribute of one stream."""
        samples = self.for_stream(ssrc, meeting_id)
        return [s.time for s in samples], [getattr(s, attribute) for s in samples]

    def value_at(
        self, ssrc: int, attribute: str, time: float, meeting_id: str | None = None
    ) -> float | None:
        """The most recent value of ``attribute`` at or before ``time``."""
        times, values = self.series(ssrc, attribute, meeting_id)
        index = bisect.bisect_right(times, time) - 1
        return values[index] if index >= 0 else None


class QoSCollector:
    """Accumulates per-window counters and emits :class:`QoSSample` records.

    The meeting simulator calls the ``record_*`` methods as events happen and
    :meth:`flush` at each one-second boundary.
    """

    def __init__(self, meeting_id: str) -> None:
        self.meeting_id = meeting_id
        self.report = QoSReport()
        self._sent_frames: dict[int, int] = defaultdict(int)
        self._sent_packets: dict[int, int] = defaultdict(int)
        self._sent_bytes: dict[int, int] = defaultdict(int)
        self._delivered_frames: dict[int, int] = defaultdict(int)
        self._latencies: dict[int, list[float]] = defaultdict(list)
        self._displayed_latency: dict[int, float] = {}
        self._latency_updated_at: dict[int, float] = {}
        self._smoothed_jitter: dict[int, float] = defaultdict(float)
        self._true_jitter: dict[int, float] = defaultdict(float)
        self._last_arrival: dict[int, tuple[float, float]] = {}
        self._stream_info: dict[int, tuple[str, int]] = {}
        self._encoder_fps: dict[int, float] = {}

    def register_stream(
        self, ssrc: int, participant: str, media_type: int, encoder_fps: float
    ) -> None:
        self._stream_info[ssrc] = (participant, media_type)
        self._encoder_fps[ssrc] = encoder_fps

    def record_frame_sent(self, ssrc: int) -> None:
        self._sent_frames[ssrc] += 1

    def record_packet_sent(self, ssrc: int, size: int) -> None:
        self._sent_packets[ssrc] += 1
        self._sent_bytes[ssrc] += size

    def record_frame_delivered(self, ssrc: int) -> None:
        self._delivered_frames[ssrc] += 1

    def record_latency(self, ssrc: int, latency_seconds: float) -> None:
        self._latencies[ssrc].append(latency_seconds)

    def record_encoder_rate(self, ssrc: int, fps: float) -> None:
        self._encoder_fps[ssrc] = fps

    def record_frame_arrival(
        self, ssrc: int, arrival_time: float, media_time: float
    ) -> None:
        """Feed the jitter estimators with a frame arrival.

        ``media_time`` is the frame's position in the media signal (capture
        time); the RFC 3550 transit-difference uses both.
        """
        if ssrc in self._last_arrival:
            last_arrival, last_media = self._last_arrival[ssrc]
            difference = abs((arrival_time - last_arrival) - (media_time - last_media))
            self._true_jitter[ssrc] += (difference - self._true_jitter[ssrc]) / 16.0
            self._smoothed_jitter[ssrc] += ZOOM_JITTER_SMOOTHING * (
                difference - self._smoothed_jitter[ssrc]
            )
        self._last_arrival[ssrc] = (arrival_time, media_time)

    def flush(self, now: float) -> None:
        """Emit one sample per registered stream for the window ending now."""
        for ssrc, (participant, media_type) in self._stream_info.items():
            latencies = self._latencies.pop(ssrc, [])
            true_latency = (
                sum(latencies) / len(latencies) * 1000.0 if latencies else float("nan")
            )
            last_update = self._latency_updated_at.get(ssrc)
            if latencies and (
                last_update is None or now - last_update >= ZOOM_LATENCY_UPDATE_PERIOD
            ):
                self._displayed_latency[ssrc] = true_latency
                self._latency_updated_at[ssrc] = now
            self.report.add(
                QoSSample(
                    time=now,
                    meeting_id=self.meeting_id,
                    participant=participant,
                    media_type=media_type,
                    ssrc=ssrc,
                    sent_frames=self._sent_frames.pop(ssrc, 0),
                    sent_packets=self._sent_packets.pop(ssrc, 0),
                    sent_bytes=self._sent_bytes.pop(ssrc, 0),
                    delivered_frames=self._delivered_frames.pop(ssrc, 0),
                    latency_ms=self._displayed_latency.get(ssrc, float("nan")),
                    true_latency_ms=true_latency,
                    jitter_ms=self._smoothed_jitter.get(ssrc, 0.0) * 1000.0,
                    true_jitter_ms=self._true_jitter.get(ssrc, 0.0) * 1000.0,
                    encoder_fps=self._encoder_fps.get(ssrc, 0.0),
                )
            )
