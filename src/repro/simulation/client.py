"""The Zoom client model: packetization of media into Zoom wire format.

A :class:`ZoomClientModel` owns the per-stream protocol state the paper
documents: one SSRC per media stream (small, structured, unique only within
the meeting — §4.2.3), independent RTP sequence spaces per substream
(main + FEC), Zoom media-encapsulation sequence/timestamp counters, the
per-frame ``frame_sequence`` / ``packets_in_frame`` fields, the marker bit
on the last packet of each frame, and once-per-second RTCP sender reports.

RTP payload bytes are drawn from a seeded RNG so they are indistinguishable
from encrypted data — which is what makes the entropy analysis of
:mod:`repro.core.entropy` classify them as random, exactly as in Figure 5c.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.rtp.rtcp import RTCPSdes, RTCPSenderReport, ntp_from_unix
from repro.rtp.rtp import RTPHeader
from repro.simulation.media import AudioPacketSpec, Frame
from repro.zoom.constants import (
    AUDIO_SAMPLING_RATE,
    VIDEO_SAMPLING_RATE,
    RTPPayloadType,
    ZoomMediaType,
)
from repro.zoom.media_encap import MediaEncap

MAX_RTP_PAYLOAD = 1050
"""Maximum RTP payload bytes per media packet before a frame is split."""

FU_INDICATOR = 0x7C
"""H.264 fragmentation-unit NAL indicator prepended to video payloads (§4.2.3)."""

RTP_EXTENSION_PROFILE = 0xBEDE
"""One-byte-header RTP extension profile Zoom media packets carry."""


@dataclass(frozen=True, slots=True)
class MediaPacket:
    """One Zoom media packet before SFU-layer wrapping.

    Attributes:
        media: The Zoom media encapsulation header.
        rtp: The inner RTP header.
        rtp_payload: The (pseudo-encrypted) payload bytes.
        frame_id: Emulator-internal frame identity for ground truth; ``None``
            for audio packets.
    """

    media: MediaEncap
    rtp: RTPHeader
    rtp_payload: bytes
    frame_id: int | None = None

    @property
    def is_fec(self) -> bool:
        return self.rtp.payload_type == RTPPayloadType.FEC

    @property
    def size(self) -> int:
        """Wire size of the media + RTP layers (without SFU encapsulation)."""
        return self.media.header_len + self.rtp.header_len + len(self.rtp_payload)


@dataclass
class _SubStreamState:
    """Independent RTP sequence space of one substream (payload type)."""

    next_sequence: int

    def take(self) -> int:
        value = self.next_sequence
        self.next_sequence = (self.next_sequence + 1) & 0xFFFF
        return value


@dataclass
class _StreamState:
    """Protocol state of one media stream (one SSRC)."""

    ssrc: int
    media_type: ZoomMediaType
    sampling_rate: int
    substreams: dict[int, _SubStreamState] = field(default_factory=dict)
    zoom_sequence: int = 0
    frame_sequence: int = 0
    packet_count: int = 0
    octet_count: int = 0
    last_rtp_timestamp: int = 0

    def sub(self, payload_type: int) -> _SubStreamState:
        if payload_type not in self.substreams:
            self.substreams[payload_type] = _SubStreamState(
                next_sequence=(self.ssrc * 131 + payload_type * 17) & 0xFFFF
            )
        return self.substreams[payload_type]

    def next_zoom_seq(self) -> int:
        value = self.zoom_sequence
        self.zoom_sequence = (self.zoom_sequence + 1) & 0xFFFF
        return value

    def next_frame_seq(self) -> int:
        value = self.frame_sequence
        self.frame_sequence = (self.frame_sequence + 1) & 0xFFFF
        return value


class ZoomClientModel:
    """Per-participant packetization state machine.

    Args:
        participant_index: Index of the participant within the meeting.
            SSRCs are derived from it as ``(index << 8) | media_type`` —
            small structured values that repeat *across* meetings, matching
            the paper's observation that SSRCs are neither globally unique
            nor random (§4.3.1) and stressing the grouping heuristic.
        fec_ratio: Fraction of video/audio packets shadowed by a payload-type
            110 FEC packet (same timestamp, separate sequence space).
        rng: Seeded random source for payload bytes and FEC sampling.
    """

    def __init__(
        self,
        participant_index: int,
        *,
        fec_ratio: float = 0.09,
        mobile: bool = False,
        rng: random.Random | None = None,
    ) -> None:
        self.participant_index = participant_index
        self.fec_ratio = fec_ratio
        self.mobile = mobile
        self._rng = rng or random.Random(participant_index)
        self._streams: dict[ZoomMediaType, _StreamState] = {}

    def stream(self, media_type: ZoomMediaType) -> _StreamState:
        """Get or create the protocol state for one media type."""
        if media_type not in self._streams:
            sampling = (
                AUDIO_SAMPLING_RATE
                if media_type == ZoomMediaType.AUDIO
                else VIDEO_SAMPLING_RATE
            )
            self._streams[media_type] = _StreamState(
                ssrc=(self.participant_index << 8) | int(media_type),
                media_type=media_type,
                sampling_rate=sampling,
            )
        return self._streams[media_type]

    @property
    def active_streams(self) -> tuple[_StreamState, ...]:
        return tuple(self._streams.values())

    def _encrypted(self, length: int) -> bytes:
        """Pseudo-encrypted payload bytes (uniform random)."""
        return self._rng.randbytes(max(length, 1))

    def _media_packet(
        self,
        stream: _StreamState,
        *,
        payload_type: int,
        rtp_timestamp: int,
        payload: bytes,
        marker: bool,
        frame_seq: int = 0,
        packets_in_frame: int = 0,
        frame_id: int | None = None,
    ) -> MediaPacket:
        rtp = RTPHeader(
            payload_type=payload_type,
            sequence=stream.sub(payload_type).take(),
            timestamp=rtp_timestamp & 0xFFFFFFFF,
            ssrc=stream.ssrc,
            marker=marker,
            extension_profile=RTP_EXTENSION_PROFILE,
            extension_data=self._encrypted(4),
        )
        media = MediaEncap(
            media_type=int(stream.media_type),
            sequence=stream.next_zoom_seq(),
            timestamp=rtp_timestamp & 0xFFFFFFFF,
            frame_sequence=frame_seq,
            packets_in_frame=packets_in_frame,
        )
        stream.packet_count += 1
        stream.octet_count += len(payload)
        stream.last_rtp_timestamp = rtp_timestamp & 0xFFFFFFFF
        return MediaPacket(media=media, rtp=rtp, rtp_payload=payload, frame_id=frame_id)

    def packetize_frame(
        self, media_type: ZoomMediaType, frame: Frame, frame_id: int
    ) -> list[MediaPacket]:
        """Split a video or screen-share frame into Zoom media packets.

        The frame is split into ``ceil(size / MAX_RTP_PAYLOAD)`` packets; each
        carries the frame's RTP timestamp, the per-frame ``frame_sequence``,
        and the total ``packets_in_frame`` count; the last packet has the RTP
        marker bit set (§4.2.3).  Video packets may be shadowed by FEC
        packets on payload type 110 with identical timestamps but their own
        sequence numbers.
        """
        if media_type not in (ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE):
            raise ValueError(f"packetize_frame is for video-like media, got {media_type}")
        stream = self.stream(media_type)
        count = max(1, -(-frame.size // MAX_RTP_PAYLOAD))
        frame_seq = stream.next_frame_seq()
        main_pt = (
            int(RTPPayloadType.VIDEO_MAIN)
            if media_type == ZoomMediaType.VIDEO
            else int(RTPPayloadType.MULTIPLEX_99)
        )
        packets: list[MediaPacket] = []
        remaining = frame.size
        for i in range(count):
            chunk = min(MAX_RTP_PAYLOAD, remaining)
            remaining -= chunk
            # Video payloads start with an H.264 FU NAL header (§4.2.3).
            fu_header = bytes(
                [FU_INDICATOR, (0x80 if i == 0 else 0x00) | (0x40 if i == count - 1 else 0)]
            )
            payload = fu_header + self._encrypted(max(chunk - 2, 1))
            packets.append(
                self._media_packet(
                    stream,
                    payload_type=main_pt,
                    rtp_timestamp=frame.rtp_timestamp,
                    payload=payload,
                    marker=(i == count - 1),
                    frame_seq=frame_seq,
                    packets_in_frame=count,
                    frame_id=frame_id,
                )
            )
        if media_type == ZoomMediaType.VIDEO and self.fec_ratio > 0:
            for packet in list(packets):
                if self._rng.random() < self.fec_ratio:
                    packets.append(
                        self._media_packet(
                            stream,
                            payload_type=int(RTPPayloadType.FEC),
                            rtp_timestamp=frame.rtp_timestamp,
                            payload=self._encrypted(len(packet.rtp_payload)),
                            marker=False,
                            frame_seq=frame_seq,
                            packets_in_frame=count,
                            frame_id=None,  # FEC does not count toward delivery
                        )
                    )
        return packets

    def packetize_audio(self, spec: AudioPacketSpec) -> list[MediaPacket]:
        """Build the Zoom media packet(s) for one 20 ms audio interval."""
        stream = self.stream(ZoomMediaType.AUDIO)
        packets = [
            self._media_packet(
                stream,
                payload_type=spec.payload_type,
                rtp_timestamp=spec.rtp_timestamp,
                payload=self._encrypted(spec.payload_len),
                marker=False,
            )
        ]
        if spec.payload_type == RTPPayloadType.AUDIO_SPEAKING and (
            self._rng.random() < self.fec_ratio / 3
        ):
            packets.append(
                self._media_packet(
                    stream,
                    payload_type=int(RTPPayloadType.FEC),
                    rtp_timestamp=spec.rtp_timestamp,
                    payload=self._encrypted(spec.payload_len),
                    marker=False,
                )
            )
        return packets

    def rtcp_reports(self, now: float) -> list[tuple[MediaEncap, list]]:
        """Build the once-per-second RTCP sender reports for active streams.

        Returns (media_encap, reports) pairs ready for
        :func:`repro.zoom.packets.build_rtcp_payload`.  Roughly a quarter of
        reports carry an additional *empty* SDES (media type 34 instead of
        33), matching Table 2's relative frequencies.
        """
        out: list[tuple[MediaEncap, list]] = []
        for stream in self._streams.values():
            if stream.packet_count == 0:
                # A sender report describes sent media; nothing sent yet
                # (e.g. a screen share still static) means no SR.
                continue
            ntp_seconds, ntp_fraction = ntp_from_unix(now)
            sender_report = RTCPSenderReport(
                ssrc=stream.ssrc,
                ntp_seconds=ntp_seconds,
                ntp_fraction=ntp_fraction,
                rtp_timestamp=stream.last_rtp_timestamp,
                packet_count=stream.packet_count & 0xFFFFFFFF,
                octet_count=stream.octet_count & 0xFFFFFFFF,
            )
            # Table 2: SR+SDES (type 34) outnumbers lone SR (33) ~3:1.
            if self._rng.random() < 0.75:
                media = MediaEncap(media_type=int(ZoomMediaType.RTCP_SR_SDES))
                reports = [sender_report, RTCPSdes(ssrc=stream.ssrc)]
            else:
                media = MediaEncap(media_type=int(ZoomMediaType.RTCP_SR))
                reports = [sender_report]
            out.append((media, reports))
        return out
