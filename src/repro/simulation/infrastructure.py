"""A synthetic Zoom server directory modeled on Appendix B.

Zoom publishes its IP prefixes; the paper reverse-resolved them and found
5,452 multi-media routers (MMRs — Zoom's SFUs) and 256 zone controllers (ZCs
— the STUN servers) named ``zoom<location><id><type>.<location>.zoom.us``
across 15 locations (Table 7).  The emulator reproduces that structure at a
configurable scale so the detection pipeline and Table 7 bench have a
directory to work against.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Iterator

#: (location label, two-letter site code, MMR count, ZC count) — Table 7,
#: with the per-state US rows folded into their sites.
TABLE7_LOCATIONS: tuple[tuple[str, str, int, int], ...] = (
    ("United States / California", "sc", 1410, 68),
    ("United States / New York", "ny", 1280, 62),
    ("United States / Colorado", "dv", 758, 21),
    ("United States / Virginia", "wd", 166, 4),
    ("United States / Washington", "se", 96, 12),
    ("Netherlands / Amsterdam", "am", 419, 21),
    ("China / Hongkong", "hk", 274, 8),
    ("Germany / Frankfurt", "fr", 214, 2),
    ("Australia / Sydney-Melbourne", "sy", 210, 20),
    ("India / Mumbai-Hyderabad", "mb", 196, 10),
    ("Japan / Tokyo", "ty", 128, 2),
    ("Brasil / Sao Paulo", "sp", 124, 6),
    ("Canada / Toronto", "tr", 93, 12),
    ("China / Mainland", "cn", 84, 8),
)


@dataclass(frozen=True, slots=True)
class ZoomServer:
    """One Zoom server: an MMR (SFU) or a ZC (STUN zone controller).

    Attributes:
        ip: The server's IPv4 address.
        hostname: Name following Zoom's scheme
            ``zoom<location><id><type>.<location>.zoom.us``.
        location: Human-readable location label.
        kind: ``"mmr"`` or ``"zc"``.
    """

    ip: str
    hostname: str
    location: str
    kind: str

    @property
    def is_mmr(self) -> bool:
        return self.kind == "mmr"

    @property
    def is_zc(self) -> bool:
        return self.kind == "zc"


class ServerDirectory:
    """The synthetic equivalent of Zoom's published IP list + reverse DNS.

    Args:
        scale: Fraction of Table 7's server counts to instantiate (1.0 would
            build all 5,708 servers; the default keeps runs light).
        subnet: The Zoom-AS prefix addresses are allocated from.
        seed: RNG seed for the (deterministic) address shuffle.
    """

    def __init__(
        self,
        *,
        scale: float = 0.02,
        subnet: str = "170.114.0.0/16",
        seed: int = 7,
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.subnet = ipaddress.ip_network(subnet)
        rng = random.Random(seed)
        hosts: Iterator[ipaddress.IPv4Address] = self.subnet.hosts()
        self.servers: list[ZoomServer] = []
        for location, code, mmr_count, zc_count in TABLE7_LOCATIONS:
            for kind, count in (("mmr", mmr_count), ("zc", zc_count)):
                scaled = max(1, round(count * scale))
                for index in range(scaled):
                    ip = str(next(hosts))
                    hostname = f"zoom{code}{index + 1}{kind}.{code}.zoom.us"
                    self.servers.append(ZoomServer(ip, hostname, location, kind))
        rng.shuffle(self.servers)
        self._by_ip = {server.ip: server for server in self.servers}

    @property
    def mmrs(self) -> list[ZoomServer]:
        return [s for s in self.servers if s.is_mmr]

    @property
    def zcs(self) -> list[ZoomServer]:
        return [s for s in self.servers if s.is_zc]

    def lookup(self, ip: str) -> ZoomServer | None:
        """Reverse lookup: the server at ``ip``, or ``None``."""
        return self._by_ip.get(ip)

    def pick_mmr(self, rng: random.Random) -> ZoomServer:
        """A random MMR, as Zoom's connection broker would assign one."""
        mmrs = self.mmrs
        return mmrs[rng.randrange(len(mmrs))]

    def pick_zc(self, rng: random.Random) -> ZoomServer:
        """A random zone controller for the STUN exchange."""
        zcs = self.zcs
        return zcs[rng.randrange(len(zcs))]

    def location_table(self) -> list[tuple[str, int, int]]:
        """Rows of (location, #MMRs, #ZCs) — the shape of Table 7."""
        rows: dict[str, list[int]] = {}
        for server in self.servers:
            counts = rows.setdefault(server.location, [0, 0])
            counts[0 if server.is_mmr else 1] += 1
        ordered = sorted(rows.items(), key=lambda item: -item[1][0])
        return [(location, mmr, zc) for location, (mmr, zc) in ordered]

    def subnets(self) -> list[str]:
        """The prefixes an operator would feed the capture filter."""
        return [str(self.subnet)]
