"""Meeting orchestration: clients, SFU, the campus monitor, and P2P switching.

This module wires the media sources, client packetizers, network paths, and
SFU model into a discrete-event simulation whose observable output is exactly
what the paper's capture system sees: a time-ordered list of raw Ethernet
frames crossing the campus border, plus the ground-truth QoS feed used for
validation.

Vantage-point model (§6.1): the monitor sits at the campus border.  Each
on-campus participant has *campus* path legs (client ↔ border) and *external*
legs (border ↔ SFU or peer); packets are captured when they cross the border,
so losses on the campus leg hide packets from the monitor while losses on the
external leg happen after capture — reproducing the retransmission-visibility
asymmetry of §5.5.  Off-campus participants never cross the border except as
the far end of a forwarded stream, reproducing the passive-participant
limitation of Figure 9.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.net.packet import CapturedPacket, build_tcp_frame, build_udp_frame
from repro.net.tcp import TCPFlags
from repro.rtp.stun import STUN_PORT, StunMessage
from repro.simulation.client import MediaPacket, ZoomClientModel
from repro.simulation.clock import EventScheduler
from repro.simulation.media import AudioSource, Frame, ScreenShareSource, VideoSource
from repro.simulation.netpath import CongestionEvent, NetworkPath
from repro.simulation.qos import QoSCollector, QoSReport
from repro.simulation.sfu import SfuModel
from repro.zoom.constants import (
    CONTROL_MEDIA_TYPES,
    RETRANSMIT_LIMIT,
    RETRANSMIT_TIMEOUT,
    SERVER_MEDIA_PORT,
    SERVER_TLS_PORT,
    ZoomMediaType,
)
from repro.zoom.packets import build_control_payload, build_media_payload, build_rtcp_payload
from repro.zoom.sfu_encap import Direction, SfuEncap

NORMAL_FPS = 28.0
"""Zoom's usual video frame-rate target (§6.2)."""

REDUCED_FPS = 14.0
"""The reduced-fps mode used for thumbnails and under congestion (§6.2)."""


@dataclass(frozen=True)
class ParticipantConfig:
    """Static description of one meeting participant.

    Attributes:
        name: Human-readable identity (appears in ground truth).
        on_campus: Whether the client sits inside the monitored network.
        media: Media types this participant sends.  An empty tuple makes a
            *passive* participant (muted, camera off) that emits no media
            streams at all — invisible to the grouping heuristic (Figure 9).
        join_time / leave_time: Presence window relative to meeting start;
            ``leave_time=None`` means until the end.
        mobile: Mobile clients send audio payload type 113 (§4.2.3).
        motion: Video motion level, 0-1 (drives frame sizes).
        video_fps: Initial encoder frame-rate target.
        thumbnail: When True the *receivers* display this sender as a
            thumbnail and the sender stays in reduced-fps mode (§6.2).
        campus_delay / external_delay: One-way propagation per leg (s).
        jitter_std: Per-packet delay noise on the external leg (s).
        loss_rate: Base random loss on the external leg.
        congestion: Congestion episodes applied to the external legs.
        congestion_down: Additional episodes applied only to the *external
            down* leg (SFU → border).  Impairment scenarios use this: the
            damage happens before the monitor sees the packet (so gaps and
            jitter are capture-visible, §5.5) without congesting the
            sender's up leg and triggering its rate adaptation.
        media_schedule: Mid-meeting media toggles as (time offset from
            meeting start, media type, enabled) triples — muting the mic or
            stopping the camera makes the corresponding UDP flow disappear
            and reappear, the behaviour prior work used to identify flows
            (§3).
    """

    name: str
    on_campus: bool = True
    media: tuple[ZoomMediaType, ...] = (ZoomMediaType.AUDIO, ZoomMediaType.VIDEO)
    join_time: float = 0.0
    leave_time: Optional[float] = None
    mobile: bool = False
    motion: float = 0.3
    video_fps: float = NORMAL_FPS
    thumbnail: bool = False
    campus_delay: float = 0.0015
    external_delay: float = 0.015
    jitter_std: float = 0.0006
    loss_rate: float = 0.0005
    congestion: tuple[CongestionEvent, ...] = ()
    congestion_down: tuple[CongestionEvent, ...] = ()
    media_schedule: tuple[tuple[float, ZoomMediaType, bool], ...] = ()


@dataclass(frozen=True)
class MeetingConfig:
    """Static description of one meeting to simulate.

    Attributes:
        meeting_id: Identity used in ground truth records.
        participants: The attendee list.
        duration: Meeting length in seconds (from ``start_time``).
        start_time: Absolute simulation start of the meeting.
        sfu_ip: The MMR address (must fall in a Zoom subnet for detection).
        zc_ip: Zone-controller address used for STUN.
        allow_p2p: Whether a two-party meeting may switch to P2P.
        p2p_switch_delay: Seconds after the second join before the switch.
        control_ratio: Approximate fraction of undecodable control packets
            to mix in (Table 2 reports just under 10%).
        seed: Master random seed; every run is reproducible.
        tcp_control: Emulate the TLS control connection (latency Method 2).
        address_octet: Third octet of participant addresses.  ``None``
            derives it from ``meeting_id`` (deterministic); the campus
            generator assigns disjoint octets explicitly to keep concurrent
            meetings' clients from colliding.
    """

    meeting_id: str
    participants: tuple[ParticipantConfig, ...]
    duration: float = 60.0
    start_time: float = 0.0
    sfu_ip: str = "170.114.10.5"
    zc_ip: str = "170.114.200.9"
    allow_p2p: bool = True
    p2p_switch_delay: float = 8.0
    control_ratio: float = 0.10
    seed: int = 0
    tcp_control: bool = True
    address_octet: int | None = None


@dataclass(frozen=True, slots=True)
class StreamTruth:
    """Ground truth about one emitted media stream (for validating grouping)."""

    meeting_id: str
    participant: str
    ssrc: int
    media_type: int
    on_campus: bool


@dataclass(frozen=True, slots=True)
class P2PFlowTruth:
    """Ground truth about one P2P flow (for validating the STUN detector)."""

    meeting_id: str
    client_ip: str
    client_port: int
    peer_ip: str
    peer_port: int
    established_at: float


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes:
        captures: Monitor-captured frames, sorted by capture time.
        qos: Ground-truth per-second statistics feed.
        stream_truths: Every media stream that existed, with its sender.
        p2p_flows: Every P2P flow that was established.
        packets_generated: Total packets emitted by all endpoints.
        packets_captured: Packets that crossed the monitor.
    """

    captures: list[CapturedPacket] = field(default_factory=list)
    qos: QoSReport = field(default_factory=QoSReport)
    stream_truths: list[StreamTruth] = field(default_factory=list)
    p2p_flows: list[P2PFlowTruth] = field(default_factory=list)
    packets_generated: int = 0
    packets_captured: int = 0

    def merge(self, other: "SimulationResult") -> None:
        """Fold another run's output into this one (used by the campus
        generator); captures must be re-sorted by the caller."""
        self.captures.extend(other.captures)
        self.qos.samples.extend(other.qos.samples)
        self.stream_truths.extend(other.stream_truths)
        self.p2p_flows.extend(other.p2p_flows)
        self.packets_generated += other.packets_generated
        self.packets_captured += other.packets_captured


class _Participant:
    """Runtime state of one participant."""

    def __init__(
        self,
        index: int,
        config: ParticipantConfig,
        meeting: "MeetingSimulator",
        rng: random.Random,
    ) -> None:
        self.index = index
        self.config = config
        self.meeting = meeting
        self.rng = rng
        subnet = 8 if config.on_campus else 18
        if config.on_campus:
            self.ip = f"10.{subnet}.{meeting.address_octet}.{10 + index}"
        else:
            self.ip = f"198.{subnet}.{meeting.address_octet}.{10 + index}"
        self.client = ZoomClientModel(
            index, mobile=config.mobile, rng=random.Random(rng.randrange(1 << 30))
        )
        # Directional paths.  Campus legs are quiet; external legs carry the
        # configured jitter/loss/congestion.
        def _path(
            base: float,
            jitter: float,
            loss: float,
            congestion: tuple[CongestionEvent, ...] = (),
        ) -> NetworkPath:
            return NetworkPath(
                base_delay=base,
                jitter_std=jitter,
                loss_rate=loss,
                congestion=list(congestion),
                rng=random.Random(rng.randrange(1 << 30)),
            )

        self.campus_up = _path(config.campus_delay, 0.00008, 0.0)
        self.campus_down = _path(config.campus_delay, 0.00008, 0.0001)
        self.ext_up = _path(
            config.external_delay, config.jitter_std, config.loss_rate,
            config.congestion,
        )
        self.ext_down = _path(
            config.external_delay, config.jitter_std, config.loss_rate,
            config.congestion + config.congestion_down,
        )
        # Media sources.
        source_seed = rng.randrange(1 << 30)
        self.video = VideoSource(
            fps=REDUCED_FPS if config.thumbnail else config.video_fps,
            motion=config.motion,
            rng=random.Random(source_seed),
        )
        self.audio = AudioSource(
            mobile_mode=config.mobile, rng=random.Random(source_seed + 1)
        )
        self.screen = ScreenShareSource(rng=random.Random(source_seed + 2))
        # SFU-mode flow state.
        self.sfu_seq: dict[int, int] = {}
        self.ports: dict[ZoomMediaType, int] = {}
        self.p2p_port: int | None = None
        # TCP control connection state.
        self.tcp_port = 40000 + 91 * index + meeting.address_octet
        self.tcp_seq = rng.randrange(1 << 20)
        self.server_tcp_seq = rng.randrange(1 << 20)
        # Rate-adaptation hysteresis.
        self.congested_since: float | None = None
        self.clear_since: float | None = None
        self.reduced = config.thumbnail
        self.present = False
        # Per-media enable state (media toggles, §3).
        self.media_enabled: dict[ZoomMediaType, bool] = {
            media: True for media in config.media
        }

    def sends(self, media_type: ZoomMediaType) -> bool:
        return self.media_enabled.get(media_type, False)

    def port_for(self, media_type: ZoomMediaType) -> int:
        return self.ports[media_type]

    def next_sfu_seq(self, flow_key: int) -> int:
        value = self.sfu_seq.get(flow_key, 0)
        self.sfu_seq[flow_key] = (value + 1) & 0xFFFF
        return value

    def is_present(self, now: float) -> bool:
        start = self.meeting.config.start_time
        if now < start + self.config.join_time:
            return False
        if self.config.leave_time is not None and now > start + self.config.leave_time:
            return False
        return now <= start + self.meeting.config.duration


class MeetingSimulator:
    """Simulates one Zoom meeting and records the monitor's view of it.

    Usage::

        result = MeetingSimulator(config).run()
        write_pcap("meeting.pcap", result.captures)
    """

    def __init__(self, config: MeetingConfig, *, scheduler: EventScheduler | None = None) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        if config.address_octet is not None:
            self.address_octet = config.address_octet % 250 + 1
        else:
            self.address_octet = zlib.crc32(config.meeting_id.encode()) % 250 + 1
        self.scheduler = scheduler or EventScheduler(config.start_time)
        self.sfu = SfuModel(ip=config.sfu_ip)
        self.participants = [
            _Participant(i, p, self, random.Random(config.seed * 1009 + i))
            for i, p in enumerate(config.participants)
        ]
        self.result = SimulationResult()
        self.qos = QoSCollector(config.meeting_id)
        self.result.qos = self.qos.report
        self.mode = "sfu"
        self.mode_epoch = 0
        self.p2p_banned = False
        self._frame_counter = 0
        self._frames: dict[int, tuple[Frame, int]] = {}  # frame_id -> (frame, ssrc)
        self._rx_frames: dict[tuple[str, int, int], set[int]] = {}
        self._rx_done: set[tuple[str, int, int]] = set()
        self._assign_ports()

    # ------------------------------------------------------------------ setup

    def _assign_ports(self) -> None:
        """Assign the per-media ephemeral ports for the current mode epoch.

        Server-based meetings use one UDP flow per media type; a switch to or
        from P2P allocates fresh ports everywhere (§3, §4.3.1).
        """
        offsets = {
            ZoomMediaType.AUDIO: 0,
            ZoomMediaType.VIDEO: 1,
            ZoomMediaType.SCREEN_SHARE: 2,
        }
        for participant in self.participants:
            base = 50000 + participant.index * 211 + self.mode_epoch * 13
            participant.ports = {
                media: base + offset for media, offset in offsets.items()
            }

    # ------------------------------------------------------------ capture I/O

    def _capture(self, when: float, frame: bytes) -> None:
        self.result.captures.append(CapturedPacket(when, frame))
        self.result.packets_captured += 1

    # ---------------------------------------------------------------- running

    def run(self) -> SimulationResult:
        """Execute the meeting and return the monitor's view plus truth."""
        start = self.config.start_time
        end = start + self.config.duration
        for participant in self.participants:
            join_at = start + participant.config.join_time
            self.scheduler.schedule(join_at, self._join, participant)
        second = 1
        while start + second <= end + 0.5:
            self.scheduler.schedule(start + second, self._per_second_tick, start + second)
            second += 1
        self.scheduler.run_until(end)
        self.result.captures.sort(key=lambda c: c.timestamp)
        return self.result

    # ----------------------------------------------------------------- events

    def _join(self, participant: _Participant) -> None:
        now = self.scheduler.now
        participant.present = True
        for media_type in participant.config.media:
            stream = participant.client.stream(media_type)
            self.result.stream_truths.append(
                StreamTruth(
                    meeting_id=self.config.meeting_id,
                    participant=participant.config.name,
                    ssrc=stream.ssrc,
                    media_type=int(media_type),
                    on_campus=participant.config.on_campus,
                )
            )
            fps = participant.video.fps if media_type == ZoomMediaType.VIDEO else 0.0
            self.qos.register_stream(
                stream.ssrc, participant.config.name, int(media_type), fps
            )
            if media_type == ZoomMediaType.VIDEO:
                self.scheduler.schedule(now + 0.01, self._video_tick, participant)
            elif media_type == ZoomMediaType.AUDIO:
                self.scheduler.schedule(now + 0.01, self._audio_tick, participant)
            elif media_type == ZoomMediaType.SCREEN_SHARE:
                self.scheduler.schedule(now + 0.05, self._screen_tick, participant)
        if participant.config.media:
            self.scheduler.schedule(now + 1.0, self._rtcp_tick, participant)
            self.scheduler.schedule(
                now + 0.05, self._control_tick, participant
            )
        if self.config.tcp_control:
            self.scheduler.schedule(now + 0.1, self._tcp_tick, participant)
        for offset, media_type, enabled in participant.config.media_schedule:
            self.scheduler.schedule(
                self.config.start_time + offset,
                self._toggle_media,
                participant,
                media_type,
                enabled,
            )
        self._evaluate_topology()

    def _toggle_media(
        self, participant: _Participant, media_type: ZoomMediaType, enabled: bool
    ) -> None:
        """Mute/unmute a media source mid-meeting: the flow stops or
        resumes, which is exactly how prior work identified Zoom's
        one-flow-per-media-type layout (§3)."""
        participant.media_enabled[media_type] = enabled

    def _evaluate_topology(self) -> None:
        """Switch to P2P for two-party meetings; revert when a third joins."""
        now = self.scheduler.now
        joined = [p for p in self.participants if p.present]
        if len(joined) == 2 and self.config.allow_p2p and not self.p2p_banned:
            if self.mode == "sfu":
                self.scheduler.schedule(
                    now + self.config.p2p_switch_delay * 0.3, self._stun_exchange
                )
                self.scheduler.schedule(
                    now + self.config.p2p_switch_delay, self._switch_to_p2p
                )
        elif len(joined) >= 3 and self.mode == "p2p":
            self.p2p_banned = True
            self._switch_to_sfu()

    def _stun_exchange(self) -> None:
        """Each client exchanges STUN binding requests with the zone
        controller from the port the P2P flow will later use (§4.1)."""
        if self.p2p_banned or self.mode != "sfu":
            return
        now = self.scheduler.now
        for participant in self.participants:
            if not participant.present:
                continue
            participant.p2p_port = (
                52000 + participant.index * 97 + self.mode_epoch * 7 + self.address_octet
            )
            for attempt in range(3):
                self.scheduler.schedule(
                    now + 0.05 * attempt + participant.index * 0.011,
                    self._send_stun,
                    participant,
                    attempt,
                )

    def _send_stun(self, participant: _Participant, attempt: int) -> None:
        now = self.scheduler.now
        transaction = self.rng.randbytes(12)
        request = StunMessage.binding_request(transaction)
        frame = build_udp_frame(
            participant.ip,
            participant.p2p_port or 0,
            self.config.zc_ip,
            STUN_PORT,
            request.serialize(),
        )
        self.result.packets_generated += 1
        if participant.config.on_campus:
            delay = participant.campus_up.transit(now)
            if delay is not None:
                self._capture(now + delay, frame)
        # Response comes back after the external round trip.
        rtt = 2 * (participant.config.campus_delay + participant.config.external_delay)
        response = StunMessage.binding_response(
            transaction, participant.ip, participant.p2p_port or 0
        )
        response_frame = build_udp_frame(
            self.config.zc_ip,
            STUN_PORT,
            participant.ip,
            participant.p2p_port or 0,
            response.serialize(),
        )
        self.result.packets_generated += 1
        if participant.config.on_campus:
            delay = participant.ext_down.transit(now + rtt / 2)
            if delay is not None:
                self._capture(now + rtt / 2 + delay, response_frame)

    def _switch_to_p2p(self) -> None:
        if self.p2p_banned or self.mode != "sfu":
            return
        joined = [p for p in self.participants if p.present]
        if len(joined) != 2:
            return
        self.mode = "p2p"
        self.mode_epoch += 1
        first, second = joined
        for participant, peer in ((first, second), (second, first)):
            if participant.p2p_port is None:
                participant.p2p_port = 52000 + participant.index * 97
            self.result.p2p_flows.append(
                P2PFlowTruth(
                    meeting_id=self.config.meeting_id,
                    client_ip=participant.ip,
                    client_port=participant.p2p_port,
                    peer_ip=peer.ip,
                    peer_port=peer.p2p_port or 0,
                    established_at=self.scheduler.now,
                )
            )

    def _switch_to_sfu(self) -> None:
        self.mode = "sfu"
        self.mode_epoch += 1
        self._assign_ports()

    # ----------------------------------------------------------- media events

    def _video_tick(self, participant: _Participant) -> None:
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        if not participant.sends(ZoomMediaType.VIDEO):
            self.scheduler.schedule(now + 0.1, self._video_tick, participant)
            return
        self._adapt_rate(participant)
        frame, next_in = participant.video.next_frame(now)
        stream = participant.client.stream(ZoomMediaType.VIDEO)
        frame_id = self._frame_counter
        self._frame_counter += 1
        self._frames[frame_id] = (frame, stream.ssrc)
        self.qos.record_frame_sent(stream.ssrc)
        packets = participant.client.packetize_frame(ZoomMediaType.VIDEO, frame, frame_id)
        self._send_media(participant, ZoomMediaType.VIDEO, packets, now)
        self.scheduler.schedule(now + next_in, self._video_tick, participant)

    def _screen_tick(self, participant: _Participant) -> None:
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        if not participant.sends(ZoomMediaType.SCREEN_SHARE):
            self.scheduler.schedule(now + 0.1, self._screen_tick, participant)
            return
        frame, next_in = participant.screen.next_frame(now)
        if frame is not None:
            stream = participant.client.stream(ZoomMediaType.SCREEN_SHARE)
            frame_id = self._frame_counter
            self._frame_counter += 1
            self._frames[frame_id] = (frame, stream.ssrc)
            self.qos.record_frame_sent(stream.ssrc)
            packets = participant.client.packetize_frame(
                ZoomMediaType.SCREEN_SHARE, frame, frame_id
            )
            self._send_media(participant, ZoomMediaType.SCREEN_SHARE, packets, now)
        self.scheduler.schedule(now + max(next_in, 0.02), self._screen_tick, participant)

    def _audio_tick(self, participant: _Participant) -> None:
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        if not participant.sends(ZoomMediaType.AUDIO):
            self.scheduler.schedule(now + 0.1, self._audio_tick, participant)
            return
        spec, next_in = participant.audio.next_packet(now)
        packets = participant.client.packetize_audio(spec)
        self._send_media(participant, ZoomMediaType.AUDIO, packets, now)
        self.scheduler.schedule(now + next_in, self._audio_tick, participant)

    def _rtcp_tick(self, participant: _Participant) -> None:
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        for media_encap, reports in participant.client.rtcp_reports(now):
            # RTCP rides the UDP flow of its media stream.
            ssrc = reports[0].ssrc
            media_type = ZoomMediaType(ssrc & 0xFF)
            if self.mode == "p2p":
                payload = build_rtcp_payload(media=media_encap, reports=reports)
                self._send_p2p_raw(participant, payload, now)
            else:
                flow_port = participant.port_for(media_type)
                sfu_encap = SfuEncap(
                    sequence=participant.next_sfu_seq(flow_port),
                    direction=Direction.TO_SFU,
                )
                payload = build_rtcp_payload(
                    media=media_encap, reports=reports, sfu=sfu_encap
                )
                self._send_to_sfu_raw(participant, media_type, payload, now, forward=True)
        self.scheduler.schedule(now + 1.0, self._rtcp_tick, participant)

    def _control_tick(self, participant: _Participant) -> None:
        """Emit the ~10% undecodable control/probing packets (Table 2)."""
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        media_types = participant.config.media or (ZoomMediaType.AUDIO,)
        control_type = self.rng.choice(CONTROL_MEDIA_TYPES)
        body = self.rng.randbytes(self.rng.randrange(180, 850))
        if self.mode == "p2p":
            payload = build_control_payload(
                control_type=control_type, sequence=self.rng.randrange(1 << 16), body=body
            )
            self._send_p2p_raw(participant, payload, now)
        else:
            media_type = self.rng.choice(list(media_types))
            flow_port = participant.port_for(media_type)
            sfu_encap = SfuEncap(
                sequence=participant.next_sfu_seq(flow_port), direction=Direction.TO_SFU
            )
            payload = build_control_payload(
                control_type=control_type,
                sequence=self.rng.randrange(1 << 16),
                body=body,
                sfu=sfu_encap,
            )
            self._send_to_sfu_raw(participant, media_type, payload, now, forward=False)
            # The SFU answers with its own control packets at a similar rate.
            self._send_from_sfu_control(participant, media_type, now)
        # Pace control packets so they make up roughly ``control_ratio`` of
        # this participant's monitor-visible packets.  Each tick emits two
        # packets (one per direction); media contributes roughly twice the
        # sending rate (sent plus received copies).
        pps = {
            ZoomMediaType.VIDEO: 90.0,
            ZoomMediaType.AUDIO: 52.0,
            ZoomMediaType.SCREEN_SHARE: 25.0,
        }
        media_pps = 2.0 * sum(pps[m] for m in media_types)
        ratio = max(self.config.control_ratio, 0.002)
        control_pps = media_pps * ratio / max(1.0 - ratio, 0.05)
        interval = 2.0 / max(control_pps, 0.5)
        self.scheduler.schedule(
            now + self.rng.uniform(0.7, 1.3) * interval, self._control_tick, participant
        )

    def _send_to_sfu_raw(
        self,
        participant: _Participant,
        media_type: ZoomMediaType,
        payload: bytes,
        now: float,
        *,
        forward: bool,
    ) -> None:
        """Send an already-encapsulated payload (RTCP/control) to the SFU.

        With ``forward=True`` the SFU replicates the inner layers to every
        other participant — Zoom forwards RTCP sender reports so receivers
        can synchronize streams (§4.2.3).
        """
        flow_port = participant.port_for(media_type)
        frame = build_udp_frame(
            participant.ip, flow_port, self.sfu.ip, SERVER_MEDIA_PORT, payload
        )
        self.result.packets_generated += 1
        clock = now
        if participant.config.on_campus:
            campus_delay = participant.campus_up.transit(clock)
            if campus_delay is None:
                return
            clock += campus_delay
            self._capture(clock, frame)
        external_delay = participant.ext_up.transit(clock)
        if external_delay is None:
            return
        arrival = clock + external_delay
        if forward:
            inner = payload[SfuEncap.HEADER_LEN :]
            self.scheduler.schedule(
                arrival, self._sfu_forward_raw, participant, media_type, inner
            )

    def _sfu_forward_raw(
        self, sender: _Participant, media_type: ZoomMediaType, inner: bytes
    ) -> None:
        """SFU fan-out of a non-media payload (RTCP) to other participants."""
        now = self.scheduler.now
        for receiver in self.participants:
            if receiver is sender or not receiver.is_present(now):
                continue
            payload = self.sfu.wrap(receiver.ip).serialize() + inner
            frame = build_udp_frame(
                self.sfu.ip,
                SERVER_MEDIA_PORT,
                receiver.ip,
                receiver.port_for(media_type),
                payload,
            )
            self.result.packets_generated += 1
            if receiver.config.on_campus:
                delay = receiver.ext_down.transit(now + self.sfu.processing_delay)
                if delay is not None:
                    self._capture(now + self.sfu.processing_delay + delay, frame)

    def _send_from_sfu_control(
        self, participant: _Participant, media_type: ZoomMediaType, now: float
    ) -> None:
        payload = build_control_payload(
            control_type=self.rng.choice(CONTROL_MEDIA_TYPES),
            sequence=self.rng.randrange(1 << 16),
            body=self.rng.randbytes(self.rng.randrange(120, 600)),
            sfu=self.sfu.wrap(participant.ip),
        )
        frame = build_udp_frame(
            self.sfu.ip,
            SERVER_MEDIA_PORT,
            participant.ip,
            participant.port_for(media_type),
            payload,
        )
        self.result.packets_generated += 1
        if participant.config.on_campus:
            delay = participant.ext_down.transit(now)
            if delay is not None:
                self._capture(now + delay, frame)

    # ------------------------------------------------------------ media paths

    def _send_media(
        self,
        participant: _Participant,
        media_type: ZoomMediaType,
        packets: list[MediaPacket],
        now: float,
    ) -> None:
        stream = participant.client.stream(media_type)
        for packet in packets:
            self.qos.record_packet_sent(stream.ssrc, packet.size)
            if self.mode == "p2p":
                self._send_p2p_media(participant, packet, now, attempt=0)
            else:
                self._send_media_to_sfu(participant, media_type, packet, now, attempt=0)

    def _send_media_to_sfu(
        self,
        participant: _Participant,
        media_type: ZoomMediaType,
        packet: MediaPacket,
        now: float,
        attempt: int,
    ) -> None:
        """One client→SFU media packet, with capture, loss, and retransmit."""
        flow_port = participant.port_for(media_type)
        sfu_encap = SfuEncap(
            sequence=participant.next_sfu_seq(flow_port), direction=Direction.TO_SFU
        )
        payload = build_media_payload(
            media=packet.media, rtp=packet.rtp, rtp_payload=packet.rtp_payload, sfu=sfu_encap
        )
        frame = build_udp_frame(
            participant.ip, flow_port, self.sfu.ip, SERVER_MEDIA_PORT, payload
        )
        self.result.packets_generated += 1
        egress_capture: float | None = None
        if participant.config.on_campus:
            campus_delay = participant.campus_up.transit(now)
            if campus_delay is None:
                self._maybe_retransmit_up(participant, media_type, packet, now, attempt)
                return
            egress_capture = now + campus_delay
            self._capture(egress_capture, frame)
            departure = egress_capture
        else:
            departure = now
        external_delay = participant.ext_up.transit(departure)
        if external_delay is None:
            self._maybe_retransmit_up(participant, media_type, packet, now, attempt)
            return
        arrival = departure + external_delay
        self.scheduler.schedule(
            arrival, self._sfu_forward, participant, media_type, packet, egress_capture
        )

    def _maybe_retransmit_up(
        self,
        participant: _Participant,
        media_type: ZoomMediaType,
        packet: MediaPacket,
        now: float,
        attempt: int,
    ) -> None:
        if attempt >= RETRANSMIT_LIMIT:
            return
        retransmit_at = now + RETRANSMIT_TIMEOUT + self.rng.uniform(0.0, 0.01)
        self.scheduler.schedule(
            retransmit_at,
            self._send_media_to_sfu,
            participant,
            media_type,
            packet,
            retransmit_at,
            attempt + 1,
        )

    def _sfu_forward(
        self,
        sender: _Participant,
        media_type: ZoomMediaType,
        packet: MediaPacket,
        egress_capture: float | None,
    ) -> None:
        """SFU replicates the packet to every other present participant."""
        now = self.scheduler.now
        for receiver in self.participants:
            if receiver is sender or not receiver.is_present(now):
                continue
            self._sfu_send_one(
                sender, receiver, media_type, packet, now, egress_capture, attempt=0
            )

    def _sfu_send_one(
        self,
        sender: _Participant,
        receiver: _Participant,
        media_type: ZoomMediaType,
        packet: MediaPacket,
        now: float,
        egress_capture: float | None,
        attempt: int,
    ) -> None:
        payload = build_media_payload(
            media=packet.media,
            rtp=packet.rtp,
            rtp_payload=packet.rtp_payload,
            sfu=self.sfu.wrap(receiver.ip),
        )
        frame = build_udp_frame(
            self.sfu.ip,
            SERVER_MEDIA_PORT,
            receiver.ip,
            receiver.port_for(media_type),
            payload,
        )
        self.result.packets_generated += 1
        send_time = now + self.sfu.processing_delay
        if receiver.config.on_campus:
            external_delay = receiver.ext_down.transit(send_time)
            if external_delay is None:
                # Lost before the border: the monitor never sees this copy.
                self._maybe_retransmit_down(
                    sender, receiver, media_type, packet, now, egress_capture, attempt
                )
                return
            ingress_capture = send_time + external_delay
            self._capture(ingress_capture, frame)
            if egress_capture is not None:
                self.qos.record_latency(
                    packet.rtp.ssrc, ingress_capture - egress_capture
                )
            campus_delay = receiver.campus_down.transit(ingress_capture)
            if campus_delay is None:
                # Lost after the border: the monitor will see the retransmit
                # as a duplicate sequence number (§5.5).
                self._maybe_retransmit_down(
                    sender, receiver, media_type, packet, now, egress_capture, attempt
                )
                return
            arrival = ingress_capture + campus_delay
        else:
            external_delay = receiver.ext_down.transit(send_time)
            if external_delay is None:
                self._maybe_retransmit_down(
                    sender, receiver, media_type, packet, now, egress_capture, attempt
                )
                return
            arrival = send_time + external_delay
        self._deliver(receiver, packet, arrival)

    def _maybe_retransmit_down(
        self,
        sender: _Participant,
        receiver: _Participant,
        media_type: ZoomMediaType,
        packet: MediaPacket,
        now: float,
        egress_capture: float | None,
        attempt: int,
    ) -> None:
        if attempt >= RETRANSMIT_LIMIT:
            return
        retransmit_at = now + RETRANSMIT_TIMEOUT + self.rng.uniform(0.0, 0.01)
        self.scheduler.schedule(
            retransmit_at,
            self._sfu_send_one,
            sender,
            receiver,
            media_type,
            packet,
            retransmit_at,
            egress_capture,
            attempt + 1,
        )

    def _send_p2p_media(
        self, participant: _Participant, packet: MediaPacket, now: float, attempt: int
    ) -> None:
        payload = build_media_payload(
            media=packet.media, rtp=packet.rtp, rtp_payload=packet.rtp_payload
        )
        delivered = self._send_p2p_raw(participant, payload, now)
        peer = next(
            (p for p in self.participants if p is not participant and p.present), None
        )
        if peer is None:
            return
        if delivered is None:
            if attempt < RETRANSMIT_LIMIT:
                retransmit_at = now + RETRANSMIT_TIMEOUT + self.rng.uniform(0.0, 0.01)
                self.scheduler.schedule(
                    retransmit_at, self._send_p2p_media, participant, packet, retransmit_at, attempt + 1
                )
            return
        self._deliver(peer, packet, delivered)

    def _send_p2p_raw(
        self, participant: _Participant, payload: bytes, now: float
    ) -> float | None:
        """Send a raw Zoom payload over the P2P flow; returns arrival time.

        The packet is captured at the border only when exactly one endpoint
        is on campus; two on-campus peers never cross the monitor (Figure 9).
        """
        peer = next(
            (p for p in self.participants if p is not participant and p.present), None
        )
        if peer is None or participant.p2p_port is None or peer.p2p_port is None:
            return None
        frame = build_udp_frame(
            participant.ip, participant.p2p_port, peer.ip, peer.p2p_port, payload
        )
        self.result.packets_generated += 1
        clock = now
        if participant.config.on_campus:
            campus_delay = participant.campus_up.transit(clock)
            if campus_delay is None:
                return None
            clock += campus_delay
            if not peer.config.on_campus:
                self._capture(clock, frame)
        external_delay = participant.ext_up.transit(clock)
        if external_delay is None:
            return None
        clock += external_delay
        if peer.config.on_campus:
            if not participant.config.on_campus:
                self._capture(clock, frame)
            campus_delay = peer.campus_down.transit(clock)
            if campus_delay is None:
                return None
            clock += campus_delay
        return clock

    # -------------------------------------------------------------- reception

    def _deliver(self, receiver: _Participant, packet: MediaPacket, arrival: float) -> None:
        """Track frame completion at the designated primary receiver."""
        if receiver is not self._primary_receiver_for(packet.rtp.ssrc):
            return
        ssrc = packet.rtp.ssrc
        if packet.frame_id is None:
            # FEC or audio packet.  Audio packets count as single-packet
            # frames for the arrival-jitter ground truth.
            media_type = ssrc & 0xFF
            if media_type == ZoomMediaType.AUDIO and not packet.is_fec:
                self.qos.record_frame_arrival(
                    ssrc, arrival, packet.rtp.timestamp / 48_000.0
                )
            return
        frame, _ssrc = self._frames[packet.frame_id]
        key = (receiver.config.name, ssrc, packet.frame_id)
        if key in self._rx_done:
            return
        seen = self._rx_frames.setdefault(key, set())
        seen.add(packet.rtp.sequence)
        if len(seen) >= packet.media.packets_in_frame:
            self._rx_done.add(key)
            del self._rx_frames[key]
            self.qos.record_frame_delivered(ssrc)
            self.qos.record_frame_arrival(ssrc, arrival, frame.capture_time)

    def _primary_receiver_for(self, ssrc: int) -> _Participant | None:
        """The single receiver whose deliveries feed ground truth (avoids
        double counting when the SFU fans out to many participants)."""
        sender_index = ssrc >> 8
        candidates = [
            p for p in self.participants if p.index != sender_index and p.present
        ]
        if not candidates:
            return None
        on_campus = [p for p in candidates if p.config.on_campus]
        return (on_campus or candidates)[0]

    # ------------------------------------------------------------- adaptation

    def _adapt_rate(self, participant: _Participant) -> None:
        """Jitter-driven rate adaptation with hysteresis (§3: Zoom adapts the
        sender's bit and frame rate, keying on jitter rather than delay)."""
        if participant.config.thumbnail:
            return
        now = self.scheduler.now
        congested = participant.ext_up.is_congested(now)
        stream = participant.client.stream(ZoomMediaType.VIDEO)
        if congested:
            participant.clear_since = None
            if participant.congested_since is None:
                participant.congested_since = now
            elif not participant.reduced and now - participant.congested_since > 0.7:
                participant.reduced = True
                participant.video.set_rate(REDUCED_FPS)
                participant.video.mean_frame_size = int(
                    participant.video.mean_frame_size * 0.55
                )
                self.qos.record_encoder_rate(stream.ssrc, REDUCED_FPS)
        else:
            participant.congested_since = None
            if participant.clear_since is None:
                participant.clear_since = now
            elif participant.reduced and now - participant.clear_since > 2.5:
                participant.reduced = False
                participant.video.set_rate(participant.config.video_fps)
                participant.video.mean_frame_size = int(
                    participant.video.mean_frame_size / 0.55
                )
                self.qos.record_encoder_rate(stream.ssrc, participant.config.video_fps)

    # ------------------------------------------------------------ TCP control

    def _tcp_tick(self, participant: _Participant) -> None:
        """The TLS control connection: request/ACK pairs usable as an RTT
        proxy by latency Method 2 (§5.3)."""
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        size = self.rng.randrange(80, 400)
        data_frame = build_tcp_frame(
            participant.ip,
            participant.tcp_port,
            self.config.sfu_ip,
            SERVER_TLS_PORT,
            seq=participant.tcp_seq,
            ack=participant.server_tcp_seq,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=self.rng.randbytes(size),
        )
        self.result.packets_generated += 1
        participant.tcp_seq = (participant.tcp_seq + size) & 0xFFFFFFFF
        captured_out: float | None = None
        if participant.config.on_campus:
            campus_delay = participant.campus_up.transit(now)
            if campus_delay is not None:
                captured_out = now + campus_delay
                self._capture(captured_out, data_frame)
        base = captured_out if captured_out is not None else now
        external_delay = participant.ext_up.transit(base)
        if external_delay is not None:
            # Server ACKs immediately; ACK crosses the border on the way back.
            ack_frame = build_tcp_frame(
                self.config.sfu_ip,
                SERVER_TLS_PORT,
                participant.ip,
                participant.tcp_port,
                seq=participant.server_tcp_seq,
                ack=participant.tcp_seq,
                flags=TCPFlags.ACK,
            )
            self.result.packets_generated += 1
            if participant.config.on_campus:
                down_delay = participant.ext_down.transit(base + external_delay)
                if down_delay is not None:
                    self._capture(base + external_delay + down_delay, ack_frame)
        # Occasionally the server pushes data; the client's ACK then yields a
        # monitor↔client RTT sample for latency Method 2 (§5.3).
        if self.rng.random() < 0.6:
            self._tcp_server_push(participant, now + self.rng.uniform(0.02, 0.1))
        self.scheduler.schedule(
            now + self.rng.uniform(0.2, 0.4), self._tcp_tick, participant
        )

    def _tcp_server_push(self, participant: _Participant, when: float) -> None:
        self.scheduler.schedule(when, self._tcp_server_push_now, participant)

    def _tcp_server_push_now(self, participant: _Participant) -> None:
        now = self.scheduler.now
        if not participant.is_present(now):
            return
        size = self.rng.randrange(60, 300)
        data_frame = build_tcp_frame(
            self.config.sfu_ip,
            SERVER_TLS_PORT,
            participant.ip,
            participant.tcp_port,
            seq=participant.server_tcp_seq,
            ack=participant.tcp_seq,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=self.rng.randbytes(size),
        )
        self.result.packets_generated += 1
        participant.server_tcp_seq = (participant.server_tcp_seq + size) & 0xFFFFFFFF
        if not participant.config.on_campus:
            return
        down_delay = participant.ext_down.transit(now)
        if down_delay is None:
            return
        ingress = now + down_delay
        self._capture(ingress, data_frame)
        campus_delay = participant.campus_down.transit(ingress)
        if campus_delay is None:
            return
        # Client ACKs immediately; the ACK crosses the border on its way out.
        ack_at = ingress + campus_delay
        up_delay = participant.campus_up.transit(ack_at)
        if up_delay is None:
            return
        ack_frame = build_tcp_frame(
            participant.ip,
            participant.tcp_port,
            self.config.sfu_ip,
            SERVER_TLS_PORT,
            seq=participant.tcp_seq,
            ack=participant.server_tcp_seq,
            flags=TCPFlags.ACK,
        )
        self.result.packets_generated += 1
        self._capture(ack_at + up_delay, ack_frame)

    # ------------------------------------------------------------- per second

    def _per_second_tick(self, when: float) -> None:
        self.qos.flush(when)
