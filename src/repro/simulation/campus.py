"""Campus-scale workload generation: the stand-in for the 12-hour trace.

The paper's §6 dataset is a 12-hour capture at the campus border (Table 6:
1.8 B packets, 583 k flows, 59 k RTP streams).  This generator reproduces the
*structure* of that trace at laptop scale: a diurnal meeting-arrival pattern
with spikes on the hour and half hour, a lunchtime dip, and an evening
decline (Figure 14); a realistic mix of media types, P2P two-party calls,
off-campus participants, mobile clients, and congestion episodes.

Scale-down: meetings last tens of simulated seconds rather than tens of
minutes, and meeting counts are configurable.  Per-stream statistics (frame
rates, frame sizes, jitter — Figure 15) are unaffected by the shortened
durations; only absolute totals shrink, which EXPERIMENTS.md accounts for.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field

from repro.net.packet import CapturedPacket, build_tcp_frame, build_udp_frame
from repro.simulation.infrastructure import ServerDirectory
from repro.simulation.meeting import (
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
    SimulationResult,
)
from repro.simulation.netpath import CongestionEvent
from repro.simulation.qos import ImpairmentInterval
from repro.zoom.constants import ZoomMediaType

#: Relative meeting-arrival intensity for the 12 one-hour bins starting at
#: 09:00 local: morning ramp to an 11:00 peak, lunch dip, afternoon peak,
#: evening decline — the shape of Figure 14.
DIURNAL_PROFILE: tuple[float, ...] = (
    0.60, 0.85, 1.00, 0.70, 0.55, 0.80, 1.00, 0.95, 0.80, 0.55, 0.35, 0.25,
)


@dataclass(frozen=True)
class CampusTraceConfig:
    """Parameters of a synthetic campus trace.

    Attributes:
        hours: Number of one-hour wall-clock bins (the paper used 12).
        start_hour: Local hour of day of the first bin (for labeling).
        meetings_per_hour_peak: Meeting arrivals in a bin with intensity 1.0.
        meeting_duration: (min, max) seconds of simulated meeting time.
        p2p_fraction: Fraction of two-party meetings allowed to go P2P.
        screen_share_fraction: Meetings in which someone shares a screen.
        off_campus_fraction: Probability that a given participant is
            off campus (at least one participant is always on campus,
            otherwise the meeting would be invisible to the monitor).
        passive_fraction: Probability of a no-media (muted, camera-off)
            participant — invisible to the grouping heuristic (Figure 9).
        mobile_fraction: Probability a participant joins from mobile
            (audio payload type 113).
        congestion_fraction: Probability a participant suffers congestion
            episodes during the meeting.
        background_pps: Non-Zoom campus packets per second to synthesize
            (input for the capture-filter experiments, Figures 13/17).
        seed: Master seed; the whole trace is reproducible.
        address_octet_base: Offset added to each meeting's address octet.
            Participant IPs embed the meeting index, so two traces built
            from different seeds still collide on addresses unless their
            octet ranges are kept disjoint — which matters when traces
            are combined (the fleet simulator feeds several traces to one
            analyzer, whose meeting grouper merges by client IP).
    """

    hours: int = 12
    start_hour: int = 9
    meetings_per_hour_peak: float = 3.0
    meeting_duration: tuple[float, float] = (12.0, 30.0)
    p2p_fraction: float = 0.5
    screen_share_fraction: float = 0.18
    off_campus_fraction: float = 0.45
    passive_fraction: float = 0.10
    mobile_fraction: float = 0.05
    congestion_fraction: float = 0.25
    background_pps: float = 0.0
    seed: int = 42
    address_octet_base: int = 0


@dataclass
class CampusTrace:
    """A generated campus trace.

    Attributes:
        result: Merged Zoom traffic from all meetings (captures sorted).
        background: Synthetic non-Zoom campus packets (unsorted share of the
            same timeline), for capture-filter experiments.
        config: The generating configuration.
        meeting_configs: Every meeting that was simulated.
        directory: The Zoom server directory used for MMR/ZC selection.
    """

    result: SimulationResult
    background: list[CapturedPacket]
    config: CampusTraceConfig
    meeting_configs: list[MeetingConfig] = field(default_factory=list)
    directory: ServerDirectory | None = None

    def all_packets(self) -> list[CapturedPacket]:
        """Zoom and background packets merged in time order — what the
        capture filter would have to process."""
        merged = list(self.result.captures) + list(self.background)
        merged.sort(key=lambda packet: packet.timestamp)
        return merged

    def duration(self) -> float:
        return self.config.hours * 3600.0

    def hour_labels(self) -> list[str]:
        return [
            f"{(self.config.start_hour + h) % 24:02d}:00" for h in range(self.config.hours)
        ]


def _meeting_start_offset(rng: random.Random) -> float:
    """Offset of a meeting start within its hour bin.

    Meetings cluster at the full hour (55%) and the half hour (20%), which
    is what produces the bit-rate spikes in Figure 14.
    """
    roll = rng.random()
    if roll < 0.55:
        return rng.uniform(0.0, 90.0)
    if roll < 0.75:
        return 1800.0 + rng.uniform(0.0, 90.0)
    return rng.uniform(0.0, 3500.0)


def _build_participant(
    name: str,
    rng: random.Random,
    config: CampusTraceConfig,
    *,
    force_on_campus: bool,
    duration: float,
    share_screen: bool,
) -> ParticipantConfig:
    on_campus = force_on_campus or rng.random() >= config.off_campus_fraction
    passive = (not share_screen) and rng.random() < config.passive_fraction
    if passive:
        media: tuple[ZoomMediaType, ...] = ()
    else:
        # Many campus participants keep the camera on but stay muted, which
        # is why speaking-mode audio dominates silent-mode audio in Table 3:
        # muted participants emit *no* audio stream at all.
        # Table 3's packet mix implies audio streams are roughly half as
        # common as video streams on campus: staying muted is the norm.
        media_list = []
        if rng.random() < 0.35:
            media_list.append(ZoomMediaType.AUDIO)
        if rng.random() < 0.85:
            media_list.append(ZoomMediaType.VIDEO)
        if not media_list:
            media_list.append(ZoomMediaType.AUDIO)
        if share_screen:
            media_list.append(ZoomMediaType.SCREEN_SHARE)
        media = tuple(sorted(media_list))
    congestion: tuple[CongestionEvent, ...] = ()
    if rng.random() < config.congestion_fraction and duration > 8.0:
        count = rng.choice((1, 1, 2))
        events = []
        for _ in range(count):
            start = rng.uniform(2.0, max(duration - 6.0, 3.0))
            events.append(
                CongestionEvent(
                    start=start,
                    end=start + rng.uniform(2.5, 5.0),
                    extra_delay=rng.uniform(0.015, 0.050),
                    extra_jitter=rng.uniform(0.006, 0.020),
                    extra_loss=rng.uniform(0.005, 0.04),
                )
            )
        congestion = tuple(events)
    return ParticipantConfig(
        name=name,
        on_campus=on_campus,
        media=media,
        join_time=rng.uniform(0.0, min(4.0, duration / 4.0)),
        mobile=rng.random() < config.mobile_fraction,
        motion=rng.uniform(0.1, 0.9),
        # §6.2: most campus video travels in the reduced-fps mode (receivers
        # display thumbnails in gallery view) — Figure 15b/16b's ~14 fps mass.
        thumbnail=rng.random() < 0.45,
        external_delay=rng.uniform(0.008, 0.035),
        jitter_std=rng.uniform(0.0003, 0.0012),
        loss_rate=rng.uniform(0.0, 0.002),
        congestion=congestion,
    )


def _congestion_shifted(
    participant: ParticipantConfig, meeting_start: float
) -> ParticipantConfig:
    """Shift a participant's congestion windows to absolute trace time."""
    if not participant.congestion and not participant.congestion_down:
        return participant

    def _shift(events: tuple[CongestionEvent, ...]) -> tuple[CongestionEvent, ...]:
        return tuple(
            dataclasses.replace(
                event, start=event.start + meeting_start, end=event.end + meeting_start
            )
            for event in events
        )

    return dataclasses.replace(
        participant,
        congestion=_shift(participant.congestion),
        congestion_down=_shift(participant.congestion_down),
    )


def _background_packets(
    config: CampusTraceConfig, rng: random.Random
) -> list[CapturedPacket]:
    """Synthesize non-Zoom campus traffic: web-like TCP and a little UDP.

    Only the capture-filter experiments consume these; they must *not* match
    the Zoom IP list nor look like STUN-registered P2P flows.
    """
    packets: list[CapturedPacket] = []
    if config.background_pps <= 0:
        return packets
    duration = config.hours * 3600.0
    total = int(config.background_pps * duration)
    for _ in range(total):
        when = rng.uniform(0.0, duration)
        campus_ip = f"10.8.{rng.randrange(256)}.{rng.randrange(2, 255)}"
        external_ip = f"93.184.{rng.randrange(256)}.{rng.randrange(2, 255)}"
        outbound = rng.random() < 0.5
        src, dst = (campus_ip, external_ip) if outbound else (external_ip, campus_ip)
        if rng.random() < 0.8:
            frame = build_tcp_frame(
                src,
                rng.randrange(1024, 65000),
                dst,
                443,
                seq=rng.randrange(1 << 32),
                ack=rng.randrange(1 << 32),
                payload=rng.randbytes(rng.randrange(40, 1200)),
            )
        else:
            frame = build_udp_frame(
                src,
                rng.randrange(1024, 65000),
                dst,
                rng.choice((53, 123, 4500)),
                rng.randbytes(rng.randrange(30, 500)),
            )
        packets.append(CapturedPacket(when, frame))
    return packets


def generate_campus_trace(config: CampusTraceConfig | None = None) -> CampusTrace:
    """Generate a full synthetic campus trace.

    Meetings are drawn per hour bin from a Poisson process modulated by
    :data:`DIURNAL_PROFILE`, configured with realistic participant mixes, and
    simulated independently; their monitor captures are merged and sorted.
    """
    config = config or CampusTraceConfig()
    rng = random.Random(config.seed)
    directory = ServerDirectory(seed=config.seed)
    merged = SimulationResult()
    meeting_configs: list[MeetingConfig] = []
    meeting_index = 0
    for hour in range(config.hours):
        intensity = DIURNAL_PROFILE[hour % len(DIURNAL_PROFILE)]
        expected = config.meetings_per_hour_peak * intensity
        count = _poisson(expected, rng)
        for _ in range(count):
            meeting_index += 1
            start = hour * 3600.0 + _meeting_start_offset(rng)
            duration = rng.uniform(*config.meeting_duration)
            share_screen = rng.random() < config.screen_share_fraction
            n_participants = rng.choices((2, 3, 4, 5, 6), weights=(40, 28, 16, 10, 6))[0]
            participants = []
            for i in range(n_participants):
                participant = _build_participant(
                    f"m{meeting_index}p{i}",
                    rng,
                    config,
                    force_on_campus=(i == 0),
                    duration=duration,
                    share_screen=(share_screen and i == 0),
                )
                participants.append(_congestion_shifted(participant, start))
            allow_p2p = n_participants == 2 and rng.random() < config.p2p_fraction
            mmr = directory.pick_mmr(rng)
            zc = directory.pick_zc(rng)
            meeting_config = MeetingConfig(
                meeting_id=f"meeting-{meeting_index}",
                participants=tuple(participants),
                duration=duration,
                start_time=start,
                sfu_ip=mmr.ip,
                zc_ip=zc.ip,
                allow_p2p=allow_p2p,
                p2p_switch_delay=rng.uniform(4.0, 9.0),
                seed=rng.randrange(1 << 30),
                address_octet=config.address_octet_base + meeting_index,
            )
            meeting_configs.append(meeting_config)
            merged.merge(MeetingSimulator(meeting_config).run())
    merged.captures.sort(key=lambda packet: packet.timestamp)
    background = _background_packets(config, rng)
    return CampusTrace(
        result=merged,
        background=background,
        config=config,
        meeting_configs=meeting_configs,
        directory=directory,
    )


# --------------------------------------------------------------------------
# Impairment scenarios: seeded meetings with ground-truth degradation windows
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ImpairmentScenario:
    """One seeded meeting plus the truth about when its QoS was degraded.

    The QoE ground-truth suite simulates ``meeting``, runs the analyzer with
    QoE tracking over the captures, and asserts one enter/exit transition
    pair per interval — no flaps, no misses.  Construction is fully
    deterministic in the ``seed`` argument of the builder that produced it
    (satellite: byte-reproducible scenarios), so the golden snapshot can pin
    the exact transition sequence.
    """

    name: str
    meeting: MeetingConfig
    intervals: tuple[ImpairmentInterval, ...]
    description: str = ""


def _scenario_participants(
    seed: int,
    *,
    receiver_congestion_down: tuple[CongestionEvent, ...] = (),
    sender_congestion: tuple[CongestionEvent, ...] = (),
) -> tuple[ParticipantConfig, ...]:
    """Two on-campus participants on otherwise-quiet paths.

    ``alice`` sends audio + video; ``bob`` receives her streams over his
    external down leg, which is where ``receiver_congestion_down`` injects
    monitor-visible damage (§5.5) without touching any sender's up leg —
    so the sender's rate adaptation stays out of loss/jitter scenarios.
    ``sender_congestion`` goes on alice's regular (both-leg) congestion,
    which *does* trigger her adaptation: the rate-adaptation scenario.
    """
    rng = random.Random(seed)
    common = dict(
        on_campus=True,
        media=(ZoomMediaType.AUDIO, ZoomMediaType.VIDEO),
        join_time=0.0,
        thumbnail=False,
        external_delay=0.015,
        jitter_std=0.0003,
        loss_rate=0.0,
    )
    alice = ParticipantConfig(
        name="alice",
        motion=0.2 + 0.2 * rng.random(),
        congestion=sender_congestion,
        **common,
    )
    bob = ParticipantConfig(
        name="bob",
        motion=0.2 + 0.2 * rng.random(),
        congestion_down=receiver_congestion_down,
        **common,
    )
    return (alice, bob)


def _scenario_meeting(
    name: str,
    seed: int,
    participants: tuple[ParticipantConfig, ...],
    *,
    duration: float,
    octet: int,
) -> MeetingConfig:
    rng = random.Random(seed ^ 0x5EED)
    return MeetingConfig(
        meeting_id=name,
        participants=participants,
        duration=duration,
        start_time=0.0,
        allow_p2p=False,
        seed=rng.randrange(1 << 30),
        address_octet=octet,
    )


def loss_burst_scenario(
    seed: int = 20220815,
    *,
    extra_loss: float = 0.04,
    expected_state: str = "DEGRADED",
    start: float = 10.0,
    end: float = 20.0,
    duration: float = 30.0,
) -> ImpairmentScenario:
    """A flat loss burst on the receiver's external down leg.

    With retransmit repair, a path loss probability ``p`` shows up at the
    monitor as a gap-event fraction of roughly ``p / (1 + p)`` (the repair
    arrivals count as received) — the default 4% sits centrally in the
    DEGRADED band of :class:`~repro.core.config.QoeConfig`.
    """
    event = CongestionEvent(
        start=start, end=end, extra_delay=0.0, extra_jitter=0.0,
        extra_loss=extra_loss, profile="flat",
    )
    participants = _scenario_participants(seed, receiver_congestion_down=(event,))
    return ImpairmentScenario(
        name=f"loss-burst-{expected_state.lower()}",
        meeting=_scenario_meeting(
            f"loss-burst-{expected_state.lower()}", seed, participants,
            duration=duration, octet=61,
        ),
        intervals=(
            ImpairmentInterval(
                start=start, end=end, kind="loss", expected_state=expected_state,
            ),
        ),
        description=f"flat {extra_loss:.0%} loss on the SFU->border leg",
    )


def loss_collapse_scenario(seed: int = 20220816) -> ImpairmentScenario:
    """A severe loss episode that must reach CRITICAL (gap share ~31%)."""
    scenario = loss_burst_scenario(
        seed, extra_loss=0.45, expected_state="CRITICAL"
    )
    return dataclasses.replace(scenario, name="loss-collapse",
                               description="flat 45% loss on the SFU->border leg")


def jitter_spike_scenario(
    seed: int = 20220817,
    *,
    extra_jitter: float = 0.065,
    expected_state: str = "DEGRADED",
    start: float = 10.0,
    end: float = 20.0,
    duration: float = 30.0,
) -> ImpairmentScenario:
    """A flat delay-variance spike on the receiver's external down leg.

    Folded-normal delay noise with standard deviation sigma converges the
    RFC 3550 estimator near ``0.68 * sigma`` on an unqueued path, but the
    FIFO path model queues heavily once sigma exceeds the packet spacing and
    roughly halves that: the default 65 ms sigma lands a stable ~23-30 ms
    window peak, squarely in the DEGRADED jitter band.
    """
    event = CongestionEvent(
        start=start, end=end, extra_delay=0.0, extra_jitter=extra_jitter,
        extra_loss=0.0, profile="flat",
    )
    participants = _scenario_participants(seed, receiver_congestion_down=(event,))
    return ImpairmentScenario(
        name="jitter-spike",
        meeting=_scenario_meeting(
            "jitter-spike", seed, participants, duration=duration, octet=62
        ),
        intervals=(
            ImpairmentInterval(
                start=start, end=end, kind="jitter", expected_state=expected_state,
            ),
        ),
        description=f"flat {extra_jitter * 1000:.0f}ms delay-noise spike",
    )


def bandwidth_cliff_scenario(
    seed: int = 20220818,
    *,
    start: float = 10.0,
    end: float = 20.0,
    duration: float = 30.0,
) -> ImpairmentScenario:
    """A bandwidth cliff: deep-queue delay variance plus moderate loss.

    The IMPAIRED signal is carried by the queueing jitter (a 150 ms delay
    sigma lands the RFC 3550 estimator stably in the 35-80 ms IMPAIRED
    band after FIFO compression); the 4% loss rides along in the DEGRADED
    band.  Loss is deliberately NOT the deciding metric here: per-window
    gap fractions on ~50-packet audio streams have enough variance to
    oscillate across any single loss threshold, while the 16-sample jitter
    EWMA over hundreds of packets is steady.
    """
    event = CongestionEvent(
        start=start, end=end, extra_delay=0.050, extra_jitter=0.150,
        extra_loss=0.04, profile="flat",
    )
    participants = _scenario_participants(seed, receiver_congestion_down=(event,))
    return ImpairmentScenario(
        name="bandwidth-cliff",
        meeting=_scenario_meeting(
            "bandwidth-cliff", seed, participants, duration=duration, octet=63
        ),
        intervals=(
            # clear_slack is wider than the other scenarios': the deep FIFO
            # backlog built during the burst drains for a few seconds after
            # the congestion event ends, and that drain is itself
            # monitor-visible jitter.
            ImpairmentInterval(
                start=start, end=end, kind="bandwidth", expected_state="IMPAIRED",
                clear_slack=8.0,
            ),
        ),
        description="flat 4% loss + 150ms-sigma queueing on the SFU->border leg",
    )


def congestion_adaptation_scenario(
    seed: int = 20220819,
    *,
    start: float = 10.0,
    end: float = 22.0,
    duration: float = 40.0,
) -> ImpairmentScenario:
    """Sender-side congestion driving Zoom's rate adaptation (§3).

    Alice's external legs congest with pure queueing delay (no loss, near-no
    jitter); after ~0.7 s her client halves the frame rate, so the
    monitor-visible signal is the delivered-fps ratio collapsing to ~0.5 —
    the DEGRADED fps band.  Recovery waits out the client's 2.5 s clear
    hysteresis plus the machine's exit streak, hence the larger slacks.
    """
    event = CongestionEvent(
        start=start, end=end, extra_delay=0.035, extra_jitter=0.002,
        extra_loss=0.0, profile="flat",
    )
    participants = _scenario_participants(seed, sender_congestion=(event,))
    return ImpairmentScenario(
        name="congestion-adaptation",
        meeting=_scenario_meeting(
            "congestion-adaptation", seed, participants, duration=duration, octet=64
        ),
        intervals=(
            ImpairmentInterval(
                start=start, end=end, kind="adaptation", expected_state="DEGRADED",
                detect_slack=6.0, clear_slack=9.0,
            ),
        ),
        description="sender-leg queueing; fps halves via rate adaptation",
    )


def impairment_suite(seed: int = 20220814) -> tuple[ImpairmentScenario, ...]:
    """The fast impairment scenarios (tier-1; adaptation runs under slow).

    All per-scenario seeds derive from ``seed``, so one number reproduces
    the whole suite byte-for-byte.
    """
    rng = random.Random(seed)
    return (
        loss_burst_scenario(rng.randrange(1 << 30)),
        loss_collapse_scenario(rng.randrange(1 << 30)),
        jitter_spike_scenario(rng.randrange(1 << 30)),
        bandwidth_cliff_scenario(rng.randrange(1 << 30)),
    )


def _poisson(mean: float, rng: random.Random) -> int:
    """Draw from a Poisson distribution (Knuth's method; means are small)."""
    if mean <= 0:
        return 0
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
