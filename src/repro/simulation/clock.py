"""A deterministic discrete-event scheduler for the traffic emulator."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class EventScheduler:
    """Minimal discrete-event engine with deterministic ordering.

    Events scheduled for the same instant fire in insertion order, which
    keeps emulator runs byte-for-byte reproducible for a given seed.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._counter = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Scheduling in the past raises ``ValueError`` — it would silently
        reorder history otherwise.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} < now {self._now}")
        heapq.heappush(self._queue, (when, next(self._counter), callback, args))

    def schedule_in(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        self.schedule(self._now + delay, callback, *args)

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``."""
        while self._queue and self._queue[0][0] <= end_time:
            when, _order, callback, args = heapq.heappop(self._queue)
            self._now = when
            callback(*args)
            self.events_processed += 1
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Process all remaining events."""
        while self._queue:
            when, _order, callback, args = heapq.heappop(self._queue)
            self._now = when
            callback(*args)
            self.events_processed += 1

    def __len__(self) -> int:
        return len(self._queue)
