"""Packet-emitting adapter: simulated meetings straight into the analyzer.

Historically the only interchange between the emulator and the analyzer was
a pcap file — every simulated study paid a serialize/deserialize round trip
just to move in-memory frames between two modules of the same process.
This adapter emits :class:`~repro.net.packet.CapturedPacket` /
:class:`~repro.net.packet.ParsedPacket` records directly from any simulation
scenario, with optional timestamp quantization that reproduces the pcap
writer's nanosecond rounding, so a direct feed is *bit-identical* to the
write-then-read path (the equivalence the source-layer tests assert).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.net.packet import CapturedPacket, ParsedPacket, parse_frame
from repro.telemetry.registry import Telemetry

#: Simulation scenario: anything that can produce captured frames.
#: Accepted forms are a :class:`~repro.simulation.MeetingConfig` (the
#: simulator is run on demand), a :class:`~repro.simulation.CampusTraceConfig`,
#: any object with a ``captures`` attribute or an ``all_packets()`` method
#: (:class:`~repro.simulation.SimulationResult`, a campus trace), or a plain
#: iterable of :class:`CapturedPacket`.


def quantize_timestamp(timestamp: float, resolution: float = 1e-9) -> float:
    """The capture time a packet would carry after a pcap round trip.

    Mirrors :class:`~repro.net.pcap.PcapWriter` exactly: split into whole
    seconds plus ticks of ``resolution``, round the ticks, carry overflow
    into the next second, reassemble in float arithmetic in the same order
    the reader does.
    """
    per_second = round(1.0 / resolution)
    whole = int(timestamp)
    frac = int(round((timestamp - whole) / resolution))
    if frac >= per_second:  # rounding pushed us into the next second
        whole += 1
        frac -= per_second
    return whole + frac * resolution


def captured_packets(scenario: object) -> Iterator[CapturedPacket]:
    """Time-ordered captured frames for any simulation scenario form."""
    # Late imports: repro.simulation imports this module's neighbours, and
    # the net-layer sources import this function lazily.
    from repro.simulation.campus import CampusTraceConfig, generate_campus_trace
    from repro.simulation.meeting import MeetingConfig, MeetingSimulator

    if isinstance(scenario, MeetingConfig):
        scenario = MeetingSimulator(scenario).run()
    elif isinstance(scenario, CampusTraceConfig):
        scenario = generate_campus_trace(scenario)
    if hasattr(scenario, "all_packets"):  # campus trace: zoom + background
        yield from scenario.all_packets()
        return
    if hasattr(scenario, "captures"):  # SimulationResult
        yield from scenario.captures
        return
    if isinstance(scenario, Iterable):
        yield from scenario
        return
    raise TypeError(f"cannot emit packets from {type(scenario).__name__}")


def parsed_packets(
    scenario: object,
    *,
    timestamp_resolution: float | None = 1e-9,
    telemetry: Telemetry | None = None,
) -> Iterator[ParsedPacket]:
    """Decode a scenario's frames as the analyzer would see them off disk.

    Args:
        scenario: Any form accepted by :func:`captured_packets`.
        timestamp_resolution: Quantize capture times as a pcap writer at
            this resolution would (``1e-9`` matches the default nanosecond
            writer, making the direct feed equal to a pcap round trip);
            ``None`` keeps the simulator's exact float timestamps.
        telemetry: Optional registry; ``capture.frames`` / ``capture.bytes``
            are recorded exactly as the file readers record them.
    """
    tel = telemetry if telemetry is not None else Telemetry(enabled=False)
    for captured in captured_packets(scenario):
        timestamp = captured.timestamp
        if timestamp_resolution is not None:
            timestamp = quantize_timestamp(timestamp, timestamp_resolution)
        tel.count("capture.frames")
        tel.count("capture.bytes", len(captured.data))
        yield parse_frame(captured.data, timestamp)
