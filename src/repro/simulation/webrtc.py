"""A generic WebRTC-style 1:1 call emitter (no Zoom encapsulation).

The counterpart of :mod:`repro.simulation.meeting` for the protocol
registry's generic RTP plugin: a direct call between one on-campus and one
off-campus endpoint, speaking *plain* RFC 3550 RTP/RTCP with ICE/STUN
connectivity checks — the on-the-wire shape of browser calls, Meet, and
Webex P2P mode.  Differences from the Zoom emitter, all deliberate:

* No proprietary media/SFU headers: payloads start directly at the RTP
  header (or a compound RTCP, RFC 5761 muxed on the same port).
* ICE rides the media 5-tuple: the STUN binding request/response (and
  periodic consent checks) use the exact endpoints the media then uses,
  on ephemeral ports — nothing touches port 3478 or any known subnet, so
  only the registry's generic plugin can find these flows.
* Audio is Opus-style payload type 111 at 48 kHz / 20 ms; video is payload
  type 96 at 90 kHz with multi-packet frames, marker bit on the last
  packet of each frame (what the plugin's frame synthesis keys on).

The capture point is the campus border.  Caller→callee packets are
captured just after leaving the caller (before external-path loss —
upstream impairments are invisible to the monitor, as in the paper's
vantage discussion); callee→caller packets are captured after crossing the
external path, so downstream loss and jitter are monitor-visible.

Determinism: one master seed drives every RNG, so a config reproduces its
capture byte-for-byte (the webrtc golden pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.packet import CapturedPacket, build_udp_frame
from repro.rtp.rtcp import RTCPSenderReport, ntp_from_unix
from repro.rtp.rtp import RTPHeader
from repro.rtp.stun import StunMessage
from repro.simulation.clock import EventScheduler
from repro.simulation.netpath import NetworkPath

#: Payload types the call uses (both in the generic plugin's defaults).
AUDIO_PAYLOAD_TYPE = 111
VIDEO_PAYLOAD_TYPE = 96
AUDIO_CLOCK = 48000
VIDEO_CLOCK = 90000
AUDIO_INTERVAL = 0.020
VIDEO_MTU_PAYLOAD = 1200


@dataclass(frozen=True)
class WebRTCCallConfig:
    """One simulated 1:1 WebRTC call crossing the campus border."""

    duration: float = 15.0
    start_time: float = 0.0
    seed: int = 20260808
    caller_ip: str = "10.8.20.10"  # on campus (the monitored side)
    caller_port: int = 51732
    callee_ip: str = "198.18.7.7"  # off campus
    callee_port: int = 62144
    video_fps: float = 24.0
    video_frame_size: int = 3600
    audio_payload_len: int = 90
    #: External-path impairments (callee→caller is the monitor-visible one).
    down_loss: float = 0.0
    down_jitter: float = 0.0008
    base_delay: float = 0.030
    #: Seconds between ICE consent checks after the initial handshake.
    consent_interval: float = 2.0


@dataclass
class WebRTCSimulationResult:
    """Captured border traffic plus sender-side ground truth."""

    config: WebRTCCallConfig
    captures: list[CapturedPacket] = field(default_factory=list)
    stun_sent: int = 0
    rtp_sent: int = 0
    rtcp_sent: int = 0
    video_frames_sent: int = 0


class _RtpSender:
    """One directional RTP stream: sequence/timestamp state + senders."""

    def __init__(self, ssrc: int, clock: int, rng: random.Random) -> None:
        self.ssrc = ssrc
        self.clock = clock
        self.sequence = rng.randrange(1 << 15)
        self.timestamp = rng.randrange(1 << 31)
        self.packets = 0
        self.octets = 0

    def packet(self, payload_type: int, payload: bytes, *, marker: bool) -> bytes:
        header = RTPHeader(
            payload_type=payload_type,
            sequence=self.sequence & 0xFFFF,
            timestamp=self.timestamp & 0xFFFFFFFF,
            ssrc=self.ssrc,
            marker=marker,
        )
        self.sequence += 1
        self.packets += 1
        self.octets += len(payload)
        return header.serialize() + payload


class WebRTCCallSimulator:
    """Drives one :class:`WebRTCCallConfig` to a border capture."""

    def __init__(self, config: WebRTCCallConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.scheduler = EventScheduler(config.start_time)
        self.result = WebRTCSimulationResult(config)
        # Campus segment: caller→border, effectively clean.
        self._campus = NetworkPath(
            base_delay=0.0015,
            jitter_std=0.0001,
            loss_rate=0.0,
            rng=random.Random(self.rng.randrange(1 << 30)),
        )
        # External segment, callee→border: monitor-visible impairments.
        self._down = NetworkPath(
            base_delay=config.base_delay,
            jitter_std=config.down_jitter,
            loss_rate=config.down_loss,
            rng=random.Random(self.rng.randrange(1 << 30)),
        )
        srng = random.Random(self.rng.randrange(1 << 30))
        self._senders = {
            ("up", "audio"): _RtpSender(srng.randrange(1 << 32), AUDIO_CLOCK, srng),
            ("up", "video"): _RtpSender(srng.randrange(1 << 32), VIDEO_CLOCK, srng),
            ("down", "audio"): _RtpSender(srng.randrange(1 << 32), AUDIO_CLOCK, srng),
            ("down", "video"): _RtpSender(srng.randrange(1 << 32), VIDEO_CLOCK, srng),
        }

    # ------------------------------------------------------------------ wire

    def _frame(self, direction: str, payload: bytes) -> bytes:
        cfg = self.config
        if direction == "up":
            return build_udp_frame(
                cfg.caller_ip, cfg.caller_port, cfg.callee_ip, cfg.callee_port, payload
            )
        return build_udp_frame(
            cfg.callee_ip, cfg.callee_port, cfg.caller_ip, cfg.caller_port, payload
        )

    def _send(self, direction: str, payload: bytes) -> None:
        """Transit one payload toward the border capture point."""
        now = self.scheduler.now
        path = self._campus if direction == "up" else self._down
        delay = path.transit(now)
        if delay is None:
            return  # lost before the monitor
        self.result.captures.append(
            CapturedPacket(now + delay, self._frame(direction, payload))
        )

    # ------------------------------------------------------------------- ICE

    def _ice_exchange(self) -> None:
        request = StunMessage.binding_request(self.rng.randbytes(12))
        self._send("up", request.serialize())
        self.result.stun_sent += 1
        response = StunMessage.binding_response(
            self.rng.randbytes(12), self.config.caller_ip, self.config.caller_port
        )
        self._send("down", response.serialize())
        self.result.stun_sent += 1
        next_check = self.config.consent_interval * self.rng.uniform(0.9, 1.1)
        self.scheduler.schedule_in(next_check, self._ice_exchange)

    # ----------------------------------------------------------------- media

    def _audio_tick(self, direction: str) -> None:
        sender = self._senders[(direction, "audio")]
        payload_len = max(
            40, int(self.rng.gauss(self.config.audio_payload_len, 12))
        )
        payload = bytes(payload_len)
        self._send(
            direction, sender.packet(AUDIO_PAYLOAD_TYPE, payload, marker=False)
        )
        sender.timestamp += int(AUDIO_INTERVAL * AUDIO_CLOCK)
        self.result.rtp_sent += 1
        self.scheduler.schedule_in(AUDIO_INTERVAL, self._audio_tick, direction)

    def _video_tick(self, direction: str) -> None:
        sender = self._senders[(direction, "video")]
        size = max(
            400,
            int(
                self.rng.gauss(
                    self.config.video_frame_size, self.config.video_frame_size * 0.3
                )
            ),
        )
        chunks = [
            min(VIDEO_MTU_PAYLOAD, size - offset)
            for offset in range(0, size, VIDEO_MTU_PAYLOAD)
        ]
        for index, chunk in enumerate(chunks):
            marker = index == len(chunks) - 1
            self._send(
                direction,
                sender.packet(VIDEO_PAYLOAD_TYPE, bytes(chunk), marker=marker),
            )
            self.result.rtp_sent += 1
        self.result.video_frames_sent += 1
        interval = (1.0 / self.config.video_fps) * self.rng.uniform(0.97, 1.03)
        sender.timestamp += int(round(interval * VIDEO_CLOCK))
        self.scheduler.schedule_in(interval, self._video_tick, direction)

    def _rtcp_tick(self, direction: str) -> None:
        now = self.scheduler.now
        sender = self._senders[(direction, "video")]
        ntp_seconds, ntp_fraction = ntp_from_unix(now)
        report = RTCPSenderReport(
            ssrc=sender.ssrc,
            ntp_seconds=ntp_seconds,
            ntp_fraction=ntp_fraction,
            rtp_timestamp=sender.timestamp & 0xFFFFFFFF,
            packet_count=sender.packets,
            octet_count=sender.octets,
        )
        self._send(direction, report.serialize())
        self.result.rtcp_sent += 1
        self.scheduler.schedule_in(
            1.0 * self.rng.uniform(0.95, 1.05), self._rtcp_tick, direction
        )

    # ------------------------------------------------------------------- run

    def run(self) -> WebRTCSimulationResult:
        start = self.config.start_time
        end = start + self.config.duration
        # ICE first — media only decodes once the tracker knows the flow.
        self.scheduler.schedule(start, self._ice_exchange)
        for direction in ("up", "down"):
            self.scheduler.schedule(
                start + 0.3 + self.rng.uniform(0.0, 0.05), self._audio_tick, direction
            )
            self.scheduler.schedule(
                start + 0.4 + self.rng.uniform(0.0, 0.05), self._video_tick, direction
            )
            self.scheduler.schedule(start + 1.0, self._rtcp_tick, direction)
        self.scheduler.run_until(end)
        self.result.captures.sort(key=lambda packet: packet.timestamp)
        return self.result


def simulate_webrtc_call(
    config: WebRTCCallConfig | None = None,
) -> WebRTCSimulationResult:
    """Run one call; convenience wrapper for tests and goldens."""
    return WebRTCCallSimulator(config or WebRTCCallConfig()).run()
