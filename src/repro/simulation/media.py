"""Media sources: the frame/packet generators behind each Zoom stream.

Frame timing and sizing follow what the paper observed on real Zoom traffic:

* Video runs near 28 fps steady state and near 14 fps in thumbnail /
  heavy-congestion mode, with the encoder's RTP timestamps on a 90 kHz clock
  and variable packetization intervals (§5.2, §5.4, §6.2).
* Audio emits one packet per 20 ms: payload type 112 with ~60-150 byte
  payloads while the participant talks, type 99 with a fixed 40-byte payload
  during silence (§4.2.3).
* Screen share produces *no* frames while the picture is static (15% of the
  paper's frame-rate samples are zero), small incremental frames otherwise,
  and large frames on slide changes — a long-tailed size distribution with
  more than half of frames under 500 bytes (§6.2, Figure 15b-c).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.zoom.constants import (
    AUDIO_PTIME,
    SILENT_AUDIO_PAYLOAD_LEN,
    VIDEO_SAMPLING_RATE,
    RTPPayloadType,
)


@dataclass(frozen=True, slots=True)
class Frame:
    """A media frame produced by a source.

    Attributes:
        capture_time: Sampling instant on the sender's clock (s).
        size: Encoded frame size in bytes.
        is_keyframe: True for intra-coded frames (video/screen share).
        rtp_timestamp: Media timestamp in the stream's RTP clock units.
    """

    capture_time: float
    size: int
    is_keyframe: bool
    rtp_timestamp: int


@dataclass(frozen=True, slots=True)
class AudioPacketSpec:
    """One audio packetization interval.

    Attributes:
        capture_time: Sampling instant (s).
        payload_type: 112 while talking, 99 during silence.
        payload_len: RTP payload length in bytes.
        rtp_timestamp: Timestamp in the audio RTP clock.
    """

    capture_time: float
    payload_type: int
    payload_len: int
    rtp_timestamp: int


class VideoSource:
    """A camera video source with rate adaptation.

    The source holds a *target* frame rate that the client may change over
    time (rate adaptation, thumbnail mode); frames are spaced at the current
    target rate with small encoder timing noise, which is what makes Zoom's
    packetization intervals variable (§5.4).

    Attributes:
        fps: Current target frame rate.
        mean_frame_size: Mean encoded size of delta frames in bytes.
        keyframe_interval: Every Nth frame is a keyframe (larger).
        motion: 0-1 multiplier; high-motion video encodes larger deltas.
    """

    def __init__(
        self,
        *,
        fps: float = 28.0,
        mean_frame_size: int = 1700,
        keyframe_interval: int = 60,
        motion: float = 0.3,
        sampling_rate: int = VIDEO_SAMPLING_RATE,
        rng: random.Random | None = None,
        timestamp_offset: int | None = None,
    ) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps
        self.mean_frame_size = mean_frame_size
        self.keyframe_interval = keyframe_interval
        self.motion = motion
        self.sampling_rate = sampling_rate
        self._rng = rng or random.Random(0)
        self._frame_index = 0
        self._timestamp = (
            timestamp_offset
            if timestamp_offset is not None
            else self._rng.randrange(1 << 31)
        )

    def set_rate(self, fps: float) -> None:
        """Adapt the encoder's target frame rate (e.g. 28 → 14 fps)."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps

    def next_frame(self, now: float) -> tuple[Frame, float]:
        """Produce the frame captured at ``now``.

        Returns the frame and the delay until the next capture instant at
        the current target rate (with ±3% encoder timing noise).
        """
        interval = 1.0 / self.fps
        is_key = self._frame_index % self.keyframe_interval == 0
        base = self.mean_frame_size * (0.6 + 0.8 * self.motion)
        if is_key:
            size = int(base * self._rng.uniform(2.5, 4.0))
        else:
            size = max(120, int(self._rng.gauss(base, base * 0.35)))
        frame = Frame(
            capture_time=now,
            size=size,
            is_keyframe=is_key,
            rtp_timestamp=self._timestamp & 0xFFFFFFFF,
        )
        self._frame_index += 1
        next_in = interval * self._rng.uniform(0.97, 1.03)
        self._timestamp += int(round(next_in * self.sampling_rate))
        return frame, next_in


class ScreenShareSource:
    """A screen-sharing source with presentation-like dynamics.

    Models three regimes: static picture (no frames at all), incremental
    updates (small frames at a low rate), and slide changes (rare, large
    frames).  Reproduces §6.2's observations: ~15% of one-second windows
    with zero frames, about half of samples at ≤5 fps, >50% of frames under
    500 bytes with a long tail.
    """

    def __init__(
        self,
        *,
        update_rate: float = 4.0,
        static_probability: float = 0.15,
        slide_change_rate: float = 0.08,
        sampling_rate: int = VIDEO_SAMPLING_RATE,
        rng: random.Random | None = None,
    ) -> None:
        self.update_rate = update_rate
        self.static_probability = static_probability
        self.slide_change_rate = slide_change_rate
        self.sampling_rate = sampling_rate
        self._rng = rng or random.Random(0)
        self._timestamp = self._rng.randrange(1 << 31)
        self._static_until = 0.0

    def next_frame(self, now: float) -> tuple[Frame | None, float]:
        """Produce the next frame, or ``None`` during a static period.

        Returns ``(frame_or_none, delay_to_next_decision)``.
        """
        if now < self._static_until:
            return None, self._static_until - now
        # Occasionally go static for a second or more (presenter talking
        # over an unchanged slide).
        if self._rng.random() < self.static_probability:
            self._static_until = now + self._rng.uniform(0.6, 2.5)
            return None, self._static_until - now
        if self._rng.random() < self.slide_change_rate:
            size = int(self._rng.uniform(4_000, 14_000))  # slide change
            is_key = True
        else:
            # Incremental update; log-normal-ish small sizes.
            size = max(60, int(self._rng.lognormvariate(5.6, 0.9)))
            is_key = False
        frame = Frame(
            capture_time=now,
            size=size,
            is_keyframe=is_key,
            rtp_timestamp=self._timestamp & 0xFFFFFFFF,
        )
        next_in = self._rng.expovariate(self.update_rate)
        next_in = min(max(next_in, 0.05), 3.0)
        self._timestamp += int(round(next_in * self.sampling_rate))
        return frame, next_in


class AudioSource:
    """A talk/silence audio source emitting one packet spec per 20 ms.

    Talking and silent periods alternate as a two-state process with mean
    durations ``mean_talk`` / ``mean_silence``; Zoom marks the former with
    payload type 112 and the latter with fixed-size type-99 packets, which
    is exactly how the paper quantifies who talks when (§4.2.3).
    """

    def __init__(
        self,
        *,
        mean_talk: float = 12.0,
        mean_silence: float = 1.5,
        sampling_rate: int = 48_000,
        mobile_mode: bool = False,
        rng: random.Random | None = None,
    ) -> None:
        self.mean_talk = mean_talk
        self.mean_silence = mean_silence
        self.sampling_rate = sampling_rate
        self.mobile_mode = mobile_mode
        self._rng = rng or random.Random(0)
        self._timestamp = self._rng.randrange(1 << 31)
        self._talking = self._rng.random() < 0.5
        self._state_until = 0.0

    def next_packet(self, now: float) -> tuple[AudioPacketSpec, float]:
        """Produce the packet spec for the 20 ms interval starting at ``now``."""
        if now >= self._state_until:
            self._talking = not self._talking
            mean = self.mean_talk if self._talking else self.mean_silence
            self._state_until = now + self._rng.expovariate(1.0 / mean)
        if self.mobile_mode:
            payload_type = int(RTPPayloadType.AUDIO_UNKNOWN)
            payload_len = max(30, int(self._rng.gauss(80, 15)))
        elif self._talking:
            payload_type = int(RTPPayloadType.AUDIO_SPEAKING)
            payload_len = max(50, int(self._rng.gauss(110, 25)))
        else:
            payload_type = int(RTPPayloadType.MULTIPLEX_99)
            payload_len = SILENT_AUDIO_PAYLOAD_LEN
        spec = AudioPacketSpec(
            capture_time=now,
            payload_type=payload_type,
            payload_len=payload_len,
            rtp_timestamp=self._timestamp & 0xFFFFFFFF,
        )
        self._timestamp += int(AUDIO_PTIME * self.sampling_rate)
        return spec, AUDIO_PTIME

    @property
    def talking(self) -> bool:
        """Whether the source is currently in the talking state."""
        return self._talking
