"""The SFU (Zoom "multi-media router") forwarding model.

The paper establishes two properties of Zoom's SFU that the whole grouping
heuristic rests on (§4.3.2):

* it **replicates** media packets to each other participant rather than
  transcoding (CSRC count is always zero — §4.2.3), and
* it does **not** translate RTP sequence numbers or timestamps, so a stream
  copy forwarded back into the campus is byte-identical at the RTP layer.

The model therefore forwards the media-encapsulation + RTP + payload bytes
untouched and only re-wraps the outer SFU encapsulation layer: a fresh
per-destination-flow sequence counter and the FROM_SFU direction byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.zoom.sfu_encap import Direction, SfuEncap


@dataclass
class SfuModel:
    """Per-meeting SFU state.

    Attributes:
        ip: The MMR's IP address (a Zoom-subnet address).
        port: Always 8801 for media.
        processing_delay: Replication latency added per forwarded packet.
    """

    ip: str
    port: int = 8801
    processing_delay: float = 0.0008
    _sequence_by_flow: dict[str, int] = field(default_factory=dict)

    def next_sequence(self, destination: str) -> int:
        """The SFU encapsulation sequence counter toward one destination."""
        value = self._sequence_by_flow.get(destination, 0)
        self._sequence_by_flow[destination] = (value + 1) & 0xFFFF
        return value

    def wrap(self, destination: str) -> SfuEncap:
        """Build the outgoing SFU encapsulation header toward ``destination``."""
        return SfuEncap(
            sfu_type=SfuEncap.TYPE_MEDIA,
            sequence=self.next_sequence(destination),
            direction=Direction.FROM_SFU,
        )
