"""Packet-accurate Zoom traffic emulator.

The paper measures real Zoom traffic; this subpackage is the substitution
documented in DESIGN.md §2: an emulator that reproduces every on-the-wire
behaviour the paper documents, so that the analyzer (:mod:`repro.core`) is
exercised on realistic input without access to Zoom's closed systems.

Behaviours reproduced (with the paper section that documents each):

* Zoom SFU + media encapsulation around standard RTP/RTCP (§4.2, Tables 1-2).
* Per-media UDP flows to server port 8801; P2P flows on ephemeral ports
  preceded by STUN exchanges with a zone controller on port 3478 (§3, §4.1).
* Audio talk/silence payload types 112/99 (silence = fixed 40-byte payload),
  FEC substreams on payload type 110 sharing timestamps but not sequence
  numbers, screen share on payload type 99 (§4.2.3, Table 3).
* RTCP sender reports once per second per stream, sometimes with an empty
  SDES; no receiver reports (§4.2.1).
* SFU forwarding that preserves RTP sequence numbers and timestamps (§4.3.2).
* Retransmission of lost packets (same RTP sequence number, ≤2 attempts,
  ~100 ms timeout) (§5.5).
* Rate adaptation: ~28 fps steady state dropping toward ~14 fps under
  congestion or thumbnail display (§5.2, §6.2).
* TLS/TCP control connections to port 443 usable as an RTT proxy (§5.3).
* A campus-diurnal meeting arrival pattern for trace-scale studies (§6.2).
"""

from repro.simulation.adapter import captured_packets, parsed_packets, quantize_timestamp
from repro.simulation.clock import EventScheduler
from repro.simulation.netpath import CongestionEvent, NetworkPath
from repro.simulation.media import AudioSource, ScreenShareSource, VideoSource
from repro.simulation.meeting import (
    MeetingConfig,
    MeetingSimulator,
    ParticipantConfig,
    SimulationResult,
)
from repro.simulation.campus import (
    CampusTraceConfig,
    ImpairmentScenario,
    bandwidth_cliff_scenario,
    congestion_adaptation_scenario,
    generate_campus_trace,
    impairment_suite,
    jitter_spike_scenario,
    loss_burst_scenario,
    loss_collapse_scenario,
)
from repro.simulation.infrastructure import ServerDirectory, ZoomServer
from repro.simulation.qos import ImpairmentInterval, QoSReport, QoSSample
from repro.simulation.webrtc import (
    WebRTCCallConfig,
    WebRTCCallSimulator,
    WebRTCSimulationResult,
    simulate_webrtc_call,
)

__all__ = [
    "AudioSource",
    "CampusTraceConfig",
    "CongestionEvent",
    "EventScheduler",
    "ImpairmentInterval",
    "ImpairmentScenario",
    "MeetingConfig",
    "MeetingSimulator",
    "NetworkPath",
    "ParticipantConfig",
    "QoSReport",
    "QoSSample",
    "ScreenShareSource",
    "ServerDirectory",
    "SimulationResult",
    "VideoSource",
    "WebRTCCallConfig",
    "WebRTCCallSimulator",
    "WebRTCSimulationResult",
    "ZoomServer",
    "simulate_webrtc_call",
    "bandwidth_cliff_scenario",
    "captured_packets",
    "congestion_adaptation_scenario",
    "generate_campus_trace",
    "impairment_suite",
    "jitter_spike_scenario",
    "loss_burst_scenario",
    "loss_collapse_scenario",
    "parsed_packets",
    "quantize_timestamp",
]
