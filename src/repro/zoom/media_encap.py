"""The Zoom media encapsulation header (Table 1, Figure 7).

A variable-length header whose first byte selects the packet type and thus
the total header length (and therefore where the inner RTP/RTCP header
starts).  Fields the paper identified, with byte ranges relative to the
start of this header:

========  ============== ===========================================
Byte(s)   Field          Present in
========  ============== ===========================================
0         type           all (13/15/16 media, 33/34 RTCP, others ctl)
9-10      sequence       media types
11-14     timestamp      media types
21-22     frame seq #    video and screen share
23        pkts in frame  video and screen share
========  ============== ===========================================

Header lengths per type: video 24 B, audio 19 B, screen share 27 B, RTCP 8 B
(derived from Table 2's RTP offsets).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.zoom.constants import MEDIA_ENCAP_LEN, ZoomMediaType

_SEQ_OFFSET = 9
_TS_OFFSET = 11
_FRAME_SEQ_OFFSET = 21
_PKTS_IN_FRAME_OFFSET = 23


@dataclass(frozen=True, slots=True)
class MediaEncap:
    """A parsed Zoom media encapsulation header.

    Attributes:
        media_type: Byte 0 — a :class:`ZoomMediaType` value for decodable
            packets, or any other value for control packets.
        sequence: Zoom-level 16-bit sequence number (bytes 9-10); 0 for RTCP.
        timestamp: Zoom-level 32-bit timestamp (bytes 11-14); 0 for RTCP.
        frame_sequence: Per-stream frame counter (bytes 21-22); only video
            and screen share carry it.
        packets_in_frame: Number of RTP packets that make up the current
            frame (byte 23); only video and screen share carry it.  This is
            the field frame-rate Method 1 and frame-size computation rely on.
        opaque: The unidentified filler bytes, preserved so that
            ``parse(serialize(x)) == x`` holds byte-exactly.
    """

    media_type: int
    sequence: int = 0
    timestamp: int = 0
    frame_sequence: int = 0
    packets_in_frame: int = 0
    opaque: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.media_type <= 0xFF:
            raise ValueError(f"media type out of range: {self.media_type}")
        if not 0 <= self.sequence <= 0xFFFF:
            raise ValueError(f"sequence out of range: {self.sequence}")
        if not 0 <= self.timestamp <= 0xFFFFFFFF:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.frame_sequence <= 0xFFFF:
            raise ValueError(f"frame sequence out of range: {self.frame_sequence}")
        if not 0 <= self.packets_in_frame <= 0xFF:
            raise ValueError(f"packets_in_frame out of range: {self.packets_in_frame}")

    @property
    def header_len(self) -> int:
        """On-wire length of this header (depends on the type)."""
        return MEDIA_ENCAP_LEN.get(self.media_type, 8)

    @property
    def has_frame_fields(self) -> bool:
        """True when bytes 21-23 (frame seq, packets-in-frame) exist."""
        return self.media_type in (ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE)

    @property
    def is_rtp(self) -> bool:
        return self.media_type in (
            ZoomMediaType.SCREEN_SHARE,
            ZoomMediaType.AUDIO,
            ZoomMediaType.VIDEO,
        )

    @property
    def is_rtcp(self) -> bool:
        return self.media_type in (ZoomMediaType.RTCP_SR, ZoomMediaType.RTCP_SR_SDES)

    def serialize(self) -> bytes:
        """Encode to wire format at the type's fixed length."""
        length = self.header_len
        buf = bytearray(length)
        buf[0] = self.media_type
        # Fill the unidentified bytes from ``opaque`` (zero-padded).
        filler = self.opaque.ljust(length - 1, b"\x00")
        buf[1:length] = filler[: length - 1]
        if length > _TS_OFFSET + 3:  # media types carry sequence + timestamp
            struct.pack_into("!H", buf, _SEQ_OFFSET, self.sequence)
            struct.pack_into("!I", buf, _TS_OFFSET, self.timestamp)
        if self.has_frame_fields:
            struct.pack_into("!H", buf, _FRAME_SEQ_OFFSET, self.frame_sequence)
            buf[_PKTS_IN_FRAME_OFFSET] = self.packets_in_frame
        return bytes(buf)

    @classmethod
    def parse(cls, data: bytes) -> tuple["MediaEncap", int]:
        """Decode from wire format; returns the header and payload offset.

        Raises ``ValueError`` when the buffer is shorter than the header
        length implied by the type byte.
        """
        if not data:
            raise ValueError("empty buffer")
        media_type = data[0]
        length = MEDIA_ENCAP_LEN.get(media_type, 8)
        if len(data) < length:
            raise ValueError(
                f"buffer too short for media encap type {media_type}: "
                f"{len(data)} < {length} bytes"
            )
        sequence = 0
        timestamp = 0
        frame_sequence = 0
        packets_in_frame = 0
        if length > _TS_OFFSET + 3:
            (sequence,) = struct.unpack_from("!H", data, _SEQ_OFFSET)
            (timestamp,) = struct.unpack_from("!I", data, _TS_OFFSET)
        if media_type in (ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE):
            (frame_sequence,) = struct.unpack_from("!H", data, _FRAME_SEQ_OFFSET)
            packets_in_frame = data[_PKTS_IN_FRAME_OFFSET]
        # Preserve the unidentified bytes so serialization round-trips.
        opaque = bytearray(data[1:length])
        if length > _TS_OFFSET + 3:
            opaque[_SEQ_OFFSET - 1 : _SEQ_OFFSET + 1] = b"\x00\x00"
            opaque[_TS_OFFSET - 1 : _TS_OFFSET + 3] = b"\x00\x00\x00\x00"
        if media_type in (ZoomMediaType.VIDEO, ZoomMediaType.SCREEN_SHARE):
            opaque[_FRAME_SEQ_OFFSET - 1 : _FRAME_SEQ_OFFSET + 1] = b"\x00\x00"
            opaque[_PKTS_IN_FRAME_OFFSET - 1] = 0
        return (
            cls(
                media_type=media_type,
                sequence=sequence,
                timestamp=timestamp,
                frame_sequence=frame_sequence,
                packets_in_frame=packets_in_frame,
                opaque=bytes(opaque).rstrip(b"\x00"),
            ),
            length,
        )
