"""Zoom's proprietary packet format, as reverse-engineered by the paper.

Zoom media traffic is standard RTP/RTCP wrapped in up to two proprietary
layers (§4.2, Figure 7, Tables 1-2):

* **Zoom SFU encapsulation** — a fixed 8-byte header present only on
  server-based (client ↔ MMR) traffic.  Type value 5 means a media
  encapsulation header follows; byte 7 encodes direction (0x00 to the SFU,
  0x04 from it).
* **Zoom media encapsulation** — a variable-length header whose first byte
  selects the packet type and therefore the offset at which the inner
  RTP/RTCP header starts: video (16, RTP at UDP-payload offset 32),
  audio (15, offset 27), screen share (13, offset 35), RTCP (33/34,
  offset 16).  P2P traffic omits the SFU layer, shifting every offset
  down by 8.

This package provides byte-exact parsers and serializers for both layers and
for complete Zoom UDP payloads.
"""

from repro.zoom.constants import (
    MEDIA_ENCAP_LEN,
    RTP_OFFSET_P2P,
    RTP_OFFSET_SERVER,
    SERVER_MEDIA_PORT,
    VIDEO_SAMPLING_RATE,
    RTPPayloadType,
    ZoomMediaType,
)
from repro.zoom.media_encap import MediaEncap
from repro.zoom.sfu_encap import Direction, SfuEncap
from repro.zoom.packets import ZoomPacket, build_media_payload, parse_zoom_payload

__all__ = [
    "Direction",
    "MEDIA_ENCAP_LEN",
    "MediaEncap",
    "RTPPayloadType",
    "RTP_OFFSET_P2P",
    "RTP_OFFSET_SERVER",
    "SERVER_MEDIA_PORT",
    "SfuEncap",
    "VIDEO_SAMPLING_RATE",
    "ZoomMediaType",
    "ZoomPacket",
    "build_media_payload",
    "parse_zoom_payload",
]
