"""Composition and parsing of complete Zoom UDP payloads.

A Zoom UDP payload is, outermost first (Figure 7):

* server-based traffic: ``SfuEncap (8 B) | MediaEncap | RTP-or-RTCP | media``
* P2P traffic:          ``MediaEncap | RTP-or-RTCP | media``

plus an undecoded minority of control packets (media-encapsulation types
outside Table 2's five values).  :func:`parse_zoom_payload` decodes any of
these shapes, auto-detecting whether the SFU layer is present when the caller
does not know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.rtp.rtcp import RTCPPacket, parse_rtcp_compound
from repro.rtp.rtp import RTPHeader, looks_like_rtp
from repro.zoom.constants import ZoomMediaType
from repro.zoom.media_encap import MediaEncap
from repro.zoom.sfu_encap import SfuEncap


@dataclass(frozen=True, slots=True)
class ZoomPacket:
    """A fully decoded Zoom UDP payload.

    Attributes:
        sfu: SFU encapsulation header; ``None`` for P2P packets.
        media: Media encapsulation header; ``None`` only when the SFU type
            byte says no media layer follows.
        rtp: Inner RTP header for media packets (types 13/15/16).
        rtcp: Parsed RTCP reports for RTCP packets (types 33/34).
        rtp_payload: Bytes following the RTP header (the encrypted media).
        raw: The complete original UDP payload.
    """

    sfu: Optional[SfuEncap]
    media: Optional[MediaEncap]
    rtp: Optional[RTPHeader]
    rtcp: tuple[RTCPPacket, ...]
    rtp_payload: bytes
    raw: bytes

    @property
    def is_p2p(self) -> bool:
        """True when the packet carries no SFU encapsulation layer."""
        return self.sfu is None

    @property
    def is_media(self) -> bool:
        """True for decodable RTP media packets (video/audio/screen share)."""
        return self.rtp is not None and self.media is not None and self.media.is_rtp

    @property
    def is_rtcp(self) -> bool:
        return bool(self.rtcp)

    @property
    def media_type(self) -> int | None:
        return self.media.media_type if self.media is not None else None

    def describe(self) -> str:
        """One-line human-readable summary (used by examples and the CLI)."""
        mode = "P2P" if self.is_p2p else "SFU"
        if self.is_media:
            assert self.rtp is not None and self.media is not None
            name = ZoomMediaType(self.media.media_type).name
            return (
                f"[{mode}] {name} pt={self.rtp.payload_type} "
                f"ssrc={self.rtp.ssrc:#010x} seq={self.rtp.sequence} "
                f"ts={self.rtp.timestamp} payload={len(self.rtp_payload)}B"
            )
        if self.is_rtcp:
            kinds = "+".join(type(r).__name__.removeprefix("RTCP") for r in self.rtcp)
            return f"[{mode}] RTCP {kinds}"
        media_type = self.media_type
        return f"[{mode}] control type={media_type} len={len(self.raw)}B"


def build_media_payload(
    *,
    media: MediaEncap,
    rtp: RTPHeader,
    rtp_payload: bytes,
    sfu: SfuEncap | None = None,
) -> bytes:
    """Assemble a complete Zoom UDP payload for an RTP media packet."""
    body = media.serialize() + rtp.serialize() + rtp_payload
    if sfu is not None:
        body = sfu.serialize() + body
    return body


def build_rtcp_payload(
    *,
    media: MediaEncap,
    reports: Sequence[RTCPPacket],
    sfu: SfuEncap | None = None,
) -> bytes:
    """Assemble a complete Zoom UDP payload for an RTCP packet."""
    if not media.is_rtcp:
        raise ValueError(f"media type {media.media_type} is not an RTCP type")
    body = media.serialize() + b"".join(report.serialize() for report in reports)
    if sfu is not None:
        body = sfu.serialize() + body
    return body


def build_control_payload(
    *,
    control_type: int,
    sequence: int = 0,
    body: bytes = b"",
    sfu: SfuEncap | None = None,
) -> bytes:
    """Assemble one of the ~10% undecoded control packets.

    These start with a media-encapsulation type byte outside Table 2's set,
    followed by a sequence number and opaque payload — matching the paper's
    observation that "we did see some sequence numbers in such packets".
    """
    if control_type in tuple(ZoomMediaType):
        raise ValueError(f"{control_type} is a decodable media type, not control")
    payload = bytes([control_type]) + sequence.to_bytes(2, "big") + body
    if sfu is not None:
        payload = sfu.serialize() + payload
    return payload


def parse_zoom_payload(
    payload: bytes, *, from_server: bool | None = None
) -> ZoomPacket:
    """Decode a Zoom UDP payload.

    Args:
        payload: The raw UDP payload bytes.
        from_server: ``True`` when the flow is known to be server-based
            (port 8801), ``False`` when known P2P, ``None`` to auto-detect.
            Auto-detection tries the SFU layout first (type byte 5 plus a
            valid media layer underneath) and falls back to P2P.

    Returns:
        A :class:`ZoomPacket`.  Undecodable packets come back with only the
        layers that did parse; this mirrors the paper, which leaves ~10% of
        packets as opaque control traffic.
    """
    if from_server is None:
        if len(payload) >= SfuEncap.HEADER_LEN and payload[0] == SfuEncap.TYPE_MEDIA:
            packet = _parse_with_sfu(payload)
            if packet.media is not None:
                return packet
        return _parse_media_layers(payload, sfu=None)
    if from_server:
        return _parse_with_sfu(payload)
    return _parse_media_layers(payload, sfu=None)


def _parse_with_sfu(payload: bytes) -> ZoomPacket:
    try:
        sfu, offset = SfuEncap.parse(payload)
    except ValueError:
        return ZoomPacket(None, None, None, (), b"", payload)
    if not sfu.carries_media:
        return ZoomPacket(sfu, None, None, (), b"", payload)
    return _parse_media_layers(payload, sfu=sfu, offset=offset)


def _parse_media_layers(
    payload: bytes, *, sfu: SfuEncap | None, offset: int = 0
) -> ZoomPacket:
    try:
        media, media_len = MediaEncap.parse(payload[offset:])
    except ValueError:
        return ZoomPacket(sfu, None, None, (), b"", payload)
    inner = payload[offset + media_len :]
    if media.is_rtp and looks_like_rtp(inner):
        try:
            rtp, rtp_len = RTPHeader.parse(inner)
        except ValueError:
            return ZoomPacket(sfu, media, None, (), b"", payload)
        return ZoomPacket(sfu, media, rtp, (), inner[rtp_len:], payload)
    if media.is_rtcp:
        reports = tuple(parse_rtcp_compound(inner))
        return ZoomPacket(sfu, media, None, reports, b"", payload)
    # Control packet or unrecognized type: keep the media layer only if it is
    # one of the known types; otherwise expose nothing beyond the raw bytes.
    if media.is_rtp:
        return ZoomPacket(sfu, media, None, (), b"", payload)
    return ZoomPacket(sfu, media, None, (), b"", payload)
