"""The Zoom SFU encapsulation header (Table 1, Figure 7).

A fixed 8-byte header present on all server-based Zoom UDP packets (it is
absent from P2P flows).  Fields the paper identified:

========  ==========  =======================================
Byte      Field       Notes
========  ==========  =======================================
0         type        0x05 for 98.4% of packets (= media follows)
1-2       sequence    16-bit counter
3-6       (opaque)    not identified by the paper
7         direction   0x00 toward the SFU, 0x04 from the SFU
========  ==========  =======================================
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass


class Direction(enum.IntEnum):
    """Direction byte of the SFU encapsulation."""

    TO_SFU = 0x00
    FROM_SFU = 0x04


@dataclass(frozen=True, slots=True)
class SfuEncap:
    """A parsed Zoom SFU encapsulation header.

    Attributes:
        sfu_type: First byte; 5 means a media-encapsulation header follows.
        sequence: 16-bit sequence counter (bytes 1-2).
        direction: Byte 7; see :class:`Direction`.
        opaque: The unidentified bytes 3-6, preserved verbatim.
    """

    sfu_type: int = 5
    sequence: int = 0
    direction: int = Direction.TO_SFU
    opaque: bytes = b"\x00\x00\x00\x00"

    TYPE_MEDIA = 5
    HEADER_LEN = 8

    def __post_init__(self) -> None:
        if not 0 <= self.sfu_type <= 0xFF:
            raise ValueError(f"SFU type out of range: {self.sfu_type}")
        if not 0 <= self.sequence <= 0xFFFF:
            raise ValueError(f"SFU sequence out of range: {self.sequence}")
        if not 0 <= self.direction <= 0xFF:
            raise ValueError(f"direction out of range: {self.direction}")
        if len(self.opaque) != 4:
            raise ValueError("opaque field must be exactly 4 bytes")

    @property
    def carries_media(self) -> bool:
        """True when a media-encapsulation header follows (type 5)."""
        return self.sfu_type == self.TYPE_MEDIA

    def serialize(self) -> bytes:
        return (
            struct.pack("!BH", self.sfu_type, self.sequence)
            + self.opaque
            + bytes([self.direction])
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["SfuEncap", int]:
        """Decode from wire format; returns the header and payload offset."""
        if len(data) < cls.HEADER_LEN:
            raise ValueError(f"buffer too short for SFU encap: {len(data)} bytes")
        sfu_type, sequence = struct.unpack_from("!BH", data, 0)
        return (
            cls(
                sfu_type=sfu_type,
                sequence=sequence,
                direction=data[7],
                opaque=bytes(data[3:7]),
            ),
            cls.HEADER_LEN,
        )
