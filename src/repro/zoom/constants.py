"""Constants of Zoom's network protocol, as documented by the paper.

Sources: §3 (ports), §4.2 Tables 1-3 and Figure 7 (header layout and type
values), §4.2.3 and §5.2 (payload types, sampling rate), Appendix B (server
infrastructure).
"""

from __future__ import annotations

import enum

SERVER_MEDIA_PORT = 8801
"""UDP port used on the Zoom server (MMR) side of every media flow."""

SERVER_TLS_PORT = 443
"""TCP port of the TLS control connections to Zoom servers."""

STUN_SERVER_PORT = 3478
"""UDP port of Zoom zone controllers' STUN service (P2P establishment)."""


class ZoomMediaType(enum.IntEnum):
    """Zoom media-encapsulation type values (Table 2).

    The five listed values cover 90.03% of packets (91.57% of bytes) in the
    paper's campus trace; the remainder are control packets whose payload the
    paper did not decode further.
    """

    SCREEN_SHARE = 13
    AUDIO = 15
    VIDEO = 16
    RTCP_SR = 33
    RTCP_SR_SDES = 34

    @property
    def is_rtp(self) -> bool:
        return self in (self.SCREEN_SHARE, self.AUDIO, self.VIDEO)

    @property
    def is_rtcp(self) -> bool:
        return self in (self.RTCP_SR, self.RTCP_SR_SDES)


#: Media-encapsulation types observed but not decoded by the paper (roughly
#: 10% of packets; presumed congestion-control / probing traffic).  The
#: emulator uses these values for its control packets.
CONTROL_MEDIA_TYPES = (7, 20, 24)


class _EncapOther(str):
    """Sentinel key for undecodable media-class packets in Table-2 counters.

    A ``str`` subclass so existing comparisons against the literal
    ``"other"`` (tests, table renderers, saved benchmark rows) keep working,
    while analyzer code refers to the one named constant instead of scattering
    a magic string between the ``int`` media-type keys.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ENCAP_OTHER"


ENCAP_OTHER = _EncapOther("other")
"""Counter key for media-class packets that did not decode as Zoom media/RTCP."""

EncapKey = int | str
"""Key type of the Table-2 encapsulation counters: a media-type value or
:data:`ENCAP_OTHER`."""


class RTPPayloadType(enum.IntEnum):
    """RTP payload types Zoom uses per media stream (Table 3, §4.2.3)."""

    VIDEO_MAIN = 98
    #: Audio while silent (fixed 40-byte RTP payload) and screen-share main.
    MULTIPLEX_99 = 99
    FEC = 110
    AUDIO_SPEAKING = 112
    AUDIO_UNKNOWN = 113


#: Payload types that occur in a Zoom stream of each media type.
PAYLOAD_TYPES_BY_MEDIA: dict[ZoomMediaType, tuple[int, ...]] = {
    ZoomMediaType.VIDEO: (RTPPayloadType.VIDEO_MAIN, RTPPayloadType.FEC),
    ZoomMediaType.AUDIO: (
        RTPPayloadType.MULTIPLEX_99,
        RTPPayloadType.FEC,
        RTPPayloadType.AUDIO_SPEAKING,
        RTPPayloadType.AUDIO_UNKNOWN,
    ),
    ZoomMediaType.SCREEN_SHARE: (RTPPayloadType.MULTIPLEX_99,),
}

SFU_ENCAP_LEN = 8
"""Length of the Zoom SFU encapsulation header (server-based traffic only)."""

#: Zoom media-encapsulation header length per type.  Derived from Table 2's
#: RTP offsets minus the 8-byte SFU layer: video 32-8, audio 27-8, screen
#: share 35-8, RTCP 16-8.
MEDIA_ENCAP_LEN: dict[int, int] = {
    ZoomMediaType.VIDEO: 24,
    ZoomMediaType.AUDIO: 19,
    ZoomMediaType.SCREEN_SHARE: 27,
    ZoomMediaType.RTCP_SR: 8,
    ZoomMediaType.RTCP_SR_SDES: 8,
}

#: Offset (from the end of the UDP header) where the inner RTP/RTCP header
#: starts, for server-based traffic (Table 2).
RTP_OFFSET_SERVER: dict[int, int] = {
    media_type: SFU_ENCAP_LEN + length for media_type, length in MEDIA_ENCAP_LEN.items()
}

#: Same, for P2P traffic, which carries no SFU encapsulation (Figure 7).
RTP_OFFSET_P2P: dict[int, int] = dict(MEDIA_ENCAP_LEN)

VIDEO_SAMPLING_RATE = 90_000
"""RTP timestamp clock of Zoom video streams (§5.2; also RFC 3551's
recommendation for conferencing video)."""

AUDIO_SAMPLING_RATE = 48_000
"""Assumed RTP clock of Zoom audio (Opus-style); the paper does not confirm
audio/screen-share clocks, which is why its §6.2 jitter study is video-only."""

SILENT_AUDIO_PAYLOAD_LEN = 40
"""RTP payload length of type-99 silence-mode audio packets (§4.2.3)."""

AUDIO_PTIME = 0.020
"""Audio packetization interval (one packet per 20 ms, 50 packets/s)."""

RETRANSMIT_LIMIT = 2
"""Zoom retransmits a lost media packet at most this many times (§5.5)."""

RETRANSMIT_TIMEOUT = 0.100
"""Apparent retransmission timeout observed in frame-delay analysis (§5.5)."""

#: Synthetic Zoom server address space used by the emulator.  Real Zoom
#: publishes 117 prefixes (Appendix B); we model its own AS with a /16 and
#: keep MMRs and zone controllers in disjoint /24-aligned slices so reverse
#: lookups in :mod:`repro.simulation.infrastructure` stay unambiguous.
ZOOM_SERVER_SUBNETS = (
    "170.114.0.0/16",  # Zoom's own AS30103 (really published)
    "203.0.113.0/24",  # synthetic stand-in for the AWS-hosted ranges
)

#: Campus address space monitored by the capture system in the emulator.
CAMPUS_SUBNETS = ("10.8.0.0/16", "10.9.0.0/16")
