"""Batch-vectorized frame ingestion: contiguous buffers, columnar headers.

The scalar ingest path turns *every* captured frame into a
:class:`~repro.net.packet.CapturedPacket` and then a fully dissected
:class:`~repro.net.packet.ParsedPacket` before the detector gets a vote —
two dataclass allocations and five header parses per frame, even for the
overwhelmingly non-Zoom background traffic a border tap carries (§6.1 of
the paper puts a Tofino prefilter in front of the software exactly because
of this).  This module is the software analogue of that prefilter:

* :class:`FrameBatch` — one contiguous buffer holding many frames, with
  parallel ``array`` columns (offsets, caplens, timestamps).  Readers fill
  it with zero per-frame object allocation; it pickles cheaply, which is
  what makes process-backend sharding pay for itself.
* :func:`decode_columns` — slices ethertype / IP proto / src / dst / ports
  for the whole batch into parallel arrays using precompiled
  :class:`struct.Struct` unpackers over a ``memoryview``.  No dataclasses,
  no exceptions on malformed frames — sentinel values instead.
* :class:`BatchPrefilter` — compiled from the same match-action rules the
  capture model uses (Zoom server ranges + STUN-learned endpoints); drops
  frames that are *provably* NOT_ZOOM before any ``ParsedPacket`` exists.
  Surviving indices are lazily materialized through the unchanged scalar
  :func:`~repro.net.packet.parse_frame`, so every downstream stage, golden
  snapshot, and metric is bit-identical to the scalar path.

Correctness contract of the prefilter (see DESIGN.md §12): a frame may be
dropped only if feeding it through the scalar pipeline would (a) classify
as NOT_ZOOM and (b) leave detector state untouched.  The prefilter
guarantees (b) by learning STUN endpoints *more* liberally than the
detector — its endpoint pass-set is a superset of every endpoint the
detector has ever learned, and it never expires entries — so a dropped
frame can never be one whose scalar classification would have consulted
(and lazily refreshed or expired) a STUN binding.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from ipaddress import ip_network
from typing import Iterable, Iterator, Sequence

from repro.net.packet import ParsedPacket, parse_frame
from repro.zoom.constants import STUN_SERVER_PORT

__all__ = [
    "FrameBatch",
    "FrameBatchBuilder",
    "prepared_frame_batch",
    "HeaderColumns",
    "decode_columns",
    "BatchPrefilter",
    "PrefilterVerdict",
    "DEFAULT_FRAMES_PER_BATCH",
]

#: Default frame count per batch.  Large enough to amortize per-batch
#: bookkeeping, small enough that a batch of MTU-sized frames stays well
#: inside L2 cache.
DEFAULT_FRAMES_PER_BATCH = 4096

_ETHERTYPE_VLAN = 0x8100
_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_IPV6 = 0x86DD
_PROTO_TCP = 6
_PROTO_UDP = 17

_UNPACK_ADDRS = struct.Struct("!II").unpack_from  # IPv4 src, dst
_UNPACK_PORTS = struct.Struct("!HH").unpack_from  # transport src, dst


@dataclass(slots=True)
class FrameBatch:
    """Many captured frames in one contiguous buffer + parallel columns.

    ``offsets[i]``/``caplens[i]`` delimit frame *i* inside ``buffer``;
    ``timestamps[i]`` is its capture timestamp in seconds.  ``hints[i]``
    (optional, used by the sharder) marks frames replicated onto a shard
    only so its detector learns the STUN binding — a hint frame must be
    fed to :meth:`~repro.core.pipeline.ZoomAnalyzer.hint_stun`, never
    counted as traffic.

    ``prepared`` (optional) carries already-parsed packets for sources
    that cannot expose raw frames (simulation adapters, in-memory packet
    lists).  When set, consumers must use those objects verbatim instead
    of re-parsing the buffer, preserving exact scalar equivalence for
    hand-built packets that would not round-trip through the wire format.
    """

    buffer: bytes | bytearray
    offsets: array
    caplens: array
    timestamps: array
    total_caplen: int
    hints: array | None = None
    prepared: list[ParsedPacket] | None = None

    def __len__(self) -> int:
        if self.prepared is not None:
            return len(self.prepared)
        return len(self.caplens)

    def __iter__(self) -> Iterator[ParsedPacket]:
        """Materialize every frame, in order.

        Compatibility shim: a :class:`FrameBatch` can stand in wherever a
        scalar ``list[ParsedPacket]`` batch was iterated.  Consumers that
        want the fast path should hand the whole batch to
        :meth:`~repro.core.pipeline.ZoomAnalyzer.feed_batch` instead of
        iterating.
        """
        if self.prepared is not None:
            yield from self.prepared
            return
        for index in range(len(self.caplens)):
            yield self.materialize(index)

    def frame(self, index: int) -> bytes:
        """The raw bytes of frame ``index`` (a copy, safe to retain)."""
        if self.prepared is not None:
            return self.prepared[index].raw
        start = self.offsets[index]
        return bytes(self.buffer[start : start + self.caplens[index]])

    def materialize(self, index: int) -> ParsedPacket:
        """Lazily dissect frame ``index`` via the unchanged scalar parser."""
        if self.prepared is not None:
            return self.prepared[index]
        return parse_frame(self.frame(index), self.timestamps[index])

    def iter_frames(self) -> Iterator[tuple]:
        """Yield ``(frame_bytes, timestamp)`` pairs without copying."""
        if self.prepared is not None:
            for parsed in self.prepared:
                yield parsed.raw, parsed.timestamp
            return
        view = memoryview(self.buffer)
        offsets = self.offsets
        caplens = self.caplens
        timestamps = self.timestamps
        for i in range(len(caplens)):
            start = offsets[i]
            yield view[start : start + caplens[i]], timestamps[i]

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the final frame (0.0 for an empty batch)."""
        if self.prepared:
            return self.prepared[-1].timestamp
        return self.timestamps[-1] if len(self.timestamps) else 0.0


def prepared_frame_batch(packets: Sequence[ParsedPacket]) -> FrameBatch:
    """Wrap already-parsed packets as a :class:`FrameBatch`.

    The default ``frame_batches()`` shim on scalar-only sources uses this:
    consumers must treat ``prepared`` as authoritative (no re-parse, no
    prefilter), which keeps hand-built packets byte-identical through the
    batch entry points.
    """
    packets = list(packets)
    return FrameBatch(
        buffer=b"",
        offsets=array("Q"),
        caplens=array("I"),
        timestamps=array("d"),
        total_caplen=sum(len(p.raw) for p in packets),
        prepared=packets,
    )


class FrameBatchBuilder:
    """Accumulates frames into a :class:`FrameBatch`.

    Used where frames arrive one by one (pcapng blocks, the sharding
    repartitioner).  The pcap reader bypasses it entirely — its batches
    alias the read chunk with zero copying.
    """

    __slots__ = ("_buffer", "_offsets", "_caplens", "_timestamps", "_hints", "_any_hint")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offsets = array("Q")
        self._caplens = array("I")
        self._timestamps = array("d")
        self._hints = array("b")
        self._any_hint = False

    def __len__(self) -> int:
        return len(self._caplens)

    def append(self, data, timestamp: float, *, hint: bool = False) -> None:
        self._offsets.append(len(self._buffer))
        self._caplens.append(len(data))
        self._timestamps.append(timestamp)
        self._buffer += data
        self._hints.append(1 if hint else 0)
        if hint:
            self._any_hint = True

    def build(self) -> FrameBatch:
        """Finish the current batch and reset the builder for the next."""
        batch = FrameBatch(
            buffer=bytes(self._buffer),
            offsets=self._offsets,
            caplens=self._caplens,
            timestamps=self._timestamps,
            total_caplen=len(self._buffer),
            hints=self._hints if self._any_hint else None,
        )
        self.__init__()
        return batch


@dataclass(slots=True)
class HeaderColumns:
    """Columnar header fields for one batch; sentinel values, no exceptions.

    * ``ethertype[i]`` — post-VLAN ethertype, or ``-1`` when the frame is
      too short to carry an Ethernet header (the scalar parser's
      ``ethernet is None`` case).
    * ``proto[i]`` — IP protocol number, or ``-1`` when no IP header was
      readable.
    * ``src[i]``/``dst[i]`` — IPv4 addresses as host-order u32 (0 when
      unreadable or not IPv4).
    * ``src_port[i]``/``dst_port[i]`` — transport ports, or ``-1`` when the
      transport header is absent/truncated.
    * ``l4_offset[i]`` — byte offset of the transport payload *within the
      frame* (UDP: start of UDP header + 8 is the payload; here it is the
      offset of the transport header itself), or ``-1``.
    """

    ethertype: array
    proto: array
    src: array
    dst: array
    src_port: array
    dst_port: array
    l4_offset: array


def decode_columns(batch: FrameBatch) -> HeaderColumns:
    """Slice link/IP/transport header fields for every frame in the batch.

    Tolerant by construction: any frame too short for a given layer gets
    sentinels for that layer and everything below it, mirroring exactly
    which layers the scalar parser would have produced.  IPv4 option
    lengths are honoured (``ihl``); checksums are *not* verified here —
    the prefilter treats checksum-failing frames conservatively.
    """
    n = len(batch)
    ethertype = array("i")
    proto = array("i")
    src = array("I")
    dst = array("I")
    src_port = array("i")
    dst_port = array("i")
    l4_offset = array("i")

    put_ethertype = ethertype.append
    put_proto = proto.append
    put_src = src.append
    put_dst = dst.append
    put_src_port = src_port.append
    put_dst_port = dst_port.append
    put_l4 = l4_offset.append

    buf = batch.buffer
    offsets = batch.offsets
    caplens = batch.caplens
    unpack_addrs = _UNPACK_ADDRS
    unpack_ports = _UNPACK_PORTS

    for i in range(n):
        o = offsets[i]
        caplen = caplens[i]
        et = -1
        p = -1
        s = 0
        d = 0
        sp = -1
        dp = -1
        l4 = -1
        if caplen >= 14:
            et = (buf[o + 12] << 8) | buf[o + 13]
            l3 = o + 14
            if et == _ETHERTYPE_VLAN:
                if caplen >= 18:
                    et = (buf[o + 16] << 8) | buf[o + 17]
                    l3 = o + 18
                else:
                    et = -1
            end = o + caplen
            if et == _ETHERTYPE_IPV4 and end >= l3 + 20:
                p = buf[l3 + 9]
                s, d = unpack_addrs(buf, l3 + 12)
                ihl = (buf[l3] & 0x0F) << 2
                t4 = l3 + ihl
                if ihl >= 20 and (p == _PROTO_UDP or p == _PROTO_TCP) and end >= t4 + 4:
                    sp, dp = unpack_ports(buf, t4)
                    l4 = t4 - o
            elif et == _ETHERTYPE_IPV6 and end >= l3 + 40:
                p = buf[l3 + 6]
                t4 = l3 + 40
                if (p == _PROTO_UDP or p == _PROTO_TCP) and end >= t4 + 4:
                    sp, dp = unpack_ports(buf, t4)
                    l4 = t4 - o
        put_ethertype(et)
        put_proto(p)
        put_src(s)
        put_dst(d)
        put_src_port(sp)
        put_dst_port(dp)
        put_l4(l4)

    return HeaderColumns(
        ethertype=ethertype,
        proto=proto,
        src=src,
        dst=dst,
        src_port=src_port,
        dst_port=dst_port,
        l4_offset=l4_offset,
    )


@dataclass(slots=True)
class PrefilterVerdict:
    """Outcome of one :meth:`BatchPrefilter.apply` pass over a batch."""

    survivors: list[int]
    hint_indexes: list[int]
    dropped: int
    dropped_bytes: int
    parse_failures: int

    @property
    def passed(self) -> int:
        return len(self.survivors)


def _ipv4_str_to_u32(ip: str) -> int | None:
    parts = ip.split(".")
    if len(parts) != 4:
        return None
    try:
        a, b, c, d = (int(part) for part in parts)
    except ValueError:
        return None
    return (a << 24) | (b << 16) | (c << 8) | d


class BatchPrefilter:
    """Match-action prefilter compiled from the capture model's rules.

    Rules, in order (mirrors the Tofino program of §6.1 and the scalar
    detector's decision tree):

    1. **Pass** every frame touching a Zoom server range (either
       direction) — these are the detector's business, whatever their
       transport looks like.
    2. **Pass** every UDP frame whose endpoint appears in the STUN-learned
       endpoint set (superset of the detector's live bindings — see the
       module docstring).
    3. **Pass** everything ambiguous: IPv6, frames the columnar decoder
       could not fully read *iff* they touch rule 1/2 state.
    4. **Drop** the rest: they are provably NOT_ZOOM under the scalar
       decision tree and touch no detector state.

    The endpoint set grows in two ways: the prefilter itself sniffs the
    STUN magic cookie on Zoom-range UDP/:data:`STUN_SERVER_PORT` frames
    (both endpoints, more liberal than the detector's campus-gated learn),
    and :meth:`sync_stun` folds in anything the detector learned through
    a scalar-path feed or a merged shard.

    With the protocol registry (:meth:`from_plugins`) the compiled rules
    are the **union** of every enabled plugin's match-action hints: all
    plugins' subnets pass, all plugins' tracker endpoints pass, and a
    plugin that learns from arbitrary-port STUN (``sniff_all_stun`` — the
    generic RTP/WebRTC plugin) widens the cookie sniff to *every* IPv4/UDP
    frame.  Because both endpoints of a cookie frame are noted *before*
    the pass decision, cookie frames themselves always pass in that mode,
    so the drop guarantee generalizes: every endpoint any plugin can learn
    arrives on a cookie frame, hence the pass-set is a superset of every
    tracker's keys, hence a dropped frame is unclaimed by every plugin and
    its classification touches no plugin state (all lookups miss).
    """

    __slots__ = ("_nets_v4", "_endpoints", "_synced_learns", "_sniff_all")

    def __init__(self, networks: Iterable, *, sniff_all_stun: bool = False) -> None:
        nets_v4 = []
        for net in networks:
            net = ip_network(net) if isinstance(net, str) else net
            if net.version == 4:
                nets_v4.append((int(net.network_address), int(net.netmask)))
        self._nets_v4: Sequence[tuple[int, int]] = tuple(nets_v4)
        self._endpoints: set[int] = set()
        self._synced_learns: dict[int, int] = {}
        self._sniff_all = sniff_all_stun

    @classmethod
    def from_matcher(cls, matcher) -> "BatchPrefilter":
        """Compile from a :class:`~repro.core.detector.ZoomSubnetMatcher`."""
        return cls(matcher.networks)

    @classmethod
    def from_plugins(cls, plugins: Iterable) -> "BatchPrefilter":
        """Compile the union of the enabled plugins' match-action rules."""
        networks: list = []
        sniff_all = False
        for plugin in plugins:
            networks.extend(plugin.prefilter_networks)
            sniff_all = sniff_all or plugin.sniff_all_stun
        return cls(networks, sniff_all_stun=sniff_all)

    # ------------------------------------------------------ compiled state
    #
    # The software dataplane (repro.dataplane) derives its other executors
    # — the raw-bytes pre-decode filter and the cBPF kernel program — from
    # this object's rule state, so the state is public read-only API, not
    # an implementation detail.

    @property
    def networks_v4(self) -> Sequence[tuple[int, int]]:
        """Compiled IPv4 rules as ``(network_u32, netmask_u32)`` pairs."""
        return self._nets_v4

    @property
    def endpoint_keys(self) -> frozenset[int]:
        """Snapshot of the endpoint pass-set (``(ip_u32 << 16) | port``)."""
        return frozenset(self._endpoints)

    @property
    def endpoint_keys_view(self) -> "set[int]":
        """The *live* endpoint pass-set (read-only by convention; cheap)."""
        return self._endpoints

    @property
    def endpoint_count(self) -> int:
        """Size of the pass-set — it never shrinks, so growth ⇔ change."""
        return len(self._endpoints)

    @property
    def sniff_all_stun(self) -> bool:
        """Whether the STUN cookie sniff applies beyond Zoom-range frames."""
        return self._sniff_all

    # ----------------------------------------------------------- endpoints

    def note_endpoint(self, ip_u32: int, port: int) -> None:
        self._endpoints.add((ip_u32 << 16) | port)

    def sync_stun(self, tracker) -> None:
        """Fold one tracker's learned bindings into the pass-set.

        Cheap when nothing changed: :class:`~repro.core.detector.StunTracker`
        counts every ``learn()`` monotonically, and the pass-set never
        forgets, so binding *expiry* needs no action here.  Multiple
        trackers (one per plugin) are synced independently.
        """
        key = id(tracker)
        learned = tracker.bindings_learned
        if learned == self._synced_learns.get(key):
            return
        self._synced_learns[key] = learned
        for ip, port in tracker.endpoints():
            ip_u32 = _ipv4_str_to_u32(ip)
            if ip_u32 is not None:
                self.note_endpoint(ip_u32, port)

    # --------------------------------------------------------------- apply

    def apply(self, batch: FrameBatch, columns: HeaderColumns) -> PrefilterVerdict:
        """Split a batch into survivors / hint frames / dropped frames."""
        survivors: list[int] = []
        hint_indexes: list[int] = []
        dropped = 0
        dropped_bytes = 0
        parse_failures = 0

        nets = self._nets_v4
        endpoints = self._endpoints
        note = self.note_endpoint
        buf = batch.buffer
        offsets = batch.offsets
        caplens = batch.caplens
        hints = batch.hints
        ethertype = columns.ethertype
        proto = columns.proto
        src = columns.src
        dst = columns.dst
        src_port = columns.src_port
        dst_port = columns.dst_port
        l4_offset = columns.l4_offset
        stun_port = STUN_SERVER_PORT
        sniff_all = self._sniff_all

        for i in range(len(caplens)):
            et = ethertype[i]
            is_hint = hints is not None and hints[i]
            if et == _ETHERTYPE_IPV4:
                s = src[i]
                d = dst[i]
                zoom_hit = False
                for net, mask in nets:
                    if (s & mask) == net or (d & mask) == net:
                        zoom_hit = True
                        break
                if proto[i] == _PROTO_UDP and src_port[i] >= 0:
                    sp = src_port[i]
                    dp = dst_port[i]
                    if sniff_all or (zoom_hit and (sp == stun_port or dp == stun_port)):
                        # Liberal STUN sniff: learn both endpoints of any
                        # Zoom-range frame carrying the magic cookie, so the
                        # pass-set strictly contains whatever the detector's
                        # campus-gated learn will accept downstream.  In
                        # sniff-all mode (arbitrary-port ICE) noting both
                        # endpoints here also makes the cookie frame itself
                        # pass the endpoint check below.
                        l4 = offsets[i] + l4_offset[i]
                        if (
                            caplens[i] >= l4_offset[i] + 16
                            and buf[l4 + 12] == 0x21
                            and buf[l4 + 13] == 0x12
                            and buf[l4 + 14] == 0xA4
                            and buf[l4 + 15] == 0x42
                        ):
                            note(s, sp)
                            note(d, dp)
                    if is_hint:
                        hint_indexes.append(i)
                        continue
                    if (
                        zoom_hit
                        or ((s << 16) | sp) in endpoints
                        or ((d << 16) | dp) in endpoints
                    ):
                        survivors.append(i)
                        continue
                    dropped += 1
                    dropped_bytes += caplens[i]
                    continue
                # IPv4 but not parseable UDP (TCP, other protocols, or a
                # truncated transport header): the scalar tree consults no
                # STUN state for these — Zoom-range frames pass, the rest
                # are provably NOT_ZOOM.
                if is_hint:
                    hint_indexes.append(i)
                    continue
                if zoom_hit:
                    survivors.append(i)
                    continue
                dropped += 1
                dropped_bytes += caplens[i]
                continue
            if is_hint:
                hint_indexes.append(i)
                continue
            if et == _ETHERTYPE_IPV6:
                # No IPv6 rules are compiled today (the Zoom/campus ranges
                # are IPv4); pass everything rather than guess.
                survivors.append(i)
                continue
            # No Ethernet header at all (scalar: ethernet is None ⇒ counted
            # as a parse failure) or a non-IP ethertype (ARP, LLDP, …):
            # provably NOT_ZOOM either way.
            if et < 0:
                parse_failures += 1
            dropped += 1
            dropped_bytes += caplens[i]

        return PrefilterVerdict(
            survivors=survivors,
            hint_indexes=hint_indexes,
            dropped=dropped,
            dropped_bytes=dropped_bytes,
            parse_failures=parse_failures,
        )
