"""The internet checksum (RFC 1071) used by IPv4, UDP, and TCP."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement internet checksum of ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071.  The return
    value is already complemented, i.e. it is the value to place in the
    checksum field of a header whose checksum field was zero while summing.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries back into the low 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header_v4(src: bytes, dst: bytes, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used in UDP/TCP checksums.

    ``src`` and ``dst`` are 4-byte packed addresses; ``length`` is the length
    of the transport header plus payload.
    """
    return src + dst + bytes([0, protocol]) + length.to_bytes(2, "big")


def pseudo_header_v6(src: bytes, dst: bytes, protocol: int, length: int) -> bytes:
    """Build the IPv6 pseudo-header used in UDP/TCP checksums."""
    return src + dst + length.to_bytes(4, "big") + bytes([0, 0, 0, protocol])
