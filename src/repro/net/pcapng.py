"""Reader and writer for the pcapng capture format (RFC draft-tuexen).

Campus capture systems increasingly hand researchers pcapng rather than
classic pcap; this module covers the subset needed to interchange packet
captures: Section Header Blocks, Interface Description Blocks (with the
``if_tsresol`` option), Enhanced Packet Blocks, and Simple Packet Blocks.
Unknown block types are skipped by length, per the spec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.net.batch import DEFAULT_FRAMES_PER_BATCH, FrameBatch, FrameBatchBuilder
from repro.net.packet import CapturedPacket
from repro.telemetry.registry import Telemetry

BLOCK_SHB = 0x0A0D0D0A
BLOCK_IDB = 0x00000001
BLOCK_SPB = 0x00000003
BLOCK_EPB = 0x00000006

BYTE_ORDER_MAGIC = 0x1A2B3C4D
OPT_ENDOFOPT = 0
OPT_IF_TSRESOL = 9
LINKTYPE_ETHERNET = 1


def _pad4(length: int) -> int:
    return (-length) % 4


@dataclass
class _Interface:
    linktype: int
    ticks_per_second: float


@dataclass(frozen=True, slots=True)
class PcapngResumeState:
    """Where (and how) to pick up reading a growing pcapng file.

    Unlike classic pcap, a byte offset alone is not enough to resume: the
    enclosing section fixes the byte order and the interface table that
    packet blocks reference, and both were consumed before the offset.
    """

    offset: int
    endian: str
    interfaces: tuple[tuple[int, float], ...]  # (linktype, ticks_per_second)


class PcapngWriter:
    """Write packets as a single-section, single-interface pcapng file.

    Timestamps are written at nanosecond resolution (``if_tsresol`` = 9).
    """

    def __init__(self, path: str | Path | BinaryIO, *, snaplen: int = 262144) -> None:
        if hasattr(path, "write"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns = False
        else:
            self._file = open(path, "wb")
            self._owns = True
        self.packets_written = 0
        self._write_shb()
        self._write_idb(snaplen)

    def _write_block(self, block_type: int, body: bytes) -> None:
        total = 12 + len(body)
        self._file.write(struct.pack("<II", block_type, total) + body + struct.pack("<I", total))

    def _write_shb(self) -> None:
        body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
        self._write_block(BLOCK_SHB, body)

    def _write_idb(self, snaplen: int) -> None:
        # Option 9 (if_tsresol) = 9 -> 10^-9 seconds per tick.
        options = struct.pack("<HHB3x", OPT_IF_TSRESOL, 1, 9)
        options += struct.pack("<HH", OPT_ENDOFOPT, 0)
        body = struct.pack("<HHI", LINKTYPE_ETHERNET, 0, snaplen) + options
        self._write_block(BLOCK_IDB, body)

    def write(self, packet: CapturedPacket) -> None:
        ticks = int(round(packet.timestamp * 1_000_000_000))
        high, low = ticks >> 32, ticks & 0xFFFFFFFF
        length = len(packet.data)
        body = struct.pack("<IIIII", 0, high, low, length, length)
        body += packet.data + b"\x00" * _pad4(length)
        self._write_block(BLOCK_EPB, body)
        self.packets_written += 1

    def write_all(self, packets: Iterable[CapturedPacket]) -> int:
        count = 0
        for packet in packets:
            self.write(packet)
            count += 1
        return count

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "PcapngWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PcapngReader:
    """Read packets from a pcapng file (either endianness).

    Yields :class:`CapturedPacket` records.  Simple Packet Blocks carry no
    timestamp; they are reported at time 0.0.  Multiple sections and
    interfaces are supported; per-interface ``if_tsresol`` is honored.

    Args:
        path: File path or open binary stream.
        telemetry: Optional :class:`~repro.telemetry.Telemetry` registry;
            records ``capture.frames`` / ``capture.bytes`` /
            ``capture.unknown_blocks`` / ``capture.truncated`` while reading.
        tolerant: When ``True``, a truncated or corrupt tail ends iteration
            cleanly (counted as ``capture.truncated``) instead of raising.
        resume: A :class:`PcapngResumeState` from a previous reader's
            :meth:`resume_state`; reading continues at that block boundary
            with the recorded section byte order and interface table.

    Attributes:
        next_offset: The byte offset of the first block *not yet* consumed.
            Advanced only after a block is read in full, so a tolerant
            truncated-tail stop leaves it at the last good block boundary.
    """

    def __init__(
        self,
        path: str | Path | BinaryIO,
        *,
        telemetry: Telemetry | None = None,
        tolerant: bool = False,
        resume: PcapngResumeState | None = None,
    ) -> None:
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self._tolerant = tolerant
        if hasattr(path, "read"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns = False
        else:
            self._file = open(path, "rb")
            self._owns = True
        self._endian = "<"
        self._interfaces: list[_Interface] = []
        header = self._file.read(8)
        if len(header) < 8:
            raise ValueError("file too short for pcapng")
        (block_type,) = struct.unpack("<I", header[:4])
        if block_type != BLOCK_SHB:
            raise ValueError("not a pcapng file (no section header block)")
        self._pending = header
        self.next_offset = 0
        if resume is not None:
            self._endian = resume.endian
            self._interfaces = [
                _Interface(linktype, ticks) for linktype, ticks in resume.interfaces
            ]
            self._pending = b""
            self._file.seek(resume.offset)
            self.next_offset = resume.offset

    def resume_state(self) -> PcapngResumeState:
        """Snapshot of the current read position for a later ``resume=``."""
        return PcapngResumeState(
            offset=self.next_offset,
            endian=self._endian,
            interfaces=tuple(
                (iface.linktype, iface.ticks_per_second) for iface in self._interfaces
            ),
        )

    def _read_exact(self, count: int) -> bytes | None:
        if self._pending:
            chunk, self._pending = self._pending, b""
            rest = self._file.read(count - len(chunk))
            data = chunk + rest
        else:
            data = self._file.read(count)
        if not data:
            return None
        if len(data) < count:
            raise ValueError("truncated pcapng block")
        return data

    def __iter__(self) -> Iterator[CapturedPacket]:
        if not self._tolerant:
            yield from self._iter_blocks()
            return
        try:
            yield from self._iter_blocks()
        except ValueError:
            # Mid-record cut-off (or a corrupt tail): stop cleanly.
            self._telemetry.count("capture.truncated")

    def _iter_blocks(self) -> Iterator[CapturedPacket]:
        tel = self._telemetry
        for block_type, body in self._packet_blocks():
            packet = (
                self._handle_epb(body)
                if block_type == BLOCK_EPB
                else self._handle_spb(body)
            )
            if packet is not None:
                tel.count("capture.frames")
                tel.count("capture.bytes", len(packet.data))
                yield packet

    def _packet_blocks(self) -> Iterator[tuple[int, bytes]]:
        """Walk the block structure, yielding ``(type, body)`` for packet
        blocks only.  Section headers (byte-order switches, interface-table
        resets), interface descriptions, and unknown blocks are handled
        internally — shared by the scalar iterator and :meth:`read_batches`
        so the two paths cannot drift."""
        tel = self._telemetry
        while True:
            head = self._read_exact(8)
            if head is None:
                return
            block_type, total_len = struct.unpack(self._endian + "II", head)
            if block_type == BLOCK_SHB:
                # Length may be in the other byte order until we read the magic.
                body_start = self._read_exact(4)
                if body_start is None:
                    raise ValueError("truncated section header")
                (magic_le,) = struct.unpack("<I", body_start)
                self._endian = "<" if magic_le == BYTE_ORDER_MAGIC else ">"
                (_type, total_len) = struct.unpack(self._endian + "II", head)
                # Consume the rest of the block: body after the magic plus
                # the trailing total-length word.
                remaining = total_len - 8 - 4
                body = self._read_exact(remaining)
                if body is None:
                    raise ValueError("truncated section header block")
                self._interfaces = []  # interfaces are per section
                self.next_offset += total_len
                continue
            body_len = total_len - 12
            if body_len < 0:
                raise ValueError(f"invalid block length {total_len}")
            body = self._read_exact(body_len + 4)  # body + trailing length
            if body is None:
                raise ValueError("truncated block body")
            body = body[:-4]
            self.next_offset += total_len
            if block_type == BLOCK_IDB:
                self._handle_idb(body)
            elif block_type in (BLOCK_EPB, BLOCK_SPB):
                yield block_type, body
            else:
                # Unknown block types are skipped by length, per spec —
                # but counted, so --stats shows what the reader ignored.
                tel.count("capture.unknown_blocks")

    def read_batches(
        self, max_frames: int = DEFAULT_FRAMES_PER_BATCH
    ) -> Iterator[FrameBatch]:
        """Yield :class:`~repro.net.batch.FrameBatch`es of EPB/SPB frames.

        Frame bytes are appended straight from each block body into the
        batch buffer — no per-frame :class:`CapturedPacket`.  Telemetry,
        tolerant-mode truncation (including flushing the partial batch
        built before the corrupt tail, so the frame sequence matches the
        scalar iterator exactly), and :attr:`next_offset`/:meth:`resume_state`
        block-boundary semantics are identical to iteration.
        """
        if not self._tolerant:
            yield from self._batch_blocks(max_frames)
            return
        try:
            yield from self._batch_blocks(max_frames)
        except ValueError:
            self._telemetry.count("capture.truncated")

    def _batch_blocks(self, max_frames: int) -> Iterator[FrameBatch]:
        tel = self._telemetry
        builder = FrameBatchBuilder()
        try:
            for block_type, body in self._packet_blocks():
                view = memoryview(body)
                if block_type == BLOCK_EPB:
                    if len(body) < 20:
                        raise ValueError("enhanced packet block too short")
                    interface_id, high, low, caplen, _origlen = struct.unpack_from(
                        self._endian + "IIIII", body, 0
                    )
                    if 20 + caplen > len(body):
                        raise ValueError("truncated packet data in EPB")
                    if interface_id < len(self._interfaces):
                        ticks_per_second = self._interfaces[
                            interface_id
                        ].ticks_per_second
                    else:
                        ticks_per_second = 1_000_000.0
                    ticks = (high << 32) | low
                    data = view[20 : 20 + caplen]
                    timestamp = ticks / ticks_per_second
                else:  # BLOCK_SPB — no timestamp, data may be silently short
                    if len(body) < 4:
                        raise ValueError("simple packet block too short")
                    (origlen,) = struct.unpack_from(self._endian + "I", body, 0)
                    data = view[4 : 4 + origlen]
                    timestamp = 0.0
                builder.append(data, timestamp)
                tel.count("capture.frames")
                tel.count("capture.bytes", len(data))
                if len(builder) >= max_frames:
                    yield builder.build()
        except ValueError:
            # Flush the frames read before the corrupt tail, then let the
            # tolerant wrapper (or the caller) see the error.
            if len(builder):
                yield builder.build()
            raise
        if len(builder):
            yield builder.build()

    def _handle_idb(self, body: bytes) -> None:
        linktype, _reserved, _snaplen = struct.unpack_from(self._endian + "HHI", body, 0)
        ticks_per_second = 1_000_000.0  # spec default: microseconds
        position = 8
        while position + 4 <= len(body):
            code, length = struct.unpack_from(self._endian + "HH", body, position)
            position += 4
            if code == OPT_ENDOFOPT:
                break
            value = body[position : position + length]
            position += length + _pad4(length)
            if code == OPT_IF_TSRESOL and len(value) >= 1:
                resol = value[0]
                if resol & 0x80:
                    ticks_per_second = float(2 ** (resol & 0x7F))
                else:
                    ticks_per_second = float(10 ** resol)
        self._interfaces.append(_Interface(linktype, ticks_per_second))

    def _handle_epb(self, body: bytes) -> CapturedPacket | None:
        if len(body) < 20:
            raise ValueError("enhanced packet block too short")
        interface_id, high, low, caplen, _origlen = struct.unpack_from(
            self._endian + "IIIII", body, 0
        )
        data = bytes(body[20 : 20 + caplen])
        if len(data) < caplen:
            raise ValueError("truncated packet data in EPB")
        if interface_id < len(self._interfaces):
            ticks_per_second = self._interfaces[interface_id].ticks_per_second
        else:
            ticks_per_second = 1_000_000.0
        ticks = (high << 32) | low
        return CapturedPacket(ticks / ticks_per_second, data)

    def _handle_spb(self, body: bytes) -> CapturedPacket | None:
        if len(body) < 4:
            raise ValueError("simple packet block too short")
        (origlen,) = struct.unpack_from(self._endian + "I", body, 0)
        data = bytes(body[4 : 4 + origlen])
        return CapturedPacket(0.0, data)

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "PcapngReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_pcapng(path: str | Path, packets: Iterable[CapturedPacket]) -> int:
    """Write all packets to a pcapng file; returns the count."""
    with PcapngWriter(path) as writer:
        return writer.write_all(packets)


def read_pcapng(
    path: str | Path,
    *,
    telemetry: Telemetry | None = None,
    tolerant: bool = False,
) -> list[CapturedPacket]:
    """Deprecated: read every packet from a pcapng file into a list.

    Kept as a thin compatibility wrapper; it materializes the whole capture.
    Stream with :class:`PcapngReader` or, for the analyzers,
    :class:`repro.net.source.PcapNgFileSource`.
    """
    import warnings

    warnings.warn(
        "read_pcapng() materializes the whole capture; iterate PcapngReader "
        "or use repro.net.source.PcapNgFileSource for streaming ingestion",
        DeprecationWarning,
        stacklevel=2,
    )
    with PcapngReader(path, telemetry=telemetry, tolerant=tolerant) as reader:
        return list(reader)


def read_capture(
    path: str | Path,
    *,
    telemetry: Telemetry | None = None,
    tolerant: bool = False,
) -> list[CapturedPacket]:
    """Deprecated compatibility re-export of
    :func:`repro.net.source.read_capture` (its historical home was this
    module).  Format dispatch sniffs magic bytes, never the file name."""
    from repro.net.source import read_capture as _read_capture

    return _read_capture(path, telemetry=telemetry, tolerant=tolerant)
