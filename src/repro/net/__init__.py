"""Packet substrate: pcap I/O and L2-L4 header parsing built from scratch.

This subpackage is a self-contained replacement for scapy/dpkt.  It provides
binary parsers and serializers for Ethernet II (with 802.1Q), IPv4, IPv6, UDP
and TCP, an internet-checksum helper, a ``ParsedPacket`` record that decodes a
full frame in one call, and a libpcap-format reader/writer with microsecond
and nanosecond timestamp resolution.

Everything round-trips: ``parse(serialize(x)) == x`` for every header type,
which the property-based test suite checks exhaustively.
"""

from repro.net.batch import (
    BatchPrefilter,
    FrameBatch,
    FrameBatchBuilder,
    HeaderColumns,
    PrefilterVerdict,
    decode_columns,
    prepared_frame_batch,
)
from repro.net.checksum import internet_checksum
from repro.net.ethernet import EtherType, EthernetHeader
from repro.net.ip import IPProtocol, IPv4Header, IPv6Header
from repro.net.packet import CapturedPacket, ParsedPacket, parse_frame
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.source import (
    CaptureDirectorySource,
    InterleavedSource,
    IterableSource,
    PacketSource,
    PcapFileSource,
    PcapNgFileSource,
    SimulationSource,
    open_capture_source,
    sniff_capture_format,
)
from repro.net.tcp import TCPFlags, TCPHeader
from repro.net.udp import UDPHeader

__all__ = [
    "BatchPrefilter",
    "CaptureDirectorySource",
    "CapturedPacket",
    "EtherType",
    "EthernetHeader",
    "FrameBatch",
    "FrameBatchBuilder",
    "HeaderColumns",
    "IPProtocol",
    "IPv4Header",
    "IPv6Header",
    "InterleavedSource",
    "IterableSource",
    "PacketSource",
    "ParsedPacket",
    "PcapFileSource",
    "PcapNgFileSource",
    "PcapReader",
    "PcapWriter",
    "PrefilterVerdict",
    "SimulationSource",
    "TCPFlags",
    "TCPHeader",
    "UDPHeader",
    "decode_columns",
    "internet_checksum",
    "open_capture_source",
    "parse_frame",
    "prepared_frame_batch",
    "read_pcap",
    "sniff_capture_format",
    "write_pcap",
]
