"""IPv4 and IPv6 header parsing and serialization."""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum


class IPProtocol(enum.IntEnum):
    """IP protocol numbers this library understands."""

    ICMP = 1
    TCP = 6
    UDP = 17
    ICMPV6 = 58


def ip_to_str(packed: bytes) -> str:
    """Render a packed 4- or 16-byte IP address as a string."""
    return str(ipaddress.ip_address(packed))


def ip_from_str(text: str) -> bytes:
    """Parse a dotted-quad or IPv6 string into packed bytes."""
    return ipaddress.ip_address(text).packed


@dataclass(frozen=True, slots=True)
class IPv4Header:
    """An IPv4 header without options (IHL is always 5).

    Attributes:
        src: Packed 4-byte source address.
        dst: Packed 4-byte destination address.
        protocol: Payload protocol number (e.g. ``IPProtocol.UDP``).
        total_length: Total datagram length including this header.
        ttl: Time to live.
        identification: IP ID field.
        dscp: Differentiated services code point (6 bits).
        ecn: Explicit congestion notification (2 bits).
        flags: The 3-bit flags field (bit 1 = don't fragment).
        fragment_offset: Fragment offset in 8-byte units.
    """

    src: bytes
    dst: bytes
    protocol: int
    total_length: int
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    flags: int = 0b010  # don't fragment
    fragment_offset: int = 0

    HEADER_LEN = 20
    VERSION = 4

    def __post_init__(self) -> None:
        if len(self.src) != 4 or len(self.dst) != 4:
            raise ValueError("IPv4 addresses must be 4 packed bytes")
        if not self.HEADER_LEN <= self.total_length <= 0xFFFF:
            raise ValueError(f"total_length out of range: {self.total_length}")
        if not 0 <= self.dscp <= 0x3F or not 0 <= self.ecn <= 3:
            raise ValueError("DSCP/ECN out of range")

    @property
    def src_str(self) -> str:
        return ip_to_str(self.src)

    @property
    def dst_str(self) -> str:
        return ip_to_str(self.dst)

    @property
    def payload_length(self) -> int:
        """Length of the payload following this header."""
        return self.total_length - self.HEADER_LEN

    def serialize(self) -> bytes:
        """Encode to wire format with a correct header checksum."""
        ver_ihl = (self.VERSION << 4) | 5
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.fragment_offset
        header = struct.pack(
            "!BBHHHBBH4s4s",
            ver_ihl,
            tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv4Header", int]:
        """Decode from wire format; returns the header and payload offset.

        Options, if present, are skipped; the reported payload offset accounts
        for them.  The header checksum is verified and a ``ValueError`` is
        raised on mismatch.
        """
        if len(data) < cls.HEADER_LEN:
            raise ValueError(f"datagram too short for IPv4: {len(data)} bytes")
        ver_ihl = data[0]
        version, ihl = ver_ihl >> 4, ver_ihl & 0xF
        if version != cls.VERSION:
            raise ValueError(f"not an IPv4 header (version={version})")
        if ihl < 5:
            raise ValueError(f"invalid IHL {ihl}")
        header_len = ihl * 4
        if len(data) < header_len:
            raise ValueError("datagram shorter than stated header length")
        if internet_checksum(data[:header_len]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        tos = data[1]
        (total_length, identification, flags_frag) = struct.unpack_from("!HHH", data, 2)
        ttl, protocol = data[8], data[9]
        src, dst = data[12:16], data[16:20]
        return (
            cls(
                src=src,
                dst=dst,
                protocol=protocol,
                total_length=total_length,
                ttl=ttl,
                identification=identification,
                dscp=tos >> 2,
                ecn=tos & 3,
                flags=flags_frag >> 13,
                fragment_offset=flags_frag & 0x1FFF,
            ),
            header_len,
        )


@dataclass(frozen=True, slots=True)
class IPv6Header:
    """A fixed IPv6 header (no extension-header chain walking).

    Attributes:
        src: Packed 16-byte source address.
        dst: Packed 16-byte destination address.
        next_header: Payload protocol number.
        payload_length: Length of everything after this 40-byte header.
        hop_limit: Hop limit (TTL analogue).
        traffic_class: 8-bit traffic class.
        flow_label: 20-bit flow label.
    """

    src: bytes
    dst: bytes
    next_header: int
    payload_length: int
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    HEADER_LEN = 40
    VERSION = 6

    def __post_init__(self) -> None:
        if len(self.src) != 16 or len(self.dst) != 16:
            raise ValueError("IPv6 addresses must be 16 packed bytes")
        if not 0 <= self.flow_label <= 0xFFFFF:
            raise ValueError(f"flow label out of range: {self.flow_label}")

    @property
    def src_str(self) -> str:
        return ip_to_str(self.src)

    @property
    def dst_str(self) -> str:
        return ip_to_str(self.dst)

    def serialize(self) -> bytes:
        """Encode to wire format."""
        first_word = (self.VERSION << 28) | (self.traffic_class << 20) | self.flow_label
        return (
            struct.pack("!IHBB", first_word, self.payload_length, self.next_header, self.hop_limit)
            + self.src
            + self.dst
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv6Header", int]:
        """Decode from wire format; returns the header and payload offset."""
        if len(data) < cls.HEADER_LEN:
            raise ValueError(f"datagram too short for IPv6: {len(data)} bytes")
        (first_word, payload_length, next_header, hop_limit) = struct.unpack_from("!IHBB", data, 0)
        version = first_word >> 28
        if version != cls.VERSION:
            raise ValueError(f"not an IPv6 header (version={version})")
        return (
            cls(
                src=data[8:24],
                dst=data[24:40],
                next_header=next_header,
                payload_length=payload_length,
                hop_limit=hop_limit,
                traffic_class=(first_word >> 20) & 0xFF,
                flow_label=first_word & 0xFFFFF,
            ),
            cls.HEADER_LEN,
        )
