"""Reader and writer for the classic libpcap capture-file format.

Supports both microsecond (magic ``0xa1b2c3d4``) and nanosecond
(``0xa1b23c4d``) timestamp resolution, either endianness on read, and the
Ethernet link type.  This is the on-disk interchange format between the
traffic emulator (:mod:`repro.simulation`) and the analyzer
(:mod:`repro.core`).
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.net.batch import DEFAULT_FRAMES_PER_BATCH, FrameBatch
from repro.net.packet import CapturedPacket
from repro.telemetry.registry import Telemetry

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D
LINKTYPE_ETHERNET = 1

#: Read granularity of :meth:`PcapReader.read_batches`.  Batches alias the
#: chunk, so this also bounds how much capture data one batch can pin.
_BATCH_CHUNK_BYTES = 1 << 20

_GLOBAL_HEADER = struct.Struct("IHHiIII")  # endianness applied at use site
_RECORD_HEADER = struct.Struct("IIII")


@dataclass(frozen=True, slots=True)
class PcapHeader:
    """Parsed pcap global header."""

    nanosecond: bool
    little_endian: bool
    version_major: int
    version_minor: int
    snaplen: int
    linktype: int


class PcapWriter:
    """Write packets to a libpcap file.

    Usage::

        with PcapWriter("trace.pcap") as writer:
            writer.write(CapturedPacket(1.5, frame_bytes))
    """

    def __init__(
        self,
        path: str | Path | BinaryIO,
        *,
        nanosecond: bool = True,
        snaplen: int = 262144,
        linktype: int = LINKTYPE_ETHERNET,
    ) -> None:
        if hasattr(path, "write"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "wb")
            self._owns_file = True
        self._nanosecond = nanosecond
        self._tick = 1e-9 if nanosecond else 1e-6
        magic = MAGIC_NANOS if nanosecond else MAGIC_MICROS
        self._file.write(
            struct.pack("<IHHiIII", magic, 2, 4, 0, 0, snaplen, linktype)
        )
        self.packets_written = 0

    def write(self, packet: CapturedPacket) -> None:
        """Append one packet record."""
        whole = int(packet.timestamp)
        frac = int(round((packet.timestamp - whole) / self._tick))
        limit = 1_000_000_000 if self._nanosecond else 1_000_000
        if frac >= limit:  # rounding pushed us into the next second
            whole += 1
            frac -= limit
        length = len(packet.data)
        self._file.write(struct.pack("<IIII", whole, frac, length, length))
        self._file.write(packet.data)
        self.packets_written += 1

    def write_all(self, packets: Iterable[CapturedPacket]) -> int:
        """Append many packets; returns the number written."""
        count = 0
        for packet in packets:
            self.write(packet)
            count += 1
        return count

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Read packets from a libpcap file.

    Iterating yields :class:`CapturedPacket` records with float timestamps.
    Handles both endiannesses and both timestamp resolutions.

    Args:
        path: File path or open binary stream.
        telemetry: Optional :class:`~repro.telemetry.Telemetry` registry;
            when given, ``capture.frames`` / ``capture.bytes`` /
            ``capture.truncated`` are recorded while reading.
        tolerant: Real-world captures are often cut off mid-record (a
            monitor restarted, a disk filled).  When ``True``, a truncated
            tail ends iteration cleanly (counted as ``capture.truncated``)
            instead of raising :class:`ValueError`.
        start_offset: Byte offset to resume reading from — must be a record
            boundary previously reported via :attr:`next_offset` (the global
            header is always re-read from the start of the file, so the
            offset has to be at least 24).  This is what lets a tailing
            source re-open a growing file across polls without re-counting
            packets it already delivered.

    Attributes:
        next_offset: The byte offset of the first record *not yet* yielded.
            Advanced only after a record is read in full, so after a
            tolerant truncated-tail stop it still points at the last good
            record boundary and a later resume retries the partial record.
    """

    def __init__(
        self,
        path: str | Path | BinaryIO,
        *,
        telemetry: Telemetry | None = None,
        tolerant: bool = False,
        start_offset: int = 0,
    ) -> None:
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self._tolerant = tolerant
        if hasattr(path, "read"):
            self._file: BinaryIO = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "rb")
            self._owns_file = True
        header_bytes = self._file.read(24)
        if len(header_bytes) < 24:
            raise ValueError("file too short for a pcap global header")
        (magic,) = struct.unpack("<I", header_bytes[:4])
        if magic in (MAGIC_MICROS, MAGIC_NANOS):
            endian = "<"
        else:
            (magic,) = struct.unpack(">I", header_bytes[:4])
            if magic not in (MAGIC_MICROS, MAGIC_NANOS):
                raise ValueError("not a libpcap file (bad magic)")
            endian = ">"
        major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
            endian + "HHiIII", header_bytes[4:]
        )
        self.header = PcapHeader(
            nanosecond=(magic == MAGIC_NANOS),
            little_endian=(endian == "<"),
            version_major=major,
            version_minor=minor,
            snaplen=snaplen,
            linktype=linktype,
        )
        self._endian = endian
        self._tick = 1e-9 if self.header.nanosecond else 1e-6
        if start_offset:
            if start_offset < 24:
                raise ValueError("pcap start_offset lies inside the global header")
            self._file.seek(start_offset)
            self.next_offset = start_offset
        else:
            self.next_offset = 24

    def __iter__(self) -> Iterator[CapturedPacket]:
        record = struct.Struct(self._endian + "IIII")
        tel = self._telemetry
        while True:
            header = self._file.read(16)
            if not header:
                return
            if len(header) < 16:
                if self._tolerant:
                    tel.count("capture.truncated")
                    return
                raise ValueError("truncated pcap record header")
            seconds, frac, caplen, _origlen = record.unpack(header)
            data = self._file.read(caplen)
            if len(data) < caplen:
                if self._tolerant:
                    tel.count("capture.truncated")
                    return
                raise ValueError("truncated pcap packet data")
            self.next_offset += 16 + caplen
            tel.count("capture.frames")
            tel.count("capture.bytes", caplen)
            yield CapturedPacket(seconds + frac * self._tick, data)

    def read_batches(
        self, max_frames: int = DEFAULT_FRAMES_PER_BATCH
    ) -> Iterator[FrameBatch]:
        """Yield :class:`~repro.net.batch.FrameBatch`es with zero per-frame
        object allocation.

        The file is read in large chunks; record headers are scanned in
        place with a precompiled :class:`struct.Struct` and each batch's
        offset/caplen/timestamp columns point *into the chunk itself* — no
        per-frame ``bytes`` copy, no :class:`CapturedPacket`.  Telemetry
        (``capture.frames`` / ``capture.bytes`` / ``capture.truncated``),
        :attr:`next_offset` resume semantics (advanced per batch, always to
        a record boundary), and tolerant-mode behaviour match the scalar
        iterator exactly — equivalence is locked in by
        ``tests/test_net_batch.py``.
        """
        unpack_from = struct.Struct(self._endian + "IIII").unpack_from
        tel = self._telemetry
        tick = self._tick
        file = self._file
        chunk_size = max(_BATCH_CHUNK_BYTES, 16)
        pending = b""
        while True:
            chunk = file.read(chunk_size)
            if not chunk:
                if pending:
                    if self._tolerant:
                        tel.count("capture.truncated")
                        return
                    if len(pending) < 16:
                        raise ValueError("truncated pcap record header")
                    raise ValueError("truncated pcap packet data")
                return
            if pending:
                chunk = pending + chunk
                pending = b""
            limit = len(chunk)
            pos = 0
            while True:
                offsets = array("Q")
                caplens = array("I")
                timestamps = array("d")
                put_offset = offsets.append
                put_caplen = caplens.append
                put_timestamp = timestamps.append
                batch_start = pos
                total = 0
                while limit - pos >= 16 and len(offsets) < max_frames:
                    seconds, frac, caplen, _origlen = unpack_from(chunk, pos)
                    end = pos + 16 + caplen
                    if end > limit:
                        break
                    put_offset(pos + 16)
                    put_caplen(caplen)
                    put_timestamp(seconds + frac * tick)
                    total += caplen
                    pos = end
                if not offsets:
                    break
                self.next_offset += pos - batch_start
                tel.count("capture.frames", len(offsets))
                tel.count("capture.bytes", total)
                yield FrameBatch(
                    buffer=chunk,
                    offsets=offsets,
                    caplens=caplens,
                    timestamps=timestamps,
                    total_caplen=total,
                )
            # Whatever is left is an incomplete record (or record header)
            # straddling the chunk boundary; carry it into the next read.
            pending = chunk[pos:]

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcap(
    path: str | Path, packets: Iterable[CapturedPacket], *, nanosecond: bool = True
) -> int:
    """Write all ``packets`` to ``path``; returns the count written."""
    with PcapWriter(path, nanosecond=nanosecond) as writer:
        return writer.write_all(packets)


def read_pcap(
    path: str | Path,
    *,
    telemetry: Telemetry | None = None,
    tolerant: bool = False,
) -> list[CapturedPacket]:
    """Deprecated: read every packet in the file at ``path`` into a list.

    Kept as a thin compatibility wrapper; it materializes the whole capture.
    Stream with :class:`PcapReader` or, for the analyzers,
    :class:`repro.net.source.PcapFileSource`.
    """
    import warnings

    warnings.warn(
        "read_pcap() materializes the whole capture; iterate PcapReader or "
        "use repro.net.source.PcapFileSource for streaming ingestion",
        DeprecationWarning,
        stacklevel=2,
    )
    with PcapReader(path, telemetry=telemetry, tolerant=tolerant) as reader:
        return list(reader)
