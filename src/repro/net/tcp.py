"""TCP header parsing and serialization, including options."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field


class TCPFlags(enum.IntFlag):
    """TCP control flags."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


@dataclass(frozen=True, slots=True)
class TCPOption:
    """A raw TCP option.

    ``kind`` 0 (end of list) and 1 (NOP) carry no length or data; all other
    kinds are encoded as kind/length/data per RFC 793.
    """

    kind: int
    data: bytes = b""

    END_OF_OPTIONS = 0
    NOP = 1
    MSS = 2
    WINDOW_SCALE = 3
    SACK_PERMITTED = 4
    TIMESTAMPS = 8

    def serialize(self) -> bytes:
        if self.kind in (self.END_OF_OPTIONS, self.NOP):
            return bytes([self.kind])
        return bytes([self.kind, len(self.data) + 2]) + self.data


@dataclass(frozen=True, slots=True)
class TCPHeader:
    """A TCP header.

    Attributes:
        src_port: Source port.
        dst_port: Destination port.
        seq: Sequence number.
        ack: Acknowledgment number.
        flags: Control flags (``TCPFlags``).
        window: Receive window.
        options: Parsed options, excluding padding NOPs on serialize input.
        checksum: Checksum as seen on the wire (0 when locally built).
        urgent: Urgent pointer.
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int = 0
    flags: int = TCPFlags.ACK
    window: int = 65535
    options: tuple[TCPOption, ...] = field(default=())
    checksum: int = 0
    urgent: int = 0

    BASE_HEADER_LEN = 20

    def __post_init__(self) -> None:
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("TCP port out of range")
        if not 0 <= self.seq <= 0xFFFFFFFF or not 0 <= self.ack <= 0xFFFFFFFF:
            raise ValueError("TCP sequence/ack out of range")

    @property
    def header_len(self) -> int:
        """On-wire header length including options and padding."""
        options_len = sum(len(opt.serialize()) for opt in self.options)
        return self.BASE_HEADER_LEN + (options_len + 3) // 4 * 4

    def serialize(self) -> bytes:
        """Encode to wire format (stored checksum used verbatim)."""
        options_bytes = b"".join(opt.serialize() for opt in self.options)
        padding = (-len(options_bytes)) % 4
        options_bytes += b"\x01" * padding  # pad with NOPs
        data_offset = (self.BASE_HEADER_LEN + len(options_bytes)) // 4
        return (
            struct.pack(
                "!HHIIBBHHH",
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                data_offset << 4,
                int(self.flags),
                self.window,
                self.checksum,
                self.urgent,
            )
            + options_bytes
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["TCPHeader", int]:
        """Decode from wire format; returns the header and payload offset.

        Padding NOPs and the end-of-options marker are dropped from the
        parsed options list.
        """
        if len(data) < cls.BASE_HEADER_LEN:
            raise ValueError(f"segment too short for TCP: {len(data)} bytes")
        (src_port, dst_port, seq, ack, offset_byte, flags, window, checksum, urgent) = (
            struct.unpack_from("!HHIIBBHHH", data, 0)
        )
        header_len = (offset_byte >> 4) * 4
        if header_len < cls.BASE_HEADER_LEN or len(data) < header_len:
            raise ValueError(f"invalid TCP data offset: {header_len}")
        options: list[TCPOption] = []
        pos = cls.BASE_HEADER_LEN
        while pos < header_len:
            kind = data[pos]
            if kind == TCPOption.END_OF_OPTIONS:
                break
            if kind == TCPOption.NOP:
                pos += 1
                continue
            if pos + 1 >= header_len:
                raise ValueError("truncated TCP option")
            opt_len = data[pos + 1]
            if opt_len < 2 or pos + opt_len > header_len:
                raise ValueError(f"invalid TCP option length {opt_len}")
            options.append(TCPOption(kind, bytes(data[pos + 2 : pos + opt_len])))
            pos += opt_len
        return (
            cls(
                src_port=src_port,
                dst_port=dst_port,
                seq=seq,
                ack=ack,
                flags=flags,
                window=window,
                options=tuple(options),
                checksum=checksum,
                urgent=urgent,
            ),
            header_len,
        )
