"""Full-stack frame decoding and the packet records used across the library."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.ethernet import EtherType, EthernetHeader
from repro.net.ip import IPProtocol, IPv4Header, IPv6Header
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader

FiveTuple = tuple[str, int, str, int, int]
"""(src_ip, src_port, dst_ip, dst_port, protocol) — the flow key used everywhere."""


@dataclass(frozen=True, slots=True)
class CapturedPacket:
    """A raw captured frame with its capture timestamp.

    Attributes:
        timestamp: Capture time in seconds (float, monitor clock).
        data: The raw Ethernet frame bytes.
    """

    timestamp: float
    data: bytes


@dataclass(frozen=True, slots=True)
class ParsedPacket:
    """A decoded frame: L2 through L4 headers plus the transport payload.

    Any of the header attributes may be ``None`` when the corresponding layer
    is absent or not understood (e.g. an ARP frame has no ``ipv4``).

    Attributes:
        timestamp: Capture time in seconds.
        ethernet: Decoded Ethernet header.
        ipv4 / ipv6: Decoded IP header (at most one is set).
        udp / tcp: Decoded transport header (at most one is set).
        payload: Transport payload bytes (b"" when no transport layer).
        raw: The original frame bytes.
    """

    timestamp: float
    ethernet: Optional[EthernetHeader]
    ipv4: Optional[IPv4Header]
    ipv6: Optional[IPv6Header]
    udp: Optional[UDPHeader]
    tcp: Optional[TCPHeader]
    payload: bytes
    raw: bytes

    @property
    def src_ip(self) -> str | None:
        if self.ipv4 is not None:
            return self.ipv4.src_str
        if self.ipv6 is not None:
            return self.ipv6.src_str
        return None

    @property
    def dst_ip(self) -> str | None:
        if self.ipv4 is not None:
            return self.ipv4.dst_str
        if self.ipv6 is not None:
            return self.ipv6.dst_str
        return None

    @property
    def src_port(self) -> int | None:
        transport = self.udp or self.tcp
        return transport.src_port if transport is not None else None

    @property
    def dst_port(self) -> int | None:
        transport = self.udp or self.tcp
        return transport.dst_port if transport is not None else None

    @property
    def protocol(self) -> int | None:
        if self.udp is not None:
            return IPProtocol.UDP
        if self.tcp is not None:
            return IPProtocol.TCP
        if self.ipv4 is not None:
            return self.ipv4.protocol
        if self.ipv6 is not None:
            return self.ipv6.next_header
        return None

    @property
    def five_tuple(self) -> FiveTuple | None:
        """The (src_ip, src_port, dst_ip, dst_port, proto) key, or ``None``."""
        if self.src_ip is None or self.src_port is None:
            return None
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol)

    @property
    def is_udp(self) -> bool:
        return self.udp is not None

    @property
    def is_tcp(self) -> bool:
        return self.tcp is not None


def parse_frame(data: bytes, timestamp: float = 0.0) -> ParsedPacket:
    """Decode an Ethernet frame down to the transport payload.

    Unknown or malformed upper layers degrade gracefully: the frame is still
    returned with the layers that did decode and the remaining bytes exposed
    as ``payload``.
    """
    ethernet = None
    ipv4 = None
    ipv6 = None
    udp = None
    tcp = None
    payload = b""
    try:
        ethernet, offset = EthernetHeader.parse(data)
    except ValueError:
        return ParsedPacket(timestamp, None, None, None, None, None, b"", data)

    remaining = data[offset:]
    try:
        if ethernet.ethertype == EtherType.IPV4:
            ipv4, ip_len = IPv4Header.parse(remaining)
            # Trust the IP total length over the frame length (Ethernet pads
            # short frames to 60 bytes).
            body = remaining[ip_len : ipv4.total_length]
            udp, tcp, payload = _parse_transport(ipv4.protocol, body)
        elif ethernet.ethertype == EtherType.IPV6:
            ipv6, ip_len = IPv6Header.parse(remaining)
            body = remaining[ip_len : ip_len + ipv6.payload_length]
            udp, tcp, payload = _parse_transport(ipv6.next_header, body)
        else:
            payload = remaining
    except ValueError:
        # Leave whatever decoded so far; expose the rest as opaque payload.
        payload = remaining

    return ParsedPacket(timestamp, ethernet, ipv4, ipv6, udp, tcp, payload, data)


def _parse_transport(
    protocol: int, body: bytes
) -> tuple[UDPHeader | None, TCPHeader | None, bytes]:
    """Decode the transport layer of an IP payload."""
    if protocol == IPProtocol.UDP:
        udp, off = UDPHeader.parse(body)
        return udp, None, body[off : udp.length]
    if protocol == IPProtocol.TCP:
        tcp, off = TCPHeader.parse(body)
        return None, tcp, body[off:]
    return None, None, body


def build_udp_frame(
    src_ip: str,
    src_port: int,
    dst_ip: str,
    dst_port: int,
    payload: bytes,
    *,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
    ttl: int = 64,
    identification: int = 0,
    dscp: int = 0,
) -> bytes:
    """Build a complete Ethernet/IPv4/UDP frame around ``payload``.

    The UDP checksum is computed over the IPv4 pseudo-header so the frame
    survives strict re-parsing.
    """
    from repro.net.ip import ip_from_str

    src = ip_from_str(src_ip)
    dst = ip_from_str(dst_ip)
    udp_len = UDPHeader.HEADER_LEN + len(payload)
    udp = UDPHeader(src_port, dst_port, udp_len)
    udp_bytes = udp.serialize_with_checksum(payload, src, dst)
    ip = IPv4Header(
        src=src,
        dst=dst,
        protocol=IPProtocol.UDP,
        total_length=IPv4Header.HEADER_LEN + udp_len,
        ttl=ttl,
        identification=identification,
        dscp=dscp,
    )
    ether = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=EtherType.IPV4)
    return ether.serialize() + ip.serialize() + udp_bytes + payload


def build_tcp_frame(
    src_ip: str,
    src_port: int,
    dst_ip: str,
    dst_port: int,
    *,
    seq: int,
    ack: int = 0,
    flags: int = 0x10,
    payload: bytes = b"",
    window: int = 65535,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """Build a complete Ethernet/IPv4/TCP frame."""
    from repro.net.checksum import internet_checksum, pseudo_header_v4
    from repro.net.ip import ip_from_str

    src = ip_from_str(src_ip)
    dst = ip_from_str(dst_ip)
    tcp = TCPHeader(src_port, dst_port, seq=seq, ack=ack, flags=flags, window=window)
    tcp_bytes = tcp.serialize()
    seg_len = len(tcp_bytes) + len(payload)
    pseudo = pseudo_header_v4(src, dst, IPProtocol.TCP, seg_len)
    checksum = internet_checksum(pseudo + tcp_bytes + payload)
    tcp_bytes = tcp_bytes[:16] + checksum.to_bytes(2, "big") + tcp_bytes[18:]
    ip = IPv4Header(
        src=src,
        dst=dst,
        protocol=IPProtocol.TCP,
        total_length=IPv4Header.HEADER_LEN + seg_len,
        ttl=ttl,
        identification=identification,
    )
    ether = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=EtherType.IPV4)
    return ether.serialize() + ip.serialize() + tcp_bytes + payload
