"""Ethernet II framing with optional 802.1Q VLAN tags."""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field


class EtherType(enum.IntEnum):
    """EtherType values this library understands."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD


def mac_to_str(mac: bytes) -> str:
    """Render a 6-byte MAC address as ``aa:bb:cc:dd:ee:ff``."""
    if len(mac) != 6:
        raise ValueError(f"MAC address must be 6 bytes, got {len(mac)}")
    return ":".join(f"{b:02x}" for b in mac)


def mac_from_str(text: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff`` into 6 packed bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address {text!r}")
    return bytes(int(p, 16) for p in parts)


@dataclass(frozen=True, slots=True)
class EthernetHeader:
    """An Ethernet II header, optionally carrying one 802.1Q VLAN tag.

    Attributes:
        dst: Destination MAC, 6 packed bytes.
        src: Source MAC, 6 packed bytes.
        ethertype: Payload EtherType (after any VLAN tag).
        vlan: 802.1Q VLAN ID (0-4095) or ``None`` when untagged.
        vlan_pcp: 802.1Q priority code point; only meaningful when tagged.
    """

    dst: bytes = field(default=b"\x00" * 6)
    src: bytes = field(default=b"\x00" * 6)
    ethertype: int = EtherType.IPV4
    vlan: int | None = None
    vlan_pcp: int = 0

    HEADER_LEN = 14
    VLAN_TAG_LEN = 4

    def __post_init__(self) -> None:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise ValueError("MAC addresses must be 6 bytes")
        if self.vlan is not None and not 0 <= self.vlan <= 0xFFF:
            raise ValueError(f"VLAN ID out of range: {self.vlan}")
        if not 0 <= self.vlan_pcp <= 7:
            raise ValueError(f"VLAN PCP out of range: {self.vlan_pcp}")

    @property
    def header_len(self) -> int:
        """Total on-wire length of this header in bytes."""
        return self.HEADER_LEN + (self.VLAN_TAG_LEN if self.vlan is not None else 0)

    def serialize(self) -> bytes:
        """Encode to wire format."""
        if self.vlan is None:
            return self.dst + self.src + struct.pack("!H", self.ethertype)
        tci = (self.vlan_pcp << 13) | self.vlan
        return (
            self.dst
            + self.src
            + struct.pack("!HHH", EtherType.VLAN, tci, self.ethertype)
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["EthernetHeader", int]:
        """Decode from wire format.

        Returns the header and the offset where the L3 payload begins.
        """
        if len(data) < cls.HEADER_LEN:
            raise ValueError(f"frame too short for Ethernet: {len(data)} bytes")
        dst, src = data[0:6], data[6:12]
        (ethertype,) = struct.unpack_from("!H", data, 12)
        offset = cls.HEADER_LEN
        vlan: int | None = None
        vlan_pcp = 0
        if ethertype == EtherType.VLAN:
            if len(data) < cls.HEADER_LEN + cls.VLAN_TAG_LEN:
                raise ValueError("frame too short for 802.1Q tag")
            tci, ethertype = struct.unpack_from("!HH", data, 12 + 2)
            vlan = tci & 0xFFF
            vlan_pcp = tci >> 13
            offset += cls.VLAN_TAG_LEN
        return cls(dst=dst, src=src, ethertype=ethertype, vlan=vlan, vlan_pcp=vlan_pcp), offset
