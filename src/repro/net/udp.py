"""UDP header parsing and serialization."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum, pseudo_header_v4, pseudo_header_v6


@dataclass(frozen=True, slots=True)
class UDPHeader:
    """A UDP header.

    Attributes:
        src_port: Source port.
        dst_port: Destination port.
        length: Header plus payload length in bytes.
        checksum: Checksum field as seen on the wire (0 = not computed).
    """

    src_port: int
    dst_port: int
    length: int
    checksum: int = 0

    HEADER_LEN = 8

    def __post_init__(self) -> None:
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("UDP port out of range")
        if not self.HEADER_LEN <= self.length <= 0xFFFF:
            raise ValueError(f"UDP length out of range: {self.length}")

    @property
    def payload_length(self) -> int:
        """Length of the payload following this header."""
        return self.length - self.HEADER_LEN

    def serialize(self) -> bytes:
        """Encode to wire format (using the stored checksum verbatim)."""
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)

    def serialize_with_checksum(self, payload: bytes, src_ip: bytes, dst_ip: bytes) -> bytes:
        """Encode with a freshly computed checksum over the pseudo-header.

        ``src_ip``/``dst_ip`` are packed addresses; 4 bytes selects the IPv4
        pseudo-header, 16 bytes the IPv6 one.
        """
        header = struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)
        if len(src_ip) == 4:
            pseudo = pseudo_header_v4(src_ip, dst_ip, 17, self.length)
        else:
            pseudo = pseudo_header_v6(src_ip, dst_ip, 17, self.length)
        checksum = internet_checksum(pseudo + header + payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted all-ones when computed zero
        return header[:6] + struct.pack("!H", checksum)

    @classmethod
    def parse(cls, data: bytes) -> tuple["UDPHeader", int]:
        """Decode from wire format; returns the header and payload offset."""
        if len(data) < cls.HEADER_LEN:
            raise ValueError(f"segment too short for UDP: {len(data)} bytes")
        src_port, dst_port, length, checksum = struct.unpack_from("!HHHH", data, 0)
        if length < cls.HEADER_LEN:
            raise ValueError(f"UDP length field too small: {length}")
        return cls(src_port, dst_port, length, checksum), cls.HEADER_LEN
