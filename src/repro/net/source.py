"""The unified packet-ingestion layer: :class:`PacketSource` and friends.

The analyzers used to be file-shaped — every driver took a fully
materialized ``list[CapturedPacket]``, the simulator had to serialize to
pcap bytes before its output could be analyzed, and adding a new input kind
meant touching every driver.  A :class:`PacketSource` is the one contract
they all consume now: an iterator of :class:`~repro.net.packet.ParsedPacket`
*batches* plus ingest metadata (link type, packet/byte counters, telemetry
hookup).  Concrete sources:

* :class:`PcapFileSource` / :class:`PcapNgFileSource` — true streaming
  readers over one capture file (never hold the capture in memory).
* :class:`CaptureDirectorySource` — many files / globs / directories,
  ordered by each file's first capture timestamp.
* :class:`SimulationSource` — :mod:`repro.simulation` scenarios fed straight
  into the analyzer with no pcap round trip.
* :class:`InterleavedSource` — k-way timestamp merge composing any sources.
* :class:`IterableSource` — adapts an in-memory packet sequence.

:func:`open_capture_source` dispatches a file to the right reader by
sniffing magic bytes (never by filename), and the legacy list-returning
:func:`read_capture` lives on here as a deprecated compatibility wrapper.
A future live-socket source is one subclass away — nothing downstream of
this module knows about files.
"""

from __future__ import annotations

import heapq
import struct
import warnings
from dataclasses import dataclass
from glob import glob as _glob
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.net.batch import (
    DEFAULT_FRAMES_PER_BATCH,
    FrameBatch,
    prepared_frame_batch,
)
from repro.net.packet import CapturedPacket, ParsedPacket, parse_frame
from repro.net.pcap import LINKTYPE_ETHERNET, MAGIC_MICROS, MAGIC_NANOS, PcapReader
from repro.net.pcapng import BLOCK_SHB, PcapngReader, PcapngResumeState
from repro.telemetry.registry import Telemetry

#: Default number of parsed packets per yielded batch.  Large enough to
#: amortize generator overhead on the hot path, small enough that a source
#: never holds more than a few hundred frames of a multi-gigabyte capture.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True, slots=True)
class CaptureResume:
    """Position token for re-opening a growing capture file.

    Produced by a file source's ``resume_state()`` and accepted back via
    ``resume=``: the next open seeks past everything already delivered, so a
    tailing reader polling a file a capture daemon is still writing never
    re-counts a packet.  The formats need different state — classic pcap
    resumes on a byte offset alone, pcapng also has to restore the enclosing
    section's byte order and interface table.
    """

    format: str  # "pcap" | "pcapng"
    offset: int  # byte offset of the first unread record/block
    packets: int  # packets delivered from this file so far (cumulative)
    endian: str = "<"
    interfaces: tuple[tuple[int, float], ...] = ()


@runtime_checkable
class PacketSource(Protocol):
    """What every ingestion backend provides to the analyzers.

    A source is a *single-use* iterator of :class:`ParsedPacket` batches —
    time-ordered within the source — plus the metadata the drivers and
    telemetry need: the link type, running packet/byte counters, and an
    optional :class:`~repro.telemetry.Telemetry` registry the source
    records ``capture.*`` / ``ingest.*`` counters into.
    """

    linktype: int
    packets_emitted: int
    bytes_emitted: int

    def batches(self) -> Iterator[Sequence[ParsedPacket]]:
        """Yield time-ordered batches of parsed packets."""
        ...

    def __iter__(self) -> Iterator[ParsedPacket]:
        """Yield individual parsed packets (a flattened :meth:`batches`)."""
        ...

    def close(self) -> None:
        """Release underlying files or generators."""
        ...


class PacketSourceBase:
    """Shared machinery: batching, counters, context management.

    Subclasses implement :meth:`_packets`, an iterator of parsed packets;
    the base class handles batching and the emitted-packet accounting the
    :class:`PacketSource` protocol promises.
    """

    linktype: int = LINKTYPE_ETHERNET

    def __init__(
        self,
        *,
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self._batch_size = batch_size
        self.packets_emitted = 0
        self.bytes_emitted = 0

    def _packets(self) -> Iterator[ParsedPacket]:
        raise NotImplementedError

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Adopt ``telemetry`` unless a live registry was already supplied.

        Lets :class:`~repro.core.session.AnalysisSession` thread its run
        registry into a source the caller constructed bare; a source built
        with an explicit enabled registry keeps it.
        """
        if self._telemetry.enabled:
            return
        self._telemetry = telemetry
        self._propagate_telemetry(telemetry)

    def _propagate_telemetry(self, telemetry: Telemetry) -> None:
        """Hand the adopted registry to wrapped readers/children."""

    def _frames_per_batch(self) -> int:
        """Frame count for raw :class:`FrameBatch` reads.

        An explicitly tuned ``batch_size`` (resume granularity for the
        tailer, memory ceilings) is honored on the batch path too; the
        untouched default upgrades to the larger
        :data:`~repro.net.batch.DEFAULT_FRAMES_PER_BATCH`, since batch
        reads amortize so much better.
        """
        if self._batch_size != DEFAULT_BATCH_SIZE:
            return self._batch_size
        return DEFAULT_FRAMES_PER_BATCH

    def batches(self) -> Iterator[list[ParsedPacket]]:
        batch: list[ParsedPacket] = []
        for parsed in self._packets():
            self.packets_emitted += 1
            self.bytes_emitted += len(parsed.raw)
            batch.append(parsed)
            if len(batch) >= self._batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def frame_batches(self) -> Iterator[FrameBatch]:
        """Yield :class:`~repro.net.batch.FrameBatch` groups.

        The default shim packs scalar reads, carrying the parsed packets in
        ``FrameBatch.prepared`` so batch consumers feed *exactly* the
        objects the scalar path would have produced — hand-built packets
        (simulation adapters, in-memory lists) that would not round-trip
        through a wire-format re-parse stay byte-identical.  File sources
        override this with true raw-buffer batches that enable the columnar
        decode fast path.
        """
        for batch in self.batches():
            yield prepared_frame_batch(batch)

    def __iter__(self) -> Iterator[ParsedPacket]:
        for batch in self.batches():
            yield from batch

    def close(self) -> None:  # overridden where a file is held
        pass

    def __enter__(self) -> "PacketSourceBase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PcapFileSource(PacketSourceBase):
    """Streaming source over one classic-pcap file.

    Packets are decoded record by record off the open file — the capture is
    never materialized as a list, so memory stays bounded by one batch
    regardless of file size.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        telemetry: Telemetry | None = None,
        tolerant: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        resume: CaptureResume | None = None,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        if resume is not None and resume.format != "pcap":
            raise ValueError(f"cannot resume a {resume.format} position in a pcap file")
        self._reader = PcapReader(
            path,
            telemetry=self._telemetry,
            tolerant=tolerant,
            start_offset=resume.offset if resume is not None else 0,
        )
        self._resumed_packets = resume.packets if resume is not None else 0
        self.header = self._reader.header
        self.linktype = self.header.linktype

    def resume_state(self) -> CaptureResume:
        """Token to continue this file from where reading stopped."""
        return CaptureResume(
            format="pcap",
            offset=self._reader.next_offset,
            packets=self._resumed_packets + self.packets_emitted,
        )

    def _packets(self) -> Iterator[ParsedPacket]:
        for captured in self._reader:
            yield parse_frame(captured.data, captured.timestamp)

    def frame_batches(self) -> Iterator[FrameBatch]:
        """Raw-buffer batches straight off the reader — the fast path."""
        for batch in self._reader.read_batches(self._frames_per_batch()):
            self.packets_emitted += len(batch)
            self.bytes_emitted += batch.total_caplen
            yield batch

    def _propagate_telemetry(self, telemetry: Telemetry) -> None:
        self._reader._telemetry = telemetry

    def close(self) -> None:
        self._reader.close()


class PcapNgFileSource(PacketSourceBase):
    """Streaming source over one pcapng file (either endianness)."""

    def __init__(
        self,
        path: str | Path,
        *,
        telemetry: Telemetry | None = None,
        tolerant: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        resume: CaptureResume | None = None,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        if resume is not None and resume.format != "pcapng":
            raise ValueError(
                f"cannot resume a {resume.format} position in a pcapng file"
            )
        self._reader = PcapngReader(
            path,
            telemetry=self._telemetry,
            tolerant=tolerant,
            resume=(
                PcapngResumeState(resume.offset, resume.endian, resume.interfaces)
                if resume is not None
                else None
            ),
        )
        self._resumed_packets = resume.packets if resume is not None else 0

    def resume_state(self) -> CaptureResume:
        """Token to continue this file from where reading stopped."""
        state = self._reader.resume_state()
        return CaptureResume(
            format="pcapng",
            offset=state.offset,
            packets=self._resumed_packets + self.packets_emitted,
            endian=state.endian,
            interfaces=state.interfaces,
        )

    def _packets(self) -> Iterator[ParsedPacket]:
        for captured in self._reader:
            yield parse_frame(captured.data, captured.timestamp)

    def frame_batches(self) -> Iterator[FrameBatch]:
        """Raw-buffer batches straight off the reader — the fast path."""
        for batch in self._reader.read_batches(self._frames_per_batch()):
            self.packets_emitted += len(batch)
            self.bytes_emitted += batch.total_caplen
            yield batch

    def _propagate_telemetry(self, telemetry: Telemetry) -> None:
        self._reader._telemetry = telemetry

    def close(self) -> None:
        self._reader.close()


class IterableSource(PacketSourceBase):
    """Adapt an in-memory sequence of packets to the source protocol.

    Accepts :class:`CapturedPacket` or already-parsed :class:`ParsedPacket`
    items (mixed is fine); raw frames are decoded on the way through.
    """

    def __init__(
        self,
        packets: Iterable[CapturedPacket | ParsedPacket],
        *,
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        self._items = packets

    def _packets(self) -> Iterator[ParsedPacket]:
        for item in self._items:
            if isinstance(item, ParsedPacket):
                yield item
            else:
                yield parse_frame(item.data, item.timestamp)


class SimulationSource(PacketSourceBase):
    """Emit a :mod:`repro.simulation` scenario straight into the analyzer.

    Args:
        scenario: A ``MeetingConfig`` (simulated on demand), a
            ``CampusTraceConfig``, a ``SimulationResult`` / campus trace, or
            any iterable of :class:`CapturedPacket`.
        timestamp_resolution: Quantize capture times exactly as the
            nanosecond pcap writer would (default), so direct analysis is
            bit-identical to a write-pcap-then-read run; ``None`` keeps the
            simulator's exact timestamps.
        telemetry: Optional registry; ``capture.frames``/``capture.bytes``
            are recorded just as the file readers record them.
    """

    def __init__(
        self,
        scenario: object,
        *,
        timestamp_resolution: float | None = 1e-9,
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        self._scenario = scenario
        self._resolution = timestamp_resolution

    def _packets(self) -> Iterator[ParsedPacket]:
        # Imported lazily: repro.simulation sits above repro.net in the
        # layering and importing it here at module scope would be circular.
        from repro.simulation.adapter import parsed_packets

        yield from parsed_packets(
            self._scenario,
            timestamp_resolution=self._resolution,
            telemetry=self._telemetry,
        )


class CaptureDirectorySource(PacketSourceBase):
    """Sequence many capture files as one source.

    Accepts any mix of concrete paths, glob patterns, and directories (a
    directory contributes every file matching ``pattern``).  Files are
    ordered by their *first capture timestamp* — not by name — so captures
    rotated by a monitor (``zoom-00.pcap``, ``zoom-01.pcap``, …) or handed
    over out of order replay in wall-clock order.  Each opened file counts
    one ``ingest.files``; per-file frame/byte counters land under
    ``capture.*`` via the underlying reader.
    """

    def __init__(
        self,
        paths: str | Path | Iterable[str | Path],
        *,
        pattern: str = "*.pcap*",
        telemetry: Telemetry | None = None,
        tolerant: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        self._tolerant = tolerant
        if isinstance(paths, (str, Path)):
            paths = [paths]
        expanded: list[Path] = []
        for entry in paths:
            entry_path = Path(entry)
            if entry_path.is_dir():
                expanded.extend(sorted(entry_path.glob(pattern)))
            elif _has_magic(str(entry)):
                matches = sorted(Path(match) for match in _glob(str(entry)))
                if not matches:
                    raise FileNotFoundError(f"glob {entry!r} matched no files")
                expanded.extend(matches)
            else:
                expanded.append(entry_path)
        if not expanded:
            raise FileNotFoundError(f"no capture files under {paths!r}")
        # Tie-break equal first timestamps by file name so replay order is
        # deterministic regardless of directory-listing or glob order —
        # rotated capture files routinely share a boundary timestamp.
        self.files: tuple[Path, ...] = tuple(
            sorted(
                expanded,
                key=lambda p: (_first_capture_timestamp(p), p.name, str(p)),
            )
        )
        self._open: PacketSourceBase | None = None

    def _packets(self) -> Iterator[ParsedPacket]:
        for path in self.files:
            self._open = open_capture_source(
                path,
                telemetry=self._telemetry,
                tolerant=self._tolerant,
                batch_size=self._batch_size,
            )
            self._telemetry.count("ingest.files")
            try:
                yield from self._open
            finally:
                self._open.close()
                self._open = None

    def frame_batches(self) -> Iterator[FrameBatch]:
        """Raw-buffer batches, file by file in first-timestamp order."""
        for path in self.files:
            self._open = open_capture_source(
                path,
                telemetry=self._telemetry,
                tolerant=self._tolerant,
                batch_size=self._batch_size,
            )
            self._telemetry.count("ingest.files")
            try:
                for batch in self._open.frame_batches():
                    self.packets_emitted += len(batch)
                    self.bytes_emitted += batch.total_caplen
                    yield batch
            finally:
                self._open.close()
                self._open = None

    def close(self) -> None:
        if self._open is not None:
            self._open.close()
            self._open = None


class InterleavedSource(PacketSourceBase):
    """Compose sources by k-way merging on capture timestamp.

    Each input must itself be time-ordered (every source here is); the
    merge is a heap over one head packet per input, so composing k live
    taps costs O(log k) per packet and holds k packets of state.
    """

    def __init__(
        self,
        *sources: PacketSource,
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(telemetry=telemetry, batch_size=batch_size)
        if not sources:
            raise ValueError("InterleavedSource needs at least one source")
        self.sources: tuple[PacketSource, ...] = sources
        self._telemetry.count("ingest.sources", len(sources))

    def _packets(self) -> Iterator[ParsedPacket]:
        yield from heapq.merge(*self.sources, key=lambda p: p.timestamp)

    def _propagate_telemetry(self, telemetry: Telemetry) -> None:
        for source in self.sources:
            if hasattr(source, "attach_telemetry"):
                source.attach_telemetry(telemetry)

    def close(self) -> None:
        for source in self.sources:
            source.close()


# --------------------------------------------------------------- dispatch


def sniff_capture_format(path: str | Path) -> str:
    """``"pcap"`` or ``"pcapng"``, decided by magic bytes alone.

    File extensions lie — a rotated capture named ``trace.pcap`` is often
    pcapng underneath — so dispatch never consults the name.  The pcapng
    Section Header Block type (``0x0A0D0D0A``) is a palindrome, making the
    check endianness-proof; pcap is recognized by either byte order of both
    its microsecond and nanosecond magics.
    """
    with open(path, "rb") as handle:
        magic_bytes = handle.read(4)
    if len(magic_bytes) < 4:
        raise ValueError(f"{path}: too short to be a capture file")
    (little,) = struct.unpack("<I", magic_bytes)
    (big,) = struct.unpack(">I", magic_bytes)
    if little == BLOCK_SHB:
        return "pcapng"
    if little in (MAGIC_MICROS, MAGIC_NANOS) or big in (MAGIC_MICROS, MAGIC_NANOS):
        return "pcap"
    raise ValueError(f"{path}: not a pcap or pcapng capture (magic {magic_bytes!r})")


def open_capture_source(
    path: str | Path,
    *,
    telemetry: Telemetry | None = None,
    tolerant: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    resume: CaptureResume | None = None,
) -> PcapFileSource | PcapNgFileSource:
    """Open one capture file with the reader its magic bytes call for.

    With ``resume=`` the sniffed format must match the token's — a mismatch
    means the file was replaced under the same name, and silently seeking
    into the new file would yield garbage.
    """
    detected = sniff_capture_format(path)
    if resume is not None and resume.format != detected:
        raise ValueError(
            f"{path}: resume token is for {resume.format} but file is {detected}"
        )
    source_cls = PcapNgFileSource if detected == "pcapng" else PcapFileSource
    return source_cls(
        path,
        telemetry=telemetry,
        tolerant=tolerant,
        batch_size=batch_size,
        resume=resume,
    )


def read_capture(
    path: str | Path,
    *,
    telemetry: Telemetry | None = None,
    tolerant: bool = False,
) -> list[CapturedPacket]:
    """Deprecated: read a whole capture (either format) into a list.

    Kept for compatibility (historically exported from
    :mod:`repro.net.pcapng`); it materializes the entire file.  Stream with
    :func:`open_capture_source` instead.
    """
    warnings.warn(
        "read_capture() materializes the whole capture; "
        "use repro.net.source.open_capture_source() for streaming ingestion",
        DeprecationWarning,
        stacklevel=2,
    )
    with open_capture_source(path, telemetry=telemetry, tolerant=tolerant) as source:
        return [
            CapturedPacket(parsed.timestamp, parsed.raw)
            for batch in source.batches()
            for parsed in batch
        ]


# --------------------------------------------------------------- internals


def _has_magic(text: str) -> bool:
    return any(char in text for char in "*?[")


def _first_capture_timestamp(path: Path) -> float:
    """Peek one packet for file ordering; empty files sort last."""
    peek = open_capture_source(path)
    try:
        for parsed in peek:
            return parsed.timestamp
        return float("inf")
    finally:
        peek.close()


def coerce_source(
    source: "PacketSource | str | Path | Iterable[CapturedPacket | ParsedPacket]",
    *,
    telemetry: Telemetry | None = None,
    tolerant: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> PacketSource:
    """Normalize the ``source`` argument the drivers accept.

    A :class:`PacketSource` passes through untouched (its telemetry wiring
    is the caller's); a path opens the right file reader; any other
    iterable is wrapped as an :class:`IterableSource`.
    """
    if isinstance(source, (str, Path)):
        return open_capture_source(
            source, telemetry=telemetry, tolerant=tolerant, batch_size=batch_size
        )
    if hasattr(source, "batches"):  # already a PacketSource
        if telemetry is not None and hasattr(source, "attach_telemetry"):
            source.attach_telemetry(telemetry)
        return source
    if isinstance(source, Iterable):
        return IterableSource(source, telemetry=telemetry, batch_size=batch_size)
    raise TypeError(f"cannot build a PacketSource from {type(source).__name__}")
