"""Fleet health: scrape every node's surface into one operator view.

Each monitor node already exposes its vitals — the Prometheus ``/metrics``
page for daemon nodes, ``manifest.json`` for plain store directories — so
fleet health is a *read-only* layer: :func:`scrape_node` normalizes one
node's surface into a :class:`NodeHealth`, :func:`fleet_status` collects
the fleet and runs the anomaly rules over it, and
:func:`render_fleet_status` prints the ``repro fleet status`` table.

Anomaly rules (each yields a :class:`FleetAnomaly`):

* **node-unreachable** — the scrape failed (connection refused, timeout,
  missing/corrupt manifest).  The fleet keeps answering queries without
  the node; this is the signal an operator chases first.
* **node-stale** — the node's newest capture time trails the fleet's
  newest by more than ``FleetConfig.stale_after`` seconds.  Staleness is
  *capture-time-relative* (node vs. fleet max), not wall-clock-relative,
  so replayed traces and live captures grade on the same scale.
* **drop-rate-outlier** — the node's drop ratio (dropped / frames)
  exceeds ``FleetConfig.drop_outlier_ratio`` × the fleet median *and* a
  1% absolute floor (a fleet dropping nothing should not flag a node
  that dropped one packet).

This module stays importable from :mod:`repro.service.runner` (which
pre-seeds :data:`FLEET_COUNTER_SEEDS`), so it must not import anything
from :mod:`repro.service` or :mod:`repro.fleet.federation`.
"""

from __future__ import annotations

import json
import statistics
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import format_table
from repro.core.config import FleetConfig, FleetNodeConfig

__all__ = [
    "FLEET_COUNTER_SEEDS",
    "FleetAnomaly",
    "FleetStatus",
    "NodeHealth",
    "fleet_status",
    "parse_prometheus_text",
    "render_fleet_status",
    "scrape_node",
]

#: Counters every store-serving daemon pre-seeds at startup, so fleet
#: dashboards see an explicit zero (and can alert on rate) from the first
#: scrape rather than an absent series after the first federated query.
FLEET_COUNTER_SEEDS = (
    "fleet.store_queries",
    "fleet.store_query_records",
    "fleet.store_query_errors",
)

#: QoE states in severity order, as exported by ``repro_qoe_meetings_*``.
_QOE_STATES = ("good", "degraded", "impaired", "critical")


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse a text-exposition page into ``{name{labels}: value}``.

    Only what :mod:`repro.service.prometheus` emits is supported — ``#``
    comment lines and ``name{labels} value`` samples; that is all a fleet
    peer ever serves.  Unparseable sample lines are skipped (a truncated
    scrape should degrade to fewer metrics, not an error).
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value_text = line.rpartition(" ")
        if not name:
            continue
        try:
            samples[name] = float(value_text)
        except ValueError:
            continue
    return samples


@dataclass(slots=True)
class NodeHealth:
    """One node's vitals, normalized across scrape surfaces.

    ``None`` means "this surface does not report that" — a plain store
    directory has record counts but no drop counters, a daemon endpoint
    the reverse — and the renderer prints ``-`` for it.
    """

    name: str
    source: str  # "endpoint" | "store"
    reachable: bool
    error: str | None = None
    frames: int | None = None
    dropped: int | None = None
    restarts: int | None = None
    queue_depth: int | None = None
    windows: int | None = None
    qoe_states: dict[str, int] = field(default_factory=dict)
    newest: float | None = None
    store_records: int | None = None
    store_bytes: int | None = None

    @property
    def drop_ratio(self) -> float | None:
        if self.frames is None or self.dropped is None:
            return None
        return self.dropped / max(self.frames, 1)

    def qoe_mix(self) -> str:
        """``good:3 impaired:1`` — only the non-zero states, in severity
        order (``-`` when the node exports no QoE gauges)."""
        parts = [
            f"{state}:{self.qoe_states[state]}"
            for state in _QOE_STATES
            if self.qoe_states.get(state)
        ]
        return " ".join(parts) if parts else "-"


@dataclass(frozen=True, slots=True)
class FleetAnomaly:
    """One fired fleet-level rule."""

    rule: str
    node: str
    detail: str


@dataclass(slots=True)
class FleetStatus:
    """The fleet view ``repro fleet status`` renders."""

    nodes: list[NodeHealth]
    anomalies: list[FleetAnomaly]

    @property
    def reachable(self) -> int:
        return sum(1 for node in self.nodes if node.reachable)


def scrape_node(
    node: FleetNodeConfig, *, timeout: float = 5.0
) -> NodeHealth:
    """Read one node's health surface (never raises; failures are data)."""
    if node.query_source == "endpoint":
        return _scrape_endpoint(node, timeout)
    return _scrape_store(node)


def _scrape_endpoint(node: FleetNodeConfig, timeout: float) -> NodeHealth:
    health = NodeHealth(name=node.name, source="endpoint", reachable=False)
    url = node.endpoint.rstrip("/") + "/metrics"  # type: ignore[union-attr]
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            text = response.read().decode("utf-8", errors="replace")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        health.error = str(exc)
        return health
    samples = parse_prometheus_text(text)
    health.reachable = True
    health.frames = _as_int(samples.get("repro_capture_frames_total"))
    health.dropped = _as_int(samples.get("repro_service_dropped_total"))
    health.restarts = _as_int(samples.get("repro_service_ingest_restarts_total"))
    health.queue_depth = _as_int(samples.get("repro_service_queue_depth"))
    health.windows = _as_int(samples.get("repro_service_windows_total"))
    newest = samples.get("repro_window_start_seconds")
    health.newest = float(newest) if newest is not None else None
    for state in _QOE_STATES:
        value = samples.get(f"repro_qoe_meetings_{state}")
        if value is not None:
            health.qoe_states[state] = int(value)
    return health


def _scrape_store(node: FleetNodeConfig) -> NodeHealth:
    # Reads manifest.json directly rather than opening a MetricsStore:
    # open runs crash recovery (truncates torn tails, rewrites the
    # manifest), which must never happen to a store another process is
    # actively writing.  The manifest only indexes *sealed* segments, so
    # ``newest`` trails the active tail by at most one segment — fine for
    # staleness grading.
    health = NodeHealth(name=node.name, source="store", reachable=False)
    manifest_path = Path(node.store_dir) / "manifest.json"  # type: ignore[arg-type]
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        health.error = str(exc)
        return health
    segments = payload.get("segments", [])
    health.reachable = True
    health.store_records = sum(int(s.get("records", 0)) for s in segments)
    health.store_bytes = sum(int(s.get("bytes", 0)) for s in segments)
    ends = [float(s["end"]) for s in segments if "end" in s]
    health.newest = max(ends) if ends else None
    return health


def _as_int(value: float | None) -> int | None:
    return None if value is None else int(value)


def fleet_status(
    config: FleetConfig,
    *,
    scrape=scrape_node,
) -> FleetStatus:
    """Scrape every node and run the anomaly rules.

    ``scrape`` is injectable for tests (and for callers that already hold
    scraped pages); it must match :func:`scrape_node`'s signature.
    """
    nodes = [
        scrape(node, timeout=config.query_timeout) for node in config.nodes
    ]
    return FleetStatus(nodes=nodes, anomalies=_find_anomalies(config, nodes))


def _find_anomalies(
    config: FleetConfig, nodes: list[NodeHealth]
) -> list[FleetAnomaly]:
    anomalies: list[FleetAnomaly] = []
    for node in nodes:
        if not node.reachable:
            anomalies.append(
                FleetAnomaly(
                    rule="node-unreachable",
                    node=node.name,
                    detail=node.error or "scrape failed",
                )
            )
    # Staleness grades against the fleet's newest capture time, so a
    # replayed-trace fleet and a live fleet use the same rule.
    newest = [n.newest for n in nodes if n.reachable and n.newest is not None]
    if newest:
        fleet_newest = max(newest)
        for node in nodes:
            if not node.reachable or node.newest is None:
                continue
            lag = fleet_newest - node.newest
            if lag > config.stale_after:
                anomalies.append(
                    FleetAnomaly(
                        rule="node-stale",
                        node=node.name,
                        detail=(
                            f"newest capture time trails fleet by {lag:.0f}s"
                            f" (> {config.stale_after:.0f}s)"
                        ),
                    )
                )
    ratios = {
        node.name: ratio
        for node in nodes
        if node.reachable and (ratio := node.drop_ratio) is not None
    }
    if len(ratios) >= 2:
        median = statistics.median(ratios.values())
        for name, ratio in ratios.items():
            if ratio > 0.01 and ratio > config.drop_outlier_ratio * median:
                anomalies.append(
                    FleetAnomaly(
                        rule="drop-rate-outlier",
                        node=name,
                        detail=(
                            f"drop ratio {ratio:.1%} vs fleet median"
                            f" {median:.1%}"
                        ),
                    )
                )
    return anomalies


def render_fleet_status(status: FleetStatus) -> str:
    """The ``repro fleet status`` page: node table + fired anomalies."""
    headers = (
        "node",
        "source",
        "up",
        "frames",
        "dropped",
        "restarts",
        "records",
        "newest",
        "qoe",
    )
    rows = []
    for node in status.nodes:
        rows.append(
            (
                node.name,
                node.source,
                "yes" if node.reachable else "NO",
                _cell(node.frames),
                _cell(node.dropped),
                _cell(node.restarts),
                _cell(node.store_records),
                _cell(node.newest),
                node.qoe_mix(),
            )
        )
    lines = [format_table(headers, rows).rstrip("\n")]
    lines.append("")
    lines.append(
        f"nodes: {status.reachable}/{len(status.nodes)} reachable,"
        f" {len(status.anomalies)} anomalies"
    )
    for anomaly in status.anomalies:
        lines.append(f"  [{anomaly.rule}] {anomaly.node}: {anomaly.detail}")
    return "\n".join(lines) + "\n"


def _cell(value: object) -> object:
    return "-" if value is None else value
