"""The federated query plane: one :class:`~repro.store.query.StoreQuery`,
every vantage point, one coherent answer.

:class:`FederatedQuery` fans a query out over the fleet's node stores — a
thread pool over local store directories and/or the thin HTTP store
endpoint daemons expose (``POST /store/query``) — and merges the results
as if one store held the union of all records:

* **Raw fan-out, shared shaping.**  Nodes return *unshaped* records (the
  fanned-out query strips re-aggregation and projection); the plane
  applies :func:`repro.store.merge.shape_records` exactly once over the
  concatenation.  Because that is the same code path a single-store
  :func:`~repro.store.query.run_query` uses, a federated query over N
  partitioned stores is bit-identical to a single-store query over the
  union of their records — re-aggregating per node and again at the plane
  would average averages and break that.
* **Plane-level meeting resolution.**  A ``meeting_id`` query resolves
  the meeting's activity span(s) fleet-wide first (the meeting record may
  live in one node's store while the meeting's windows were captured by
  another tap), then fans the scan out with ``meeting_spans`` attached so
  no node re-resolves locally.
* **Cross-tap meeting dedup.**  Meeting ids are analyzer-assigned
  counters — meaningless across nodes — so a meeting seen by several taps
  is recognized by its observable fingerprint (span + stream/participant
  counts).  One copy survives (the lexicographically-first node's, for
  determinism), annotated with the ``sites`` that saw it; duplicates from
  the *same* node are preserved, since a single store would return them
  too.  Only meeting records dedup: windows and streams are per-vantage-
  point traffic measurements, and summing them across taps is the point.
* **Graceful degradation.**  Each node gets ``query_timeout`` seconds and
  ``query_retries`` retries; a node that still fails lands in
  ``nodes_missing`` (with its error in ``node_errors``) and the partial
  answer is returned — an unreachable tap must not take down the fleet's
  query plane.  Only zero reachable nodes is an error, and even that is
  the *caller's* call (``FederatedResult.complete`` says which).

Local store directories are opened read-mostly for the lifetime of the
:class:`FederatedQuery` (open replays crash recovery, so point it at
sealed bundles or snapshot copies — a store a live daemon is writing
should be queried through that daemon's endpoint instead).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace

from repro.core.config import FleetConfig, FleetNodeConfig
from repro.store.merge import shape_records
from repro.store.query import QueryResult, StoreQuery, run_query
from repro.store.store import MetricsStore

__all__ = [
    "FederatedQuery",
    "FederatedResult",
    "federated_query",
    "meeting_fingerprint",
]


def meeting_fingerprint(record: dict) -> tuple:
    """The cross-tap identity of a meeting record.

    ``meeting_id`` is deliberately excluded — it is a per-analyzer counter
    and collides across nodes — so two taps that both watched a meeting
    agree on its span and composition, which is everything a passive
    observer can know.
    """
    start = float(record.get("start", 0.0))
    end = float(record.get("end", start))
    return (
        round(start, 9),
        round(end, 9),
        int(record.get("streams", 0)),
        int(record.get("participants", 0)),
    )


@dataclass(slots=True)
class FederatedResult:
    """The merged answer plus per-node accounting.

    ``nodes_missing`` is the partial-result annotation: non-empty means
    the records cover only the listed ``nodes_queried`` — the query plane
    degrades, it does not fail.
    """

    records: list[dict] = field(default_factory=list)
    nodes_queried: list[str] = field(default_factory=list)
    nodes_missing: list[str] = field(default_factory=list)
    node_errors: dict[str, str] = field(default_factory=dict)
    meetings_deduped: int = 0
    segments_scanned: int = 0
    segments_skipped: int = 0
    records_examined: int = 0

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def complete(self) -> bool:
        return not self.nodes_missing


class FederatedQuery:
    """The fleet's query plane over ``config.nodes``.

    Args:
        config: The fleet description (nodes plus timeout/retry knobs).
        local_stores: Optional pre-opened ``{node name: MetricsStore}``
            mapping; nodes found here are queried in-process without
            touching disk or network (how tests and ``fleet simulate``
            inject stores).  Other store-backed nodes are opened lazily
            from ``store_dir`` and cached.
    """

    def __init__(
        self,
        config: FleetConfig,
        *,
        local_stores: dict[str, MetricsStore] | None = None,
    ) -> None:
        self.config = config
        self._stores: dict[str, MetricsStore] = dict(local_stores or {})

    # Opened stores are dropped, not closed: MetricsStore.close() seals
    # active segments, and a read path must not restructure the store.
    def close(self) -> None:
        self._stores.clear()

    def __enter__(self) -> "FederatedQuery":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ run

    def run(self, query: StoreQuery) -> FederatedResult:
        """Execute ``query`` across the fleet (see module docstring)."""
        result = FederatedResult()
        spans_query: StoreQuery | None = None
        if (
            query.meeting_id is not None
            and query.meeting_spans is None
            and query.kinds != ("meeting",)
        ):
            spans_query = StoreQuery(
                kinds=("meeting",),
                meeting_id=query.meeting_id,
                start=query.start,
                end=query.end,
                use_index=query.use_index,
            )
        if spans_query is not None:
            span_rows = self._fan_out(spans_query, result)
            meetings, _ = _dedupe_meetings(span_rows)
            spans = tuple(
                (float(r["start"]), float(r["end"])) for _, r in meetings
            )
            query = replace(query, meeting_spans=spans)
            if not spans:
                return result
        # Nodes return raw records; shaping happens once, at the plane.
        fan_query = replace(query, reaggregate_seconds=None, metrics=None)
        tagged = self._fan_out(fan_query, result)
        meetings = [(n, r) for n, r in tagged if r.get("kind") == "meeting"]
        others = [r for _, r in tagged if r.get("kind") != "meeting"]
        kept, result.meetings_deduped = _dedupe_meetings(meetings)
        result.records = shape_records(others + [r for _, r in kept], query)
        # A node that failed either pass contributed incomplete data.
        result.nodes_queried = [
            n for n in result.nodes_queried if n not in result.nodes_missing
        ]
        return result

    # -------------------------------------------------------------- fan-out

    def _fan_out(
        self, query: StoreQuery, result: FederatedResult
    ) -> list[tuple[str, dict]]:
        """One fan-out pass; returns ``(node name, record)`` pairs and
        accumulates per-node accounting into ``result``."""
        config = self.config
        # Generous backstop: the per-attempt timeout already bounds HTTP
        # nodes; this catches a wedged local scan.
        deadline = config.query_timeout * (config.query_retries + 1) + 1.0
        tagged: list[tuple[str, dict]] = []
        with ThreadPoolExecutor(
            max_workers=min(config.max_workers, len(config.nodes))
        ) as pool:
            futures = {
                node.name: pool.submit(self._query_node, node, query)
                for node in config.nodes
            }
            for name, future in futures.items():
                try:
                    node_result = future.result(timeout=deadline)
                except FutureTimeoutError:
                    future.cancel()
                    self._mark_missing(result, name, "query timed out")
                    continue
                except Exception as exc:  # noqa: BLE001 - degrade, never raise
                    self._mark_missing(result, name, str(exc))
                    continue
                if name not in result.nodes_queried:
                    result.nodes_queried.append(name)
                result.segments_scanned += node_result.segments_scanned
                result.segments_skipped += node_result.segments_skipped
                result.records_examined += node_result.records_examined
                tagged.extend((name, record) for record in node_result.records)
        return tagged

    @staticmethod
    def _mark_missing(result: FederatedResult, name: str, error: str) -> None:
        if name in result.nodes_queried:
            # Reachable for the span pass but not the scan: its records
            # are incomplete, so it counts as missing.
            result.nodes_queried.remove(name)
        if name not in result.nodes_missing:
            result.nodes_missing.append(name)
        result.node_errors[name] = error

    def _query_node(
        self, node: FleetNodeConfig, query: StoreQuery
    ) -> QueryResult:
        attempts = self.config.query_retries + 1
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                return self._query_node_once(node, query)
            except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                last_error = exc
        raise last_error  # type: ignore[misc]

    def _query_node_once(
        self, node: FleetNodeConfig, query: StoreQuery
    ) -> QueryResult:
        if node.name in self._stores:
            return run_query(self._stores[node.name], query)
        if node.query_source == "store":
            store = MetricsStore(node.store_dir)  # type: ignore[arg-type]
            self._stores[node.name] = store
            return run_query(store, query)
        return _http_query(
            node.endpoint,  # type: ignore[arg-type]
            query,
            timeout=self.config.query_timeout,
        )


def federated_query(
    config: FleetConfig,
    query: StoreQuery,
    *,
    local_stores: dict[str, MetricsStore] | None = None,
) -> FederatedResult:
    """One-shot convenience wrapper around :class:`FederatedQuery`."""
    with FederatedQuery(config, local_stores=local_stores) as plane:
        return plane.run(query)


# ------------------------------------------------------------- HTTP client


def _http_query(
    endpoint: str, query: StoreQuery, *, timeout: float
) -> QueryResult:
    """``POST /store/query`` against a daemon node's metrics server."""
    url = endpoint.rstrip("/") + "/store/query"
    body = json.dumps(query.to_dict()).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", errors="replace").strip()
        raise RuntimeError(
            f"store query failed: HTTP {exc.code} {detail or exc.reason}"
        ) from exc
    return QueryResult(
        records=list(payload.get("records", [])),
        segments_scanned=int(payload.get("segments_scanned", 0)),
        segments_skipped=int(payload.get("segments_skipped", 0)),
        records_examined=int(payload.get("records_examined", 0)),
    )


# ------------------------------------------------------------------- dedup


def _dedupe_meetings(
    tagged: list[tuple[str, dict]],
) -> tuple[list[tuple[str, dict]], int]:
    """Collapse cross-node duplicate meetings (module docstring has the
    semantics).  Returns the surviving ``(node, record)`` pairs — original
    arrival order preserved — and the number of records dropped."""
    groups: dict[tuple, list[tuple[str, dict]]] = {}
    for name, record in tagged:
        groups.setdefault(meeting_fingerprint(record), []).append(
            (name, record)
        )
    survivors: set[int] = set()
    annotations: dict[int, list[str]] = {}
    dropped = 0
    for group in groups.values():
        sites = sorted({name for name, _ in group})
        if len(sites) == 1:
            survivors.update(id(record) for _, record in group)
            continue
        keeper = sites[0]
        for name, record in group:
            if name == keeper:
                survivors.add(id(record))
                annotations[id(record)] = sites
            else:
                dropped += 1
    kept: list[tuple[str, dict]] = []
    for name, record in tagged:
        if id(record) not in survivors:
            continue
        sites = annotations.get(id(record))
        if sites is not None:
            record = dict(record)
            record["sites"] = sites
        kept.append((name, record))
    return kept, dropped
