"""``repro fleet simulate`` — build a whole fleet in-process.

Spins up N simulated vantage points: each node generates its own campus
trace (same diurnal structure, different seed — N taps watching different
slices of one campus day) and runs it through the *real* monitor pipeline
— :class:`~repro.core.rolling.RollingZoomAnalyzer` →
:class:`~repro.service.windows.WindowAggregator` →
:class:`~repro.store.sink.StoreSink` — into a per-node
:class:`~repro.store.store.MetricsStore`.  The result is a directory an
operator can immediately point the rest of the fleet tooling at::

    <root>/
      fleet.json        # the manifest `fleet status` / `fleet query` read
      node-00/          # one sealed store per vantage point
      node-01/
      ...

With ``overlap=True`` an extra small trace is fed to the *first two*
nodes, so the same meetings appear in both stores — the input that
exercises the federated plane's cross-tap meeting dedup.

This module imports the service pipeline, so :mod:`repro.fleet`'s
``__init__`` must keep it lazily imported (``repro.service`` imports
:mod:`repro.fleet.health` at startup for the counter seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core import AnalyzerConfig, FleetConfig, FleetNodeConfig, RollingZoomAnalyzer
from repro.fleet.manifest import save_fleet_manifest
from repro.net.packet import CapturedPacket
from repro.service.windows import WindowAggregator
from repro.simulation.campus import CampusTraceConfig, generate_campus_trace
from repro.store.sink import StoreSink
from repro.store.store import MetricsStore

__all__ = ["FleetSimConfig", "SimulatedNode", "simulate_fleet"]


@dataclass(frozen=True, slots=True)
class FleetSimConfig:
    """Knobs for :func:`simulate_fleet`.

    Attributes:
        nodes: Number of vantage points to simulate.
        hours: Campus-trace hours per node (laptop scale: 1–2).
        meetings_per_hour_peak: Per-node meeting arrival rate at peak.
        window_seconds: Aggregation window width written to the stores.
        seed: Master seed; node ``i`` uses ``seed + i``.
        overlap: Feed an extra shared trace to the first two nodes, so
            the same meetings are visible from both taps (needs
            ``nodes >= 2``).
    """

    nodes: int = 3
    hours: int = 1
    meetings_per_hour_peak: float = 2.0
    window_seconds: float = 10.0
    seed: int = 7
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.overlap and self.nodes < 2:
            raise ValueError("overlap needs at least 2 nodes")


@dataclass(slots=True)
class SimulatedNode:
    """What one simulated vantage point produced."""

    name: str
    store_dir: str
    packets: int
    windows_stored: int
    streams_stored: int
    meetings_stored: int


def simulate_fleet(
    root: str | Path, config: FleetSimConfig | None = None
) -> tuple[FleetConfig, list[SimulatedNode]]:
    """Build the fleet under ``root``; returns the written
    :class:`FleetConfig` (also saved as ``root/fleet.json``) and per-node
    production stats."""
    sim = config if config is not None else FleetSimConfig()
    root_path = Path(root)
    root_path.mkdir(parents=True, exist_ok=True)
    per_node: list[list[CapturedPacket]] = []
    # Each trace gets a disjoint address-octet range: participant IPs embed
    # the meeting index, and the meeting grouper merges by client IP, so
    # traces that will be combined (overlap mode) must not collide.
    for index in range(sim.nodes):
        trace = generate_campus_trace(
            CampusTraceConfig(
                hours=sim.hours,
                meetings_per_hour_peak=sim.meetings_per_hour_peak,
                seed=sim.seed + index,
                address_octet_base=index * 40,
            )
        )
        per_node.append(list(trace.result.captures))
    if sim.overlap:
        shared = generate_campus_trace(
            CampusTraceConfig(
                hours=1,
                meetings_per_hour_peak=max(sim.meetings_per_hour_peak, 3.0),
                seed=sim.seed + 9973,  # disjoint from every per-node seed
                address_octet_base=200,
            )
        )
        # Shift the shared meetings past every node's own traffic: both
        # taps must analyze identical, isolated packet sequences, or the
        # meeting grouper would merge them differently with each node's
        # local meetings and the cross-tap fingerprints would diverge.
        offset = sim.hours * 3600.0
        shifted = [
            CapturedPacket(timestamp=p.timestamp + offset, data=p.data)
            for p in shared.result.captures
        ]
        for index in (0, 1):
            per_node[index].extend(shifted)
    nodes: list[SimulatedNode] = []
    node_configs: list[FleetNodeConfig] = []
    for index, packets in enumerate(per_node):
        name = f"node-{index:02d}"
        store_dir = root_path / name
        nodes.append(_run_node(name, store_dir, packets, sim.window_seconds))
        node_configs.append(
            FleetNodeConfig(
                name=name,
                store_dir=str(store_dir),
                campus_subnets=("10.0.0.0/8",),
            )
        )
    fleet = FleetConfig(nodes=tuple(node_configs))
    save_fleet_manifest(fleet, root_path)
    return fleet, nodes


def _run_node(
    name: str,
    store_dir: Path,
    packets: list[CapturedPacket],
    window_seconds: float,
) -> SimulatedNode:
    """One vantage point: the live daemon's analysis pipeline, fed from a
    list instead of an interface, writing the same store layout."""
    store = MetricsStore(store_dir)
    sink = StoreSink(store)
    rolling = RollingZoomAnalyzer(
        AnalyzerConfig(), on_stream_finalized=sink.write_stream
    )
    aggregator = WindowAggregator(
        rolling,
        window_seconds=window_seconds,
        on_window=(sink.write_window,),
    )
    packets.sort(key=lambda packet: packet.timestamp)
    for packet in packets:
        rolling.feed(packet)
        aggregator.observe_packet(packet.timestamp, len(packet.data))
    rolling.sweep(float("inf"))
    aggregator.flush(final=True)
    sink.write_meetings(rolling.result.meetings)
    store.close()
    return SimulatedNode(
        name=name,
        store_dir=str(store_dir),
        packets=len(packets),
        windows_stored=sink.windows_stored,
        streams_stored=sink.streams_stored,
        meetings_stored=sink.meetings_stored,
    )
