"""``fleet.json`` — the on-disk description of a monitor fleet.

A fleet manifest is a plain JSON file an operator edits (or ``repro fleet
simulate`` writes) that lists every vantage point and the fleet-level
query/health knobs::

    {
      "nodes": [
        {"name": "dorm-tap", "store_dir": "dorm-tap/store",
         "campus_subnets": ["10.1.0.0/16"]},
        {"name": "library", "endpoint": "http://library:9310"}
      ],
      "query_timeout": 5.0
    }

Relative ``store_dir`` paths resolve against the manifest's own directory,
so a simulated fleet (or an rsync'd bundle of node stores) stays portable:
move the directory, and the manifest inside it still points at the right
stores.  :func:`load_fleet_manifest` returns the same frozen
:class:`~repro.core.config.FleetConfig` the rest of :mod:`repro.fleet`
consumes, so a file-configured fleet and a programmatic one are
indistinguishable downstream.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import FleetConfig, FleetNodeConfig

__all__ = ["FLEET_MANIFEST_NAME", "load_fleet_manifest", "save_fleet_manifest"]

FLEET_MANIFEST_NAME = "fleet.json"

#: FleetConfig knobs that pass straight through the JSON round-trip.
_CONFIG_KEYS = (
    "query_timeout",
    "query_retries",
    "max_workers",
    "stale_after",
    "drop_outlier_ratio",
)


def load_fleet_manifest(path: str | Path) -> FleetConfig:
    """Parse ``path`` (a ``fleet.json`` file, or a directory holding one).

    Raises ``ValueError`` on unknown keys — a typo'd knob should fail
    loudly, not silently run with defaults.
    """
    manifest_path = Path(path)
    if manifest_path.is_dir():
        manifest_path = manifest_path / FLEET_MANIFEST_NAME
    payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    unknown = set(payload) - set(_CONFIG_KEYS) - {"nodes"}
    if unknown:
        raise ValueError(f"unknown fleet manifest keys: {sorted(unknown)}")
    base = manifest_path.resolve().parent
    nodes = []
    for entry in payload.get("nodes", []):
        unknown = set(entry) - {"name", "store_dir", "endpoint", "campus_subnets"}
        if unknown:
            raise ValueError(
                f"unknown fleet node keys: {sorted(unknown)}"
            )
        store_dir = entry.get("store_dir")
        if store_dir is not None and not Path(store_dir).is_absolute():
            store_dir = str(base / store_dir)
        subnets = entry.get("campus_subnets")
        nodes.append(
            FleetNodeConfig(
                name=str(entry["name"]),
                store_dir=store_dir,
                endpoint=entry.get("endpoint"),
                campus_subnets=tuple(subnets) if subnets is not None else None,
            )
        )
    knobs = {key: payload[key] for key in _CONFIG_KEYS if key in payload}
    return FleetConfig(nodes=tuple(nodes), **knobs)


def save_fleet_manifest(config: FleetConfig, path: str | Path) -> Path:
    """Write ``config`` as ``fleet.json`` (to ``path``, or inside it if a
    directory); store paths under that directory are written relative, so
    the resulting bundle is relocatable."""
    manifest_path = Path(path)
    if manifest_path.is_dir():
        manifest_path = manifest_path / FLEET_MANIFEST_NAME
    base = manifest_path.resolve().parent
    nodes = []
    for node in config.nodes:
        entry: dict = {"name": node.name}
        if node.store_dir is not None:
            store_dir = Path(node.store_dir).resolve()
            try:
                entry["store_dir"] = str(store_dir.relative_to(base))
            except ValueError:
                entry["store_dir"] = str(store_dir)
        if node.endpoint is not None:
            entry["endpoint"] = node.endpoint
        if node.campus_subnets is not None:
            entry["campus_subnets"] = list(node.campus_subnets)
        nodes.append(entry)
    payload: dict = {"nodes": nodes}
    defaults = FleetConfig(nodes=config.nodes)
    for key in _CONFIG_KEYS:
        if getattr(config, key) != getattr(defaults, key):
            payload[key] = getattr(config, key)
    manifest_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return manifest_path
