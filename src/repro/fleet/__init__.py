"""Fleet federation: many vantage points, one query plane.

The paper measures Zoom from a single campus border tap; a production
deployment has many — dorm aggregation, library, data-center egress —
each running its own monitor daemon and its own metrics store.  This
package makes that fleet operable as one system:

* :mod:`repro.fleet.manifest` — ``fleet.json``: the operator-edited list
  of vantage points (local store directory or daemon HTTP endpoint),
  loaded into the frozen :class:`~repro.core.config.FleetConfig`.
* :mod:`repro.fleet.federation` — :class:`FederatedQuery`: fan one
  :class:`~repro.store.query.StoreQuery` out over every node, merge
  through the same shaping code path single-store queries use (so a
  federated answer over partitioned stores is bit-identical to a
  single-store answer over the union), dedup meetings seen by multiple
  taps, and degrade to annotated partial results when nodes are down.
* :mod:`repro.fleet.health` — scrape every node's Prometheus/manifest
  surface into one ``fleet status`` view with fleet-level anomaly rules
  (unreachable, stale, drop-rate outlier).
* :mod:`repro.fleet.simulate` — build an N-node fleet in-process from
  campus-trace generators (imported lazily: it pulls in the service
  pipeline, which itself imports :mod:`repro.fleet.health` for the
  ``fleet.*`` counter seeds).

CLI faces: ``repro fleet simulate | status | query``.
"""

from repro.core.config import FleetConfig, FleetNodeConfig
from repro.fleet.federation import (
    FederatedQuery,
    FederatedResult,
    federated_query,
    meeting_fingerprint,
)
from repro.fleet.health import (
    FLEET_COUNTER_SEEDS,
    FleetAnomaly,
    FleetStatus,
    NodeHealth,
    fleet_status,
    render_fleet_status,
    scrape_node,
)
from repro.fleet.manifest import (
    FLEET_MANIFEST_NAME,
    load_fleet_manifest,
    save_fleet_manifest,
)

__all__ = [
    "FLEET_COUNTER_SEEDS",
    "FLEET_MANIFEST_NAME",
    "FederatedQuery",
    "FederatedResult",
    "FleetAnomaly",
    "FleetConfig",
    "FleetNodeConfig",
    "FleetStatus",
    "NodeHealth",
    "federated_query",
    "fleet_status",
    "load_fleet_manifest",
    "meeting_fingerprint",
    "render_fleet_status",
    "save_fleet_manifest",
    "scrape_node",
]
