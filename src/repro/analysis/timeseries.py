"""Time-series helpers: resampling, downsampling, and ASCII rendering."""

from __future__ import annotations

import math
from typing import Sequence

Point = tuple[float, float]


def resample_sum(points: Sequence[Point], width: float) -> list[Point]:
    """Re-bin (time, value) points into wider bins by summation."""
    if width <= 0:
        raise ValueError("bin width must be positive")
    bins: dict[int, float] = {}
    for when, value in points:
        bins[int(when // width)] = bins.get(int(when // width), 0.0) + value
    if not bins:
        return []
    first, last = min(bins), max(bins)
    return [(index * width, bins.get(index, 0.0)) for index in range(first, last + 1)]


def downsample(points: Sequence[Point], max_points: int) -> list[Point]:
    """Keep at most ``max_points`` evenly spaced points."""
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    if len(points) <= max_points:
        return list(points)
    step = len(points) / max_points
    return [points[int(i * step)] for i in range(max_points)]


def ascii_plot(
    points: Sequence[Point],
    *,
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """A rough ASCII line plot — enough to eyeball a Figure 14-style series."""
    if not points:
        return f"{label}(no data)"
    sampled = downsample(points, width)
    values = [value for _t, value in sampled]
    low, high = min(values), max(values)
    span = high - low or 1.0
    rows = [[" "] * len(sampled) for _ in range(height)]
    for column, value in enumerate(values):
        if math.isnan(value):
            continue
        level = int((value - low) / span * (height - 1))
        rows[height - 1 - level][column] = "*"
    lines = [f"{label} [{low:.3g} .. {high:.3g}]"]
    lines += ["".join(row) for row in rows]
    start, end = sampled[0][0], sampled[-1][0]
    lines.append(f"t: {start:.1f}s .. {end:.1f}s")
    return "\n".join(lines)
