"""Correlation measures for the Figure 16 experiment.

The paper's point is a *negative* result: jitter (a network-driven metric)
does not correlate with bit rate or frame rate (user/content-driven
metrics), so no single metric suffices to judge meeting quality.
"""

from __future__ import annotations

import math
from typing import Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; NaN for degenerate input."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    pairs = [(x, y) for x, y in zip(xs, ys) if x == x and y == y]
    n = len(pairs)
    if n < 2:
        return math.nan
    mean_x = sum(x for x, _y in pairs) / n
    mean_y = sum(y for _x, y in pairs) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    var_x = sum((x - mean_x) ** 2 for x, _y in pairs)
    var_y = sum((y - mean_y) ** 2 for _x, y in pairs)
    if var_x <= 0 or var_y <= 0:
        return math.nan
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (robust to the heavy tails jitter has)."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    pairs = [(x, y) for x, y in zip(xs, ys) if x == x and y == y]
    if len(pairs) < 2:
        return math.nan
    xs_clean = [x for x, _y in pairs]
    ys_clean = [y for _x, y in pairs]
    return pearson(_ranks(xs_clean), _ranks(ys_clean))
