"""Feature-matrix export for ML-based QoE inference (§8).

The paper's discussion proposes using its fine-grained metrics "as features
in a QoE ML inference model" and notes the system "can help automatically
generate large, feature-rich data sets from real-world traffic".  This
module is that generator: one feature row per (stream, second) with every §5
metric, written as CSV or returned as dictionaries for direct consumption.

Two entry points share the row builder:

* :func:`feature_rows` — batch: walk every stream of a finished analysis.
* :class:`FeatureRowSink` — streaming: subscribe to
  :class:`~repro.core.events.StreamEvicted` and emit each stream's rows the
  moment continuous operation finalizes it, so a 24/7 deployment exports
  incrementally instead of holding the whole feature matrix until shutdown.
"""

from __future__ import annotations

import csv
import io
import math
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING, Callable, TextIO

from repro.core.events import AnalysisSink, StreamEvicted
from repro.core.pipeline import AnalysisResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics.binning import TimeBinner
    from repro.core.pipeline import StreamMetrics
    from repro.core.streams import MediaStream

FEATURE_COLUMNS = (
    "stream_id",
    "ssrc",
    "media_type",
    "second",
    "media_kbits",
    "flow_kbits",
    "packets",
    "frames_completed",
    "delivered_fps",
    "encoder_fps",
    "mean_frame_bytes",
    "max_frame_bytes",
    "jitter_ms",
    "mean_frame_delay_ms",
    "max_frame_delay_ms",
    "rtt_ms",
    "duplicates",
    "suspected_retransmissions",
)

LatencyIndex = dict[tuple[int, int], list[float]]
"""(ssrc, second) → RTT samples in ms, shared across a stream's copies."""


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else math.nan


def latency_index(result: AnalysisResult) -> LatencyIndex:
    """Index Method-1 RTT samples by (ssrc, second).

    Latency samples are attributed by SSRC (they come from matching egress
    and ingress copies, so they describe the media stream rather than a
    single flow).
    """
    index: LatencyIndex = defaultdict(list)
    for sample in result.rtp_latency.samples:
        index[(sample.ssrc, int(sample.time))].append(sample.rtt * 1000)
    return index


def stream_feature_rows(
    stream: "MediaStream",
    metrics: "StreamMetrics",
    stream_binner: "TimeBinner | None",
    flow_binner: "TimeBinner | None",
    rtt_index: LatencyIndex,
) -> list[dict[str, object]]:
    """The feature rows of one stream, given its metric sources."""
    per_second: dict[int, dict[str, list[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    if stream_binner is not None:
        for when, total in stream_binner.sums(fill_gaps=False):
            per_second[int(when)]["media_bytes"].append(total)
    if flow_binner is not None:
        for when, total in flow_binner.sums(fill_gaps=False):
            per_second[int(when)]["flow_bytes"].append(total)
    for sample in metrics.framerate_delivered.samples:
        per_second[int(sample.time)]["delivered_fps"].append(sample.fps)
    for sample in metrics.framerate_encoder.samples:
        per_second[int(sample.time)]["encoder_fps"].append(sample.fps)
    for sample in metrics.framesize.samples:
        per_second[int(sample.time)]["frame_bytes"].append(float(sample.size))
    for sample in metrics.jitter.samples:
        per_second[int(sample.time)]["jitter_ms"].append(sample.jitter * 1000)
    for sample in metrics.frame_delay.samples:
        bucket = per_second[int(sample.time)]
        bucket["frame_delay_ms"].append(sample.delay * 1000)
        if sample.retransmission_suspected:
            bucket["suspected_retx"].append(1.0)
    report = metrics.loss.report()
    stream_id = (
        f"{stream.five_tuple[0]}:{stream.five_tuple[1]}-"
        f"{stream.five_tuple[2]}:{stream.five_tuple[3]}-{stream.ssrc:#x}"
    )
    rows: list[dict[str, object]] = []
    for second in sorted(per_second):
        bucket = per_second[second]
        frame_bytes = bucket.get("frame_bytes", [])
        rtts = rtt_index.get((stream.ssrc, second), [])
        rows.append(
            {
                "stream_id": stream_id,
                "ssrc": stream.ssrc,
                "media_type": stream.media_type,
                "second": second,
                "media_kbits": 8.0 * sum(bucket.get("media_bytes", [])) / 1000,
                "flow_kbits": 8.0 * sum(bucket.get("flow_bytes", [])) / 1000,
                "packets": len(bucket.get("jitter_ms", []))
                + len(bucket.get("media_bytes", [])),
                "frames_completed": len(frame_bytes),
                "delivered_fps": _mean(bucket.get("delivered_fps", [])),
                "encoder_fps": _mean(bucket.get("encoder_fps", [])),
                "mean_frame_bytes": _mean(frame_bytes),
                "max_frame_bytes": max(frame_bytes) if frame_bytes else math.nan,
                "jitter_ms": _mean(bucket.get("jitter_ms", [])),
                "mean_frame_delay_ms": _mean(bucket.get("frame_delay_ms", [])),
                "max_frame_delay_ms": max(bucket.get("frame_delay_ms", []), default=math.nan),
                "rtt_ms": _mean(rtts),
                "duplicates": report.duplicates,
                "suspected_retransmissions": int(sum(bucket.get("suspected_retx", []))),
            }
        )
    return rows


def feature_rows(result: AnalysisResult) -> list[dict[str, object]]:
    """Build the per-(stream, second) feature matrix from one analysis."""
    rtt_index = latency_index(result)
    rows: list[dict[str, object]] = []
    for stream in result.media_streams():
        metrics = result.metrics_for(stream.key)
        if metrics is None:
            continue
        rows.extend(
            stream_feature_rows(
                stream,
                metrics,
                result.bitrate.stream_bins.get((stream.five_tuple, stream.ssrc)),
                result.bitrate.flow_bins.get(stream.five_tuple),
                rtt_index,
            )
        )
    rows.sort(key=lambda row: (row["stream_id"], row["second"]))
    return rows


class FeatureRowSink(AnalysisSink):
    """Emit a stream's feature rows the moment it is evicted.

    Register on a continuously-operating analyzer's bus::

        analyzer = RollingZoomAnalyzer(...)
        sink = FeatureRowSink(analyzer.result, on_rows=csv_writer.writerows)
        analyzer.analyzer.bus.register(sink)

    Rows accumulate in :attr:`rows` (and go to ``on_rows``, if given) in
    eviction order; rows within one stream are ordered by second.  The RTT
    index is rebuilt per eviction from the matcher's samples so late
    matches are included — matches arriving *after* a stream's eviction are
    the streaming/batch divergence, inherent to incremental export.
    """

    def __init__(
        self,
        result: AnalysisResult,
        on_rows: Callable[[list[dict[str, object]]], None] | None = None,
    ) -> None:
        self._result = result
        self._on_rows = on_rows
        self.rows: list[dict[str, object]] = []

    def on_stream_evicted(self, event: StreamEvicted) -> None:
        stream = event.stream
        if event.metrics is None:
            return
        rows = stream_feature_rows(
            stream,
            event.metrics,
            self._result.bitrate.stream_bins.get((stream.five_tuple, stream.ssrc)),
            self._result.bitrate.flow_bins.get(stream.five_tuple),
            latency_index(self._result),
        )
        self.rows.extend(rows)
        if self._on_rows is not None and rows:
            self._on_rows(rows)


def write_feature_csv(result: AnalysisResult, destination: str | Path | TextIO) -> int:
    """Write the feature matrix as CSV; returns the number of rows.

    NaNs are written as empty cells, which pandas and friends read back as
    missing values.
    """
    rows = feature_rows(result)
    if hasattr(destination, "write"):
        handle: TextIO = destination  # type: ignore[assignment]
        owns = False
    else:
        handle = open(destination, "w", newline="")
        owns = True
    try:
        writer = csv.DictWriter(handle, fieldnames=FEATURE_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow(
                {
                    key: ("" if isinstance(value, float) and math.isnan(value) else value)
                    for key, value in row.items()
                }
            )
    finally:
        if owns:
            handle.close()
    return len(rows)


def feature_csv_string(result: AnalysisResult) -> str:
    """The feature matrix as a CSV string (for quick inspection/tests)."""
    buffer = io.StringIO()
    write_feature_csv(result, buffer)
    return buffer.getvalue()
