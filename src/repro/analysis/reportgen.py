"""Per-meeting report cards: the operator-facing output of the pipeline.

Combines every estimator's output into one structured report per inferred
meeting — streams, rates, frame statistics, latency, jitter, retransmissions,
stalls — and applies the paper's §6.2 "Causes of Low Performance Metrics"
reasoning: a low frame rate co-occurring with high jitter or retransmissions
is *network-caused*; a low frame rate on a quiet network is *content/user-
caused* (thumbnail mode, static screen share), and no action is needed.
This is exactly the judgement the paper argues single metrics cannot make.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.analysis.tables import format_table
from repro.core.events import AnalysisSink, StreamEvicted
from repro.core.meetings import Meeting
from repro.core.pipeline import AnalysisResult
from repro.zoom.constants import ZoomMediaType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import StreamMetrics
    from repro.core.streams import MediaStream, StreamKey

JITTER_NETWORK_THRESHOLD = 0.020
"""Jitter above Zoom's recommended 40 ms is clearly bad; 20 ms is where the
paper starts attributing effects to the network (§6.2)."""

LOW_VIDEO_FPS = 20.0
"""Below the ~28 fps normal mode and above the ~14 fps thumbnail cluster."""


@dataclass(frozen=True, slots=True)
class StreamReport:
    """Aggregated view of one unique media stream within a meeting."""

    ssrc: int
    media_type: int
    copies: int
    packets: int
    mean_fps: float
    median_frame_bytes: float
    jitter_ms: float
    duplicates: int
    reordered: int
    lost: int
    stalls: int
    mean_rtt_ms: float

    @property
    def media_name(self) -> str:
        try:
            return ZoomMediaType(self.media_type).name
        except ValueError:
            return str(self.media_type)


@dataclass(frozen=True, slots=True)
class Diagnosis:
    """One §6.2-style judgement about a stream."""

    ssrc: int
    severity: str  # "info" | "warning"
    cause: str  # "network" | "content"
    message: str


@dataclass
class MeetingReport:
    """The report card of one inferred meeting."""

    meeting_id: int
    duration: float
    participant_estimate: int
    client_ips: tuple[str, ...]
    streams: list[StreamReport] = field(default_factory=list)
    diagnoses: list[Diagnosis] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"Meeting {self.meeting_id}: ~{self.participant_estimate} participants, "
            f"{self.duration:.1f}s, clients: {', '.join(self.client_ips) or '(none)'}"
        ]
        rows = [
            (
                f"{s.ssrc:#x}",
                s.media_name,
                s.copies,
                s.packets,
                s.mean_fps,
                s.median_frame_bytes,
                s.jitter_ms,
                s.duplicates,
                s.lost,
                s.stalls,
                s.mean_rtt_ms,
            )
            for s in self.streams
        ]
        lines.append(
            format_table(
                ["ssrc", "media", "copies", "pkts", "fps", "frame B",
                 "jitter ms", "dups", "lost", "stalls", "rtt ms"],
                rows,
            )
        )
        if self.diagnoses:
            lines.append("findings:")
            for diagnosis in self.diagnoses:
                lines.append(
                    f"  [{diagnosis.severity}] {diagnosis.ssrc:#x} "
                    f"({diagnosis.cause}): {diagnosis.message}"
                )
        else:
            lines.append("findings: none — meeting looks healthy")
        return "\n".join(lines)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else math.nan


def build_stream_report(
    pairs: list[tuple["MediaStream", "StreamMetrics | None"]],
    rtts_ms: list[float],
) -> StreamReport:
    """Aggregate the copies of one unique stream into a :class:`StreamReport`.

    ``pairs`` holds every (stream copy, its metrics) carrying the same uid —
    the caller decides where those come from: the live tables for the batch
    path, eviction events for the streaming path.
    """
    streams = [stream for stream, _ in pairs]
    ssrc = streams[0].ssrc
    media_type = streams[0].media_type
    fps_values: list[float] = []
    sizes: list[float] = []
    jitters: list[float] = []
    duplicates = reordered = lost = stalls = 0
    packets = 0
    for stream, metrics in pairs:
        packets += stream.packets
        if metrics is None:
            continue
        fps_values.extend(sample.fps for sample in metrics.framerate_delivered.samples)
        sizes.extend(float(size) for size in metrics.framesize.sizes())
        if metrics.jitter.samples:
            jitters.append(metrics.jitter.jitter * 1000)
        report = metrics.loss.report()
        duplicates += report.duplicates
        reordered += report.reordered
        lost += report.lost
        stalls += len(metrics.stall_events())
    ordered_sizes = sorted(sizes)
    return StreamReport(
        ssrc=ssrc,
        media_type=media_type,
        copies=len(streams),
        packets=packets,
        mean_fps=_mean(fps_values),
        median_frame_bytes=(
            ordered_sizes[len(ordered_sizes) // 2] if ordered_sizes else math.nan
        ),
        jitter_ms=max(jitters) if jitters else math.nan,
        duplicates=duplicates,
        reordered=reordered,
        lost=lost,
        stalls=stalls,
        mean_rtt_ms=_mean(rtts_ms),
    )


def _stream_report(result: AnalysisResult, meeting: Meeting, uid: int) -> StreamReport:
    keys = [key for key in meeting.stream_keys if result.grouper.uid_of(key) == uid]
    pairs = [
        (stream, result.metrics_for(key))
        for key in keys
        if (stream := result.streams.get(key)) is not None
    ]
    ssrc = pairs[0][0].ssrc
    rtts = [sample.rtt * 1000 for sample in result.rtp_latency.samples_for(ssrc)]
    return build_stream_report(pairs, rtts)


def _diagnose(stream: StreamReport) -> list[Diagnosis]:
    """Apply the §6.2 causes-of-low-performance reasoning to one stream."""
    diagnoses: list[Diagnosis] = []
    network_suspect = (
        (stream.jitter_ms == stream.jitter_ms and stream.jitter_ms > JITTER_NETWORK_THRESHOLD * 1000)
        or stream.stalls > 0
        or stream.lost > 0
        or stream.duplicates > stream.packets * 0.01
    )
    low_fps = (
        stream.media_type == int(ZoomMediaType.VIDEO)
        and stream.mean_fps == stream.mean_fps
        and stream.mean_fps < LOW_VIDEO_FPS
    )
    if low_fps and network_suspect:
        diagnoses.append(
            Diagnosis(
                ssrc=stream.ssrc,
                severity="warning",
                cause="network",
                message=(
                    f"video at {stream.mean_fps:.1f} fps with jitter "
                    f"{stream.jitter_ms:.1f} ms, {stream.duplicates} retransmits, "
                    f"{stream.stalls} stall(s): network-driven degradation"
                ),
            )
        )
    elif low_fps:
        diagnoses.append(
            Diagnosis(
                ssrc=stream.ssrc,
                severity="info",
                cause="content",
                message=(
                    f"video at {stream.mean_fps:.1f} fps on a quiet network: "
                    "likely thumbnail mode or static content, no action needed"
                ),
            )
        )
    if stream.stalls > 0 and not low_fps:
        diagnoses.append(
            Diagnosis(
                ssrc=stream.ssrc,
                severity="warning",
                cause="network",
                message=f"{stream.stalls} predicted playback stall(s)",
            )
        )
    return diagnoses


def meeting_report(result: AnalysisResult, meeting: Meeting) -> MeetingReport:
    """Build the report card for one meeting."""
    report = MeetingReport(
        meeting_id=meeting.meeting_id,
        duration=meeting.duration,
        participant_estimate=meeting.participant_estimate(),
        client_ips=tuple(sorted(meeting.client_ips)),
    )
    for uid in sorted(meeting.stream_uids):
        stream = _stream_report(result, meeting, uid)
        report.streams.append(stream)
        report.diagnoses.extend(_diagnose(stream))
    report.streams.sort(key=lambda s: (s.media_type, s.ssrc))
    return report


class MeetingReportSink(AnalysisSink):
    """Emit a meeting's report card once its last stream is evicted.

    Streaming counterpart of :func:`meeting_report` for continuous
    operation: collects (stream, metrics) pairs from
    :class:`~repro.core.events.StreamEvicted` events and, whenever *every*
    stream of the evicted stream's meeting has been seen, builds the report
    from the retained pairs — the live tables no longer hold them.

    Completion is checked against the grouper's *current* view of the
    meeting, so meetings that merge mid-flight (§4.3.2 step 3) are handled:
    the report waits for the union of their streams.
    """

    def __init__(
        self,
        result: AnalysisResult,
        on_report: Callable[[MeetingReport], None] | None = None,
    ) -> None:
        self._result = result
        self._on_report = on_report
        self._pairs: dict["StreamKey", tuple["MediaStream", "StreamMetrics | None"]] = {}
        self._reported: set[int] = set()
        self.reports: list[MeetingReport] = []

    def on_stream_evicted(self, event: StreamEvicted) -> None:
        key = event.stream.key
        self._pairs[key] = (event.stream, event.metrics)
        meeting = self._result.grouper.meeting_of(key)
        if meeting is None or meeting.meeting_id in self._reported:
            return
        if not all(k in self._pairs for k in meeting.stream_keys):
            return
        self._reported.add(meeting.meeting_id)
        self._emit(meeting)

    # ------------------------------------------------------------- internals

    def _emit(self, meeting: Meeting) -> None:
        by_uid: dict[int, list[tuple["MediaStream", "StreamMetrics | None"]]] = (
            defaultdict(list)
        )
        for key in meeting.stream_keys:
            uid = self._result.grouper.uid_of(key)
            if uid is not None:
                by_uid[uid].append(self._pairs[key])
        report = MeetingReport(
            meeting_id=meeting.meeting_id,
            duration=meeting.duration,
            participant_estimate=meeting.participant_estimate(),
            client_ips=tuple(sorted(meeting.client_ips)),
        )
        for uid in sorted(by_uid):
            pairs = by_uid[uid]
            ssrc = pairs[0][0].ssrc
            rtts = [
                sample.rtt * 1000
                for sample in self._result.rtp_latency.samples_for(ssrc)
            ]
            stream = build_stream_report(pairs, rtts)
            report.streams.append(stream)
            report.diagnoses.extend(_diagnose(stream))
        report.streams.sort(key=lambda s: (s.media_type, s.ssrc))
        for key in meeting.stream_keys:
            self._pairs.pop(key, None)
        self.reports.append(report)
        if self._on_report is not None:
            self._on_report(report)


def full_report(result: AnalysisResult) -> str:
    """Report cards for every meeting in one analysis, rendered as text."""
    sections = [
        meeting_report(result, meeting).render() for meeting in result.meetings
    ]
    if not sections:
        return "(no meetings found)"
    return ("\n" + "=" * 72 + "\n").join(sections)
