"""Reporting helpers for the §6.2 campus study: CDFs, time series, tables.

These are presentation utilities shared by the examples and the benchmark
harness — they turn the analyzer's raw series into the exact rows/curves the
paper's figures show, and render them as aligned text tables or ASCII plots
so every experiment's output is inspectable without a plotting stack.
"""

from repro.analysis.cdfs import Cdf, cdf_of
from repro.analysis.correlation import pearson, spearman
from repro.analysis.export import feature_rows, write_feature_csv
from repro.analysis.reportgen import full_report, meeting_report
from repro.analysis.tables import format_table
from repro.analysis.timeseries import ascii_plot, downsample, resample_sum

__all__ = [
    "Cdf",
    "ascii_plot",
    "cdf_of",
    "downsample",
    "feature_rows",
    "format_table",
    "full_report",
    "meeting_report",
    "pearson",
    "resample_sum",
    "spearman",
    "write_feature_csv",
]
