"""Aligned text tables for experiment output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    def _cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    header_cells = [
        headers[0].ljust(widths[0]),
        *(headers[i].rjust(widths[i]) for i in range(1, len(headers))),
    ]
    lines.append("  ".join(header_cells))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        lines.append("  ".join(cells))
    return "\n".join(lines)
