"""Empirical CDFs — the presentation form of Figure 15's per-metric results."""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution function.

    Built by :func:`cdf_of`; supports quantile and probability queries and
    rendering at fixed fractions for table output.
    """

    sorted_values: tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.sorted_values)

    def quantile(self, fraction: float) -> float:
        """The value at CDF level ``fraction`` (0-1)."""
        if not self.sorted_values:
            return math.nan
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        index = min(int(fraction * self.count), self.count - 1)
        return self.sorted_values[index]

    def probability_below(self, value: float) -> float:
        """P(X <= value)."""
        if not self.sorted_values:
            return math.nan
        return bisect.bisect_right(self.sorted_values, value) / self.count

    def quantile_row(
        self, fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    ) -> list[float]:
        """Values at several CDF levels (one table row per distribution)."""
        return [self.quantile(fraction) for fraction in fractions]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        if not self.sorted_values:
            return math.nan
        return sum(self.sorted_values) / self.count


def cdf_of(values: Iterable[float]) -> Cdf:
    """Build an empirical CDF, dropping NaNs."""
    cleaned = sorted(v for v in values if v == v)
    return Cdf(tuple(cleaned))
