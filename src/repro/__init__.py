"""repro — passive measurement of Zoom performance in production networks.

A full reproduction of Michel, Sengupta, Kim, Netravali, Rexford,
*Enabling Passive Measurement of Zoom Performance in Production Networks*
(IMC 2022), as a self-contained Python library:

* :mod:`repro.net` — pcap I/O and L2-L4 packet parsing (from scratch);
* :mod:`repro.rtp` — RTP, RTCP, and STUN;
* :mod:`repro.zoom` — Zoom's reverse-engineered proprietary encapsulation;
* :mod:`repro.core` — the paper's analysis pipeline: detection, entropy
  analysis, stream assembly, meeting grouping, performance metrics;
* :mod:`repro.capture` — the P4/Tofino capture-system model;
* :mod:`repro.simulation` — a packet-accurate Zoom traffic emulator standing
  in for production captures (see DESIGN.md for the substitution argument);
* :mod:`repro.analysis` — CDF/table/time-series reporting helpers.

Quickstart::

    from repro.simulation import MeetingConfig, MeetingSimulator, ParticipantConfig
    from repro.core import AnalysisSession, AnalyzerConfig
    from repro.net import SimulationSource

    config = MeetingConfig(
        meeting_id="demo",
        participants=(
            ParticipantConfig(name="alice"),
            ParticipantConfig(name="bob", join_time=1.0),
        ),
        duration=30.0,
    )
    session = AnalysisSession(AnalyzerConfig())
    result = session.run(SimulationSource(config))   # or session.run("trace.pcap")
    print(len(result.meetings), "meeting(s) found")
"""

__version__ = "1.0.0"

from repro.core import AnalysisSession, AnalyzerConfig, ZoomAnalyzer
from repro.net import open_capture_source, read_pcap, write_pcap

__all__ = [
    "AnalysisSession",
    "AnalyzerConfig",
    "ZoomAnalyzer",
    "open_capture_source",
    "read_pcap",
    "write_pcap",
    "__version__",
]
