"""``repro backfill`` — load pre-store history into a metrics store.

Two ingestion paths, matching the two artifact kinds older deployments
already have on disk:

* :func:`backfill_jsonl` — the live service's JSONL window logs, current
  (plain ``.jsonl``) and rotated (``.jsonl.1.gz`` — the rotation path
  gzip-compresses what it rotates out).  Each line is adopted verbatim as a
  ``window`` record, so summing queried windows over a backfilled store
  reproduces the original run's totals exactly.
* :func:`backfill_result` — a finished batch
  :class:`~repro.core.pipeline.AnalysisResult`: its media streams and
  meetings become ``stream``/``meeting`` records (a batch run has no
  tumbling-window timeline to store).

Both append through the normal store write path — partition routing,
sealing, manifest updates, and telemetry all behave exactly as live ingest.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.store.records import records_from_result, window_record_from_jsonl
from repro.store.store import MetricsStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import AnalysisResult


@dataclass(frozen=True, slots=True)
class BackfillReport:
    """What one backfill call ingested."""

    files: int
    windows: int
    streams: int
    meetings: int
    skipped_lines: int


def iter_jsonl_windows(path: str | Path) -> Iterator[dict]:
    """Window dicts from one JSONL log, transparently gunzipping ``.gz``.

    Blank lines are skipped; a torn final line (the log's writer was killed
    mid-append) stops the file quietly, mirroring the store's own torn-tail
    semantics.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                return  # torn tail: the writer died mid-line
            if isinstance(payload, dict):
                yield payload


def backfill_jsonl(
    store: MetricsStore, paths: Iterable[str | Path]
) -> BackfillReport:
    """Ingest service JSONL window logs (plain or gzip-rotated) into
    ``store``.  Returns ingestion counts; lines that are valid JSON but not
    window records are counted as skipped rather than failing the run."""
    files = windows = skipped = 0
    for path in paths:
        files += 1
        for payload in iter_jsonl_windows(path):
            try:
                record = window_record_from_jsonl(payload)
            except ValueError:
                skipped += 1
                continue
            store.append(record)
            windows += 1
    return BackfillReport(
        files=files, windows=windows, streams=0, meetings=0, skipped_lines=skipped
    )


def backfill_result(store: MetricsStore, result: "AnalysisResult") -> BackfillReport:
    """Ingest a batch analysis's stream + meeting summaries into ``store``."""
    streams = meetings = 0
    for record in records_from_result(result):
        store.append(record)
        if record["kind"] == "stream":
            streams += 1
        else:
            meetings += 1
    return BackfillReport(
        files=0, windows=0, streams=streams, meetings=meetings, skipped_lines=0
    )
