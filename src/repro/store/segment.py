"""Segment files: the on-disk unit of the metrics store.

A segment is a sequence of *frames*, each one JSON record of the store
(a closed window, a finalized stream, a meeting summary).  Two states:

* **Active** (``active-p<partition>.seg``) — the plain, uncompressed file a
  writer appends to.  Every frame is length-prefixed and CRC-protected, so
  a process killed mid-write leaves at most one torn frame at the tail;
  :func:`recover_active` truncates the file back to the last valid frame on
  the next open and the writer continues appending after it.
* **Sealed** (``seg-p<partition>-<seq>.segz``) — the gzip-compressed,
  immutable form.  Sealing streams the active frames through gzip into a
  temp name, appends a *footer frame* (the segment's own index: time range,
  record counts by kind, meeting ids, media types), fsyncs, and atomically
  renames — a sealed segment either exists completely or not at all.

The footer makes every sealed segment self-describing: the store-level
manifest is a cache of the footers, and :meth:`MetricsStore` rebuilds any
missing manifest entry by reading the footer back.  Frames are compact JSON
rather than a binary rowformat because the records are small (a few hundred
bytes), gzip removes most of the redundancy on seal, and debuggability of a
long-lived on-disk format outweighs the codec cost at window cadence (one
record per window per ~10 s, not per packet).
"""

from __future__ import annotations

import gzip
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

#: Identifies (and versions) a segment byte stream.  Bumping the version
#: byte invalidates old stores loudly instead of misreading them.
SEGMENT_MAGIC = b"RPRSEG1\n"

_FRAME_HEADER = struct.Struct(">II")  # payload length, CRC32 of payload

#: Key marking the final frame of a sealed segment as its index, not a
#: record.  Readers never yield it as data.
FOOTER_KEY = "__footer__"

#: Refuse absurd frame lengths during recovery: a corrupt header would
#: otherwise ask for gigabytes.  No legitimate store record approaches this.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(record: dict) -> bytes:
    """One record as a length-prefixed, CRC-protected frame."""
    payload = json.dumps(
        record, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(handle: IO[bytes]) -> Iterator[dict]:
    """Yield every valid record frame from ``handle`` (positioned after the
    magic); stops silently at the first torn or corrupt frame."""
    for record, _ in iter_frames_with_offsets(handle):
        yield record


def iter_frames_with_offsets(handle: IO[bytes]) -> Iterator[tuple[dict, int]]:
    """Like :func:`iter_frames` but also yields the byte offset at which
    each frame *ends* — what recovery truncates back to."""
    offset = handle.tell()
    while True:
        header = handle.read(_FRAME_HEADER.size)
        if len(header) < _FRAME_HEADER.size:
            return
        length, crc = _FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            return
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return
        if not isinstance(record, dict):
            return
        offset += _FRAME_HEADER.size + length
        yield record, offset


@dataclass
class SegmentMeta:
    """What a segment's footer (and the manifest) records about it.

    Accumulated incrementally as records are appended so sealing never has
    to re-read the data, and rebuilt from the recovered records when an
    active segment is reopened after a crash.
    """

    partition: int
    start: float = float("inf")
    end: float = float("-inf")
    records: int = 0
    kinds: dict[str, int] = field(default_factory=dict)
    meetings: set[int] = field(default_factory=set)
    media: set[str] = field(default_factory=set)

    def observe(self, record: dict) -> None:
        self.records += 1
        kind = str(record.get("kind", "unknown"))
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        start = float(record.get("start", 0.0))
        end = float(record.get("end", start))
        self.start = min(self.start, start)
        self.end = max(self.end, end)
        if kind == "meeting" and "meeting_id" in record:
            self.meetings.add(int(record["meeting_id"]))
        if kind == "stream" and record.get("media") is not None:
            self.media.add(str(record["media"]))
        for entry in record.get("media", []) if kind == "window" else ():
            if isinstance(entry, dict) and "media" in entry:
                self.media.add(str(entry["media"]))

    def footer_record(self) -> dict:
        return {
            FOOTER_KEY: 1,
            "partition": self.partition,
            "start": self.start if self.records else 0.0,
            "end": self.end if self.records else 0.0,
            "records": self.records,
            "kinds": dict(sorted(self.kinds.items())),
            "meetings": sorted(self.meetings),
            "media": sorted(self.media),
        }

    @classmethod
    def from_footer(cls, footer: dict) -> "SegmentMeta":
        meta = cls(partition=int(footer["partition"]))
        meta.records = int(footer["records"])
        if meta.records:
            meta.start = float(footer["start"])
            meta.end = float(footer["end"])
        meta.kinds = {str(k): int(v) for k, v in footer.get("kinds", {}).items()}
        meta.meetings = {int(m) for m in footer.get("meetings", ())}
        meta.media = {str(m) for m in footer.get("media", ())}
        return meta


@dataclass
class RecoveredSegment:
    """What :func:`recover_active` found in an existing active file."""

    meta: SegmentMeta
    valid_bytes: int
    truncated: bool  # a torn/corrupt tail was cut off


def recover_active(path: Path, partition: int) -> RecoveredSegment:
    """Validate an active segment, truncating any torn tail in place.

    Reads every intact frame to rebuild the segment's metadata, then —
    if the file holds trailing garbage (a frame cut short by a crash, a
    corrupt CRC) — truncates the file back to the end of the last valid
    frame so appending can resume.  A file too short to hold the magic, or
    with the wrong magic, is reset to a fresh empty segment.
    """
    meta = SegmentMeta(partition=partition)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        magic = handle.read(len(SEGMENT_MAGIC))
        if magic != SEGMENT_MAGIC:
            handle.seek(0)
            handle.write(SEGMENT_MAGIC)
            handle.truncate(len(SEGMENT_MAGIC))
            return RecoveredSegment(meta, len(SEGMENT_MAGIC), truncated=size > 0)
        valid = len(SEGMENT_MAGIC)
        for record, end_offset in iter_frames_with_offsets(handle):
            if FOOTER_KEY in record:
                continue  # sealed content copied into an active name; skip
            meta.observe(record)
            valid = end_offset
        truncated = valid < size
        if truncated:
            handle.truncate(valid)
    return RecoveredSegment(meta, valid, truncated=truncated)


class ActiveSegment:
    """The append side of one partition's active segment file."""

    def __init__(self, path: Path, partition: int) -> None:
        self.path = path
        self.partition = partition
        if path.exists():
            recovered = recover_active(path, partition)
            self.meta = recovered.meta
            self.recovered_truncated = recovered.truncated
        else:
            self.meta = SegmentMeta(partition=partition)
            self.recovered_truncated = False
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(SEGMENT_MAGIC)
        self._file = open(path, "ab")
        self.bytes = self._file.tell()

    def append(self, record: dict, *, fsync: bool = False) -> None:
        frame = encode_frame(record)
        self._file.write(frame)
        self._file.flush()
        if fsync:
            os.fsync(self._file.fileno())
        self.bytes += len(frame)
        self.meta.observe(record)

    def records_on_disk(self) -> list[dict]:
        """Re-read every appended record (used by queries over the active
        tail and by sealing after a crash recovery)."""
        with open(self.path, "rb") as handle:
            handle.seek(len(SEGMENT_MAGIC))
            return [r for r in iter_frames(handle) if FOOTER_KEY not in r]

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def seal_segment(active: ActiveSegment, sealed_path: Path, *, gzip_level: int = 6) -> SegmentMeta:
    """Compress an active segment into its immutable sealed form.

    Streams the active frames (re-read from disk, so a recovered writer
    seals exactly what survived) plus the footer frame through gzip into
    ``sealed_path`` via a temp name and atomic rename, then removes the
    active file.  ``mtime=0`` keeps sealing deterministic: the same records
    always produce byte-identical segments, which the compaction and
    equivalence tests rely on.
    """
    active.close()
    meta = active.meta
    tmp_path = sealed_path.with_name(sealed_path.name + ".tmp")
    with open(active.path, "rb") as src:
        src.seek(len(SEGMENT_MAGIC))
        with open(tmp_path, "wb") as raw:
            with gzip.GzipFile(
                fileobj=raw,
                mode="wb",
                compresslevel=gzip_level,
                mtime=0,
                filename="",
            ) as out:
                out.write(SEGMENT_MAGIC)
                for record, _ in iter_frames_with_offsets(src):
                    if FOOTER_KEY in record:
                        continue
                    out.write(encode_frame(record))
                out.write(encode_frame(meta.footer_record()))
            raw.flush()
            os.fsync(raw.fileno())
    os.replace(tmp_path, sealed_path)
    active.path.unlink(missing_ok=True)
    return meta


def write_sealed_segment(
    sealed_path: Path,
    records: Iterable[dict],
    partition: int,
    *,
    gzip_level: int = 6,
) -> SegmentMeta:
    """Write a sealed segment directly from records (the compaction path)."""
    meta = SegmentMeta(partition=partition)
    tmp_path = sealed_path.with_name(sealed_path.name + ".tmp")
    with open(tmp_path, "wb") as raw:
        with gzip.GzipFile(
            fileobj=raw,
            mode="wb",
            compresslevel=gzip_level,
            mtime=0,
            filename="",
        ) as out:
            out.write(SEGMENT_MAGIC)
            for record in records:
                out.write(encode_frame(record))
                meta.observe(record)
            out.write(encode_frame(meta.footer_record()))
        raw.flush()
        os.fsync(raw.fileno())
    os.replace(tmp_path, sealed_path)
    return meta


def read_sealed_segment(path: Path) -> tuple[list[dict], SegmentMeta | None]:
    """All records of a sealed segment plus its footer metadata.

    Returns ``(records, None)`` for a segment whose footer is missing or
    unreadable — the caller decides whether to adopt or quarantine it.
    """
    records: list[dict] = []
    footer: SegmentMeta | None = None
    with gzip.open(path, "rb") as handle:
        magic = handle.read(len(SEGMENT_MAGIC))
        if magic != SEGMENT_MAGIC:
            raise ValueError(f"{path}: not a store segment (magic {magic!r})")
        for record in iter_frames(handle):
            if FOOTER_KEY in record:
                footer = SegmentMeta.from_footer(record)
            else:
                records.append(record)
    return records, footer


def read_segment_footer(path: Path) -> SegmentMeta | None:
    """Just the footer of a sealed segment (decompresses the stream once —
    segments are small by construction, capped by the seal thresholds)."""
    _, footer = read_sealed_segment(path)
    return footer
