"""Packet-weighted record merging — the one code path every query shape uses.

The store's window re-aggregation (``repro query --reaggregate``) and the
fleet's federated merge (:mod:`repro.fleet.federation`) answer the same
question — "combine these fine-grained window records into one coherent
timeline" — and they must answer it with *identical arithmetic*: a fleet
query over N single-node stores has to be bit-identical to the same query
over one store holding the union of their records.  That is only provable
if both run through one implementation, so the math lives here and both
callers import it:

* :func:`reaggregate_windows` — merge window records into tumbling buckets.
  Counting fields sum exactly; ``meetings_active`` takes the bucket maximum
  (a point-in-time census, not an event count); per-media quality values
  (fps, jitter) combine as packet-weighted means via
  :func:`merge_media_entries`.
* :func:`shape_records` — the full post-scan shaping stage: optional
  re-aggregation, deterministic ordering, optional metric projection.
  :func:`repro.store.query.run_query` applies it to one store's scan;
  the federated plane applies it to the concatenation of N scans.

Determinism note: records that tie on ``(start, kind)`` are ordered by
their canonical JSON encoding (:func:`canonical_key`), so the merged output
is a pure function of the record *set* — independent of which node
contributed which record and of the order nodes answered.  Float summation
order inside a bucket is fixed the same way, which is what makes the
packet-weighted means reproducible across node partitions.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.query import StoreQuery

#: Window-record keys that survive any metric projection — without them a
#: projected record loses its identity on the timeline.
IDENTITY_KEYS = ("kind", "window", "start", "end")

#: Window counting fields that sum exactly across a merge (the service's
#: window invariant: summed over all windows they reproduce batch totals).
SUMMED_WINDOW_KEYS = (
    "packets_total",
    "bytes_total",
    "zoom_packets",
    "meetings_formed",
    "streams_evicted",
)


def canonical_key(record: dict) -> tuple[float, str, str]:
    """Total order over records: ``(start, kind, canonical JSON)``.

    The JSON tiebreak makes ordering independent of insertion order, so a
    federated merge sorts to the same byte sequence no matter how records
    were partitioned across nodes or in which order the nodes answered.
    """
    return (
        float(record.get("start", 0.0)),
        str(record.get("kind", "")),
        json.dumps(record, sort_keys=True, separators=(",", ":")),
    )


def reaggregate_windows(windows: list[dict], coarse_seconds: float) -> list[dict]:
    """Merge fine window records into tumbling ``coarse_seconds`` buckets.

    Counting fields sum exactly (that is the window invariant the service
    tests pin down); ``meetings_active`` takes the bucket maximum (it is a
    point-in-time census, not a count of events); per-media quality values
    (fps, jitter) combine as packet-weighted means over the windows that
    reported them, matching how a coarser aggregator would have sampled
    more streams per close.

    Windows from *different vantage points* merge through the same rules:
    per-bucket traffic totals add, and the packet weighting makes a node
    that carried most of a media type's packets dominate the bucket's
    quality estimate — exactly what one aggregator over the union of taps
    would have computed.
    """
    buckets: dict[int, list[dict]] = {}
    for window in windows:
        index = int(math.floor(float(window["start"]) / coarse_seconds))
        buckets.setdefault(index, []).append(window)
    merged: list[dict] = []
    for index in sorted(buckets):
        group = sorted(buckets[index], key=canonical_key)
        record: dict = {
            "kind": "window",
            "window": index,
            "start": index * coarse_seconds,
            "end": (index + 1) * coarse_seconds,
            "windows_merged": len(group),
            "forced": any(w.get("forced") for w in group),
        }
        for key in SUMMED_WINDOW_KEYS:
            record[key] = sum(int(w.get(key, 0)) for w in group)
        record["meetings_active"] = max(
            (int(w.get("meetings_active", 0)) for w in group), default=0
        )
        record["media"] = merge_media_entries(group, coarse_seconds)
        merged.append(record)
    return merged


def merge_media_entries(group: list[dict], coarse_seconds: float) -> list[dict]:
    """Combine the per-media entries of several window records into one set.

    Counting fields sum; ``streams`` takes the maximum (a census);
    ``mean_fps``/``mean_jitter_ms`` become packet-weighted means over the
    entries that reported them (weight floor 1, so a quality sample from a
    packetless entry still counts once rather than vanishing).
    """
    by_name: dict[str, list[dict]] = {}
    for window in group:
        for entry in window.get("media", ()):
            by_name.setdefault(str(entry.get("media")), []).append(entry)
    out: list[dict] = []
    for name in sorted(by_name):
        entries = by_name[name]
        packets = sum(int(e.get("packets", 0)) for e in entries)
        total_bytes = sum(int(e.get("bytes", 0)) for e in entries)
        merged: dict = {
            "media": name,
            "packets": packets,
            "bytes": total_bytes,
            "bitrate_bps": round(total_bytes * 8.0 / coarse_seconds, 3),
            "streams": max((int(e.get("streams", 0)) for e in entries), default=0),
            "streams_opened": sum(int(e.get("streams_opened", 0)) for e in entries),
            "p2p_packets": sum(int(e.get("p2p_packets", 0)) for e in entries),
            "lost": sum(int(e.get("lost", 0)) for e in entries),
            "duplicates": sum(int(e.get("duplicates", 0)) for e in entries),
        }
        for key in ("mean_fps", "mean_jitter_ms"):
            weighted = [
                (float(e[key]), max(int(e.get("packets", 0)), 1))
                for e in entries
                if e.get(key) is not None
            ]
            if weighted:
                weight = sum(w for _, w in weighted)
                merged[key] = round(
                    sum(v * w for v, w in weighted) / weight, 3
                )
            else:
                merged[key] = None
        out.append(merged)
    return out


def shape_records(records: list[dict], query: "StoreQuery") -> list[dict]:
    """The post-scan shaping stage shared by every query plane.

    Applies, in order: window re-aggregation (when the query asks for it),
    deterministic ``(start, kind, canonical)`` ordering, and metric
    projection.  ``records`` is not mutated.
    """
    shaped = records
    if query.reaggregate_seconds is not None:
        windows = [r for r in shaped if r.get("kind") == "window"]
        others = [r for r in shaped if r.get("kind") != "window"]
        shaped = reaggregate_windows(windows, query.reaggregate_seconds) + others
    shaped = sorted(shaped, key=canonical_key)
    if query.metrics is not None:
        shaped = [project_record(record, query.metrics) for record in shaped]
    return shaped


def project_record(record: dict, metrics: tuple[str, ...]) -> dict:
    """Thin ``record`` down to ``metrics`` (identity keys always survive)."""
    keep = set(metrics) | set(IDENTITY_KEYS)
    projected = {key: value for key, value in record.items() if key in keep}
    media = record.get("media")
    if isinstance(media, list) and "media" not in keep:
        thinned = [
            {
                key: value
                for key, value in entry.items()
                if key == "media" or key in keep
            }
            for entry in media
        ]
        # Media entries stay only if a per-media metric was requested.
        if any(len(entry) > 1 for entry in thinned):
            projected["media"] = thinned
    return projected
