""":class:`MetricsStore` — the embedded, append-only, time-partitioned store.

Directory layout::

    <store>/
      manifest.json            # version, partition width, sealed-segment index
      active-p<P>.seg          # per-partition append file (crash-recoverable)
      seg-p<P>-<NNNN>.segz     # sealed, gzip-compressed, immutable segments

Records are routed to the partition covering their ``start`` time
(``partition = floor(start / partition_seconds)``); each partition has at
most one active segment, sealed when it crosses the record/byte thresholds,
when capture time moves on, or at :meth:`close`.  Sealed segments carry a
self-describing footer; ``manifest.json`` caches those footers so a query
can skip non-overlapping segments without opening them.  The manifest is a
*cache*, not the truth: on open, sealed segments missing from it are
adopted by reading their footers back (``store.manifest_orphans``) and
entries whose file vanished are dropped — so losing the manifest loses
nothing but a directory scan.

Crash-safety invariants (exercised by ``tests/test_store_durability.py``):

* sealing goes through a temp name + ``os.replace`` — a sealed segment is
  never observable half-written;
* the active segment is append-only with CRC-framed records — any kill
  leaves at most one torn tail frame, truncated away on the next open
  (``store.torn_frames``);
* the manifest is rewritten atomically and can always be rebuilt.

Maintenance (``repro compact``, or the live sink's periodic call):
:meth:`compact` merges a partition's many small sealed segments into one,
and :meth:`enforce_retention` deletes the oldest sealed segments beyond the
configured age/byte budget — both through the same atomic-publish path.
"""

from __future__ import annotations

import functools
import json
import math
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.store.segment import (
    ActiveSegment,
    SegmentMeta,
    read_sealed_segment,
    seal_segment,
    write_sealed_segment,
)
from repro.telemetry.registry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import StoreConfig
    from repro.store.query import QueryResult, StoreQuery

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

_SEALED_RE = re.compile(r"^seg-p(-?\d+)-(\d+)\.segz$")
_ACTIVE_RE = re.compile(r"^active-p(-?\d+)\.seg$")


def _locked(method):
    """Serialize a :class:`MetricsStore` method on the store's RLock.

    The live daemon appends from its analysis thread while the metrics
    HTTP server answers ``POST /store/query`` from handler threads; the
    reentrant lock lets a query see a consistent segment set (and lets
    ``append`` seal through ``seal_partition`` without deadlocking).
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass(frozen=True, slots=True)
class SegmentInfo:
    """One sealed segment as the manifest (and queries) see it."""

    name: str
    partition: int
    start: float
    end: float
    records: int
    bytes: int
    kinds: tuple[tuple[str, int], ...]
    meetings: tuple[int, ...]
    media: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "partition": self.partition,
            "start": self.start,
            "end": self.end,
            "records": self.records,
            "bytes": self.bytes,
            "kinds": dict(self.kinds),
            "meetings": list(self.meetings),
            "media": list(self.media),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentInfo":
        return cls(
            name=str(payload["name"]),
            partition=int(payload["partition"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            records=int(payload["records"]),
            bytes=int(payload["bytes"]),
            kinds=tuple(sorted((str(k), int(v)) for k, v in payload.get("kinds", {}).items())),
            meetings=tuple(int(m) for m in payload.get("meetings", ())),
            media=tuple(str(m) for m in payload.get("media", ())),
        )

    @classmethod
    def from_meta(cls, name: str, meta: SegmentMeta, size: int) -> "SegmentInfo":
        return cls(
            name=name,
            partition=meta.partition,
            start=meta.start if meta.records else 0.0,
            end=meta.end if meta.records else 0.0,
            records=meta.records,
            bytes=size,
            kinds=tuple(sorted(meta.kinds.items())),
            meetings=tuple(sorted(meta.meetings)),
            media=tuple(sorted(meta.media)),
        )


@dataclass(frozen=True, slots=True)
class MaintenanceReport:
    """What one :meth:`MetricsStore.maintain` pass did."""

    compactions: int
    segments_merged: int
    segments_expired: int
    bytes_reclaimed: int


class MetricsStore:
    """Open (creating if needed) the store rooted at ``directory``.

    Args:
        directory: Store root; created on first open.
        config: A frozen :class:`~repro.core.config.StoreConfig`; ``None``
            uses the defaults.
        telemetry: Optional registry for ``store.*`` counters.
    """

    def __init__(
        self,
        directory: str | Path,
        config: "StoreConfig | None" = None,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        from repro.core.config import StoreConfig

        self.directory = Path(directory)
        self.config = config if config is not None else StoreConfig()
        self._telemetry = telemetry if telemetry is not None else Telemetry(enabled=False)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segments: dict[str, SegmentInfo] = {}
        self._active: dict[int, ActiveSegment] = {}
        self._next_seq: dict[int, int] = {}
        self._seals_since_maintenance = 0
        self._closed = False
        self._lock = threading.RLock()
        self._open_directory()

    # ------------------------------------------------------------------ open

    def _open_directory(self) -> None:
        tel = self._telemetry
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            payload = json.loads(manifest_path.read_text())
            if payload.get("version") != MANIFEST_VERSION:
                raise ValueError(
                    f"{manifest_path}: unsupported store version "
                    f"{payload.get('version')!r}"
                )
            stored_width = float(payload.get("partition_seconds", 0.0))
            if stored_width and stored_width != self.config.partition_seconds:
                # The directory's layout wins: partitions on disk were cut
                # at its width, and silently mixing widths would misfile new
                # records.
                self.config = self.config.replace(partition_seconds=stored_width)
            for entry in payload.get("segments", ()):
                info = SegmentInfo.from_dict(entry)
                self._segments[info.name] = info
        dirty = False
        # Drop manifest entries whose segment file is gone.
        for name in [n for n in self._segments if not (self.directory / n).exists()]:
            del self._segments[name]
            tel.count("store.manifest_dropped")
            dirty = True
        # Adopt sealed segments the manifest does not know (crash between
        # rename and manifest write, or a manifest lost entirely).
        for path in sorted(self.directory.iterdir()):
            match = _SEALED_RE.match(path.name)
            if match is None:
                continue
            partition, seq = int(match.group(1)), int(match.group(2))
            self._next_seq[partition] = max(self._next_seq.get(partition, 0), seq + 1)
            if path.name in self._segments:
                continue
            _, footer = read_sealed_segment(path)
            if footer is None:
                footer = self._rescan_footer(path, partition)
            self._segments[path.name] = SegmentInfo.from_meta(
                path.name, footer, path.stat().st_size
            )
            tel.count("store.manifest_orphans")
            dirty = True
        # Recover active segments (torn tails truncated in place).
        for path in sorted(self.directory.iterdir()):
            match = _ACTIVE_RE.match(path.name)
            if match is None:
                continue
            partition = int(match.group(1))
            active = ActiveSegment(path, partition)
            if active.recovered_truncated:
                tel.count("store.torn_frames")
            self._active[partition] = active
        if dirty or not manifest_path.exists():
            self._write_manifest()

    def _rescan_footer(self, path: Path, partition: int) -> SegmentMeta:
        """Rebuild footer metadata for a sealed segment missing one."""
        records, _ = read_sealed_segment(path)
        meta = SegmentMeta(partition=partition)
        for record in records:
            meta.observe(record)
        return meta

    # ---------------------------------------------------------------- append

    def partition_for(self, start: float) -> int:
        return int(math.floor(start / self.config.partition_seconds))

    @_locked
    def append(self, record: dict) -> None:
        """Durably append one store record (see :mod:`repro.store.records`).

        The record lands in the active segment of the partition covering
        its ``start`` time; crossing the configured record/byte thresholds
        seals that segment.  Far-behind partitions (older than the newest
        partition minus one) are sealed eagerly so a long run keeps at most
        a couple of active files.
        """
        if self._closed:
            raise ValueError("store is closed")
        start = float(record.get("start", 0.0))
        partition = self.partition_for(start)
        active = self._active.get(partition)
        if active is None:
            active = self._active[partition] = ActiveSegment(
                self.directory / f"active-p{partition}.seg", partition
            )
        active.append(record, fsync=self.config.fsync)
        self._telemetry.count("store.appended")
        self._telemetry.count(f"store.appended.{record.get('kind', 'unknown')}")
        if (
            active.meta.records >= self.config.seal_records
            or active.bytes >= self.config.seal_bytes
        ):
            self.seal_partition(partition)
        # Seal partitions capture time has clearly moved past.
        newest = max(self._active, default=partition)
        for stale in [p for p in self._active if p < newest - 1]:
            self.seal_partition(stale)

    # ----------------------------------------------------------------- seal

    @_locked
    def seal_partition(self, partition: int) -> str | None:
        """Seal ``partition``'s active segment; returns the sealed name."""
        active = self._active.pop(partition, None)
        if active is None:
            return None
        if active.meta.records == 0:
            active.close()
            active.path.unlink(missing_ok=True)
            return None
        seq = self._next_seq.get(partition, 0)
        self._next_seq[partition] = seq + 1
        name = f"seg-p{partition}-{seq:04d}.segz"
        sealed_path = self.directory / name
        meta = seal_segment(active, sealed_path, gzip_level=self.config.gzip_level)
        size = sealed_path.stat().st_size
        self._segments[name] = SegmentInfo.from_meta(name, meta, size)
        self._write_manifest()
        self._telemetry.count("store.segments_sealed")
        self._telemetry.count("store.records_sealed", meta.records)
        self._telemetry.count("store.bytes_sealed", size)
        self._seals_since_maintenance += 1
        return name

    @_locked
    def seal_all(self) -> list[str]:
        return [
            name
            for partition in sorted(self._active)
            if (name := self.seal_partition(partition)) is not None
        ]

    @_locked
    def close(self) -> None:
        """Seal every active segment and persist the manifest."""
        if self._closed:
            return
        self.seal_all()
        self._write_manifest()
        self._closed = True

    def __enter__(self) -> "MetricsStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------ inspection

    @_locked
    def segments(self) -> list[SegmentInfo]:
        """Sealed segments, ordered by (start time, name)."""
        return sorted(self._segments.values(), key=lambda s: (s.start, s.name))

    @_locked
    def active_partitions(self) -> list[int]:
        return sorted(self._active)

    @_locked
    def record_count(self) -> int:
        sealed = sum(info.records for info in self._segments.values())
        return sealed + sum(a.meta.records for a in self._active.values())

    @_locked
    def total_bytes(self) -> int:
        return sum(info.bytes for info in self._segments.values()) + sum(
            a.bytes for a in self._active.values()
        )

    @_locked
    def iter_segment_records(self, info: SegmentInfo) -> list[dict]:
        records, _ = read_sealed_segment(self.directory / info.name)
        return records

    def iter_active_records(self) -> Iterator[tuple[int, list[dict]]]:
        """(partition, records) for every still-active segment.

        The snapshot is taken under the store lock (a generator body would
        run outside it, racing concurrent appends and seals).
        """
        with self._lock:
            snapshot = [
                (partition, self._active[partition].records_on_disk())
                for partition in sorted(self._active)
            ]
        yield from snapshot

    # --------------------------------------------------------------- queries

    def query(self, query: "StoreQuery") -> "QueryResult":
        """Run a :class:`~repro.store.query.StoreQuery` over this store."""
        from repro.store.query import run_query

        return run_query(self, query)

    # ----------------------------------------------------------- maintenance

    @_locked
    def compact(self) -> tuple[int, int]:
        """Merge small sealed segments partition by partition.

        A partition with at least ``compact_min_segments`` sealed segments
        smaller than ``compact_small_bytes`` gets them rewritten as one
        (records in original append order), published atomically before the
        inputs are removed.  Returns ``(compactions, segments_merged)``.
        """
        by_partition: dict[int, list[SegmentInfo]] = {}
        for info in self._segments.values():
            if info.bytes <= self.config.compact_small_bytes:
                by_partition.setdefault(info.partition, []).append(info)
        compactions = merged = 0
        for partition, infos in sorted(by_partition.items()):
            if len(infos) < self.config.compact_min_segments:
                continue
            infos.sort(key=lambda s: s.name)
            records: list[dict] = []
            for info in infos:
                records.extend(self.iter_segment_records(info))
            seq = self._next_seq.get(partition, 0)
            self._next_seq[partition] = seq + 1
            name = f"seg-p{partition}-{seq:04d}.segz"
            sealed_path = self.directory / name
            meta = write_sealed_segment(
                sealed_path, records, partition, gzip_level=self.config.gzip_level
            )
            self._segments[name] = SegmentInfo.from_meta(
                name, meta, sealed_path.stat().st_size
            )
            for info in infos:
                (self.directory / info.name).unlink(missing_ok=True)
                del self._segments[info.name]
            self._write_manifest()
            compactions += 1
            merged += len(infos)
            self._telemetry.count("store.compactions")
            self._telemetry.count("store.segments_compacted", len(infos))
        return compactions, merged

    @_locked
    def enforce_retention(self) -> tuple[int, int]:
        """Delete the oldest sealed segments beyond the retention budget.

        Age first (segments whose newest record is older than
        ``retention_max_age`` behind the store's newest record), then total
        size (oldest-first until under ``retention_max_bytes``).  Active
        segments are never deleted.  Returns ``(segments, bytes)`` removed.
        """
        removed = reclaimed = 0
        ordered = self.segments()
        if self.config.retention_max_age is not None and ordered:
            horizon = max(info.end for info in ordered) - self.config.retention_max_age
            for info in [s for s in ordered if s.end < horizon]:
                removed += 1
                reclaimed += info.bytes
                (self.directory / info.name).unlink(missing_ok=True)
                del self._segments[info.name]
        if self.config.retention_max_bytes is not None:
            ordered = self.segments()
            total = sum(info.bytes for info in ordered)
            for info in ordered:
                if total <= self.config.retention_max_bytes:
                    break
                total -= info.bytes
                removed += 1
                reclaimed += info.bytes
                (self.directory / info.name).unlink(missing_ok=True)
                del self._segments[info.name]
        if removed:
            self._write_manifest()
            self._telemetry.count("store.segments_expired", removed)
            self._telemetry.count("store.bytes_expired", reclaimed)
        return removed, reclaimed

    def maintain(self) -> MaintenanceReport:
        """One compaction + retention pass (the ``repro compact`` body)."""
        compactions, merged = self.compact()
        expired, reclaimed = self.enforce_retention()
        self._seals_since_maintenance = 0
        return MaintenanceReport(
            compactions=compactions,
            segments_merged=merged,
            segments_expired=expired,
            bytes_reclaimed=reclaimed,
        )

    def maintain_if_due(self) -> MaintenanceReport | None:
        """Run maintenance after every ``maintenance_interval`` seals — the
        live sink's cheap hook: a no-op almost always."""
        if self._seals_since_maintenance < self.config.maintenance_interval:
            return None
        return self.maintain()

    # ------------------------------------------------------------- manifest

    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "partition_seconds": self.config.partition_seconds,
            "segments": [info.to_dict() for info in self.segments()],
        }
        tmp_path = self.directory / (MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.directory / MANIFEST_NAME)
