"""Persistent metrics store + query engine for longitudinal studies.

The paper's headline evaluation is a 12-hour campus capture sliced after
the fact by time, meeting, and media type (§6.2, Figures 14–17).  The live
service (:mod:`repro.service`) produces exactly those per-window metrics —
but, before this package, only as a scrape target and a flat JSONL log.
:mod:`repro.store` is the durable layer between them and the analysis:

* :mod:`repro.store.segment` — the on-disk unit: CRC-framed records in an
  append-only active file, gzip-compressed and footer-indexed when sealed.
* :mod:`repro.store.store` — :class:`MetricsStore`: time-partitioned
  segments under one manifest, crash-safe open, compaction and retention.
* :mod:`repro.store.query` — :class:`StoreQuery`/:func:`run_query`:
  time/meeting/media slicing with footer-index segment skipping and
  optional re-aggregation to coarser windows.
* :mod:`repro.store.sink` — :class:`StoreSink`: the live daemon's writer
  (``analyze-live --store DIR``).
* :mod:`repro.store.backfill` — ingest pre-store JSONL window logs and
  batch :class:`~repro.core.pipeline.AnalysisResult`\\ s.

CLI faces: ``repro query``, ``repro compact``, ``repro backfill``.
"""

from repro.store.backfill import BackfillReport, backfill_jsonl, backfill_result
from repro.store.merge import (
    canonical_key,
    merge_media_entries,
    reaggregate_windows,
    shape_records,
)
from repro.store.query import QueryResult, StoreQuery, flatten_records, run_query
from repro.store.records import meeting_record, stream_record, window_record
from repro.store.sink import StoreSink
from repro.store.store import MaintenanceReport, MetricsStore, SegmentInfo

__all__ = [
    "BackfillReport",
    "MaintenanceReport",
    "MetricsStore",
    "QueryResult",
    "SegmentInfo",
    "StoreQuery",
    "StoreSink",
    "backfill_jsonl",
    "backfill_result",
    "canonical_key",
    "flatten_records",
    "meeting_record",
    "merge_media_entries",
    "reaggregate_windows",
    "run_query",
    "shape_records",
    "stream_record",
    "window_record",
]
