""":class:`StoreSink` — the live service's bridge into the metrics store.

Registers on the monitoring daemon's two finalization streams: closed
:class:`~repro.service.windows.WindowRecord`s from the window aggregator
and :class:`~repro.core.rolling.FinalizedStream` summaries from the rolling
analyzer's eviction path.  Meeting summaries only stabilize at campaign end,
so the supervisor calls :meth:`write_meetings` during its final drain.

The sink also drives background maintenance on the store's cadence
(:meth:`~repro.store.store.MetricsStore.maintain_if_due` after each window)
so a long-lived daemon compacts and enforces retention without a separate
thread — maintenance work happens on the analysis thread between windows,
where the store is already being written from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.store.records import meeting_record, stream_record, window_record
from repro.store.store import MetricsStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.meetings import Meeting
    from repro.core.rolling import FinalizedStream
    from repro.service.windows import WindowRecord


class StoreSink:
    """Write service output into ``store`` as it finalizes.

    Args:
        store: An open :class:`MetricsStore`; the sink never closes it —
            lifecycle belongs to the supervisor that opened it.
    """

    def __init__(self, store: MetricsStore) -> None:
        self.store = store
        self.windows_stored = 0
        self.streams_stored = 0
        self.meetings_stored = 0

    def write_window(self, window: "WindowRecord") -> None:
        """Window-close callback for the aggregator."""
        self.store.append(window_record(window))
        self.windows_stored += 1
        self.store.maintain_if_due()

    def write_stream(self, summary: "FinalizedStream") -> None:
        """``on_stream_finalized`` callback for the rolling analyzer."""
        self.store.append(stream_record(summary))
        self.streams_stored += 1

    def write_meetings(self, meetings: Iterable["Meeting"]) -> None:
        """Persist meeting summaries (the supervisor's shutdown path)."""
        for meeting in meetings:
            self.store.append(meeting_record(meeting))
            self.meetings_stored += 1
